#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace must build, every test
# must pass — on a 1-thread pool AND on an 8-thread pool, since every
# parallel path guarantees thread-count-invariant results — and no workspace
# dependency may point at a registry; the build is self-contained by
# construction (see README.md "Zero dependencies").
#
# Flags:
#   --soak   additionally run the 60-second serving soak harness
#            (100k-record mixed workload; fails on invariant violations or
#            unbounded memory growth) and the 1M-record store-backed
#            scored-matches run (peak-RSS-below-baseline assertion).
#            Skipped by default: together they add minutes of wall clock
#            to an otherwise fast gate.
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK=0
for arg in "$@"; do
    case "$arg" in
        --soak) SOAK=1 ;;
        *)
            echo "usage: scripts/verify.sh [--soak]" >&2
            exit 2
            ;;
    esac
done

# Serialize every cargo invocation in this script against concurrent runs.
# Parallel `cargo test`/`cargo build` processes sharing one `target/` race on
# build artifacts (doctest binaries in particular), which shows up as flaky
# "No such file or directory" doctest failures. An exclusive flock on a file
# next to target/ makes the whole verification critical-section.
mkdir -p target
exec 9>target/.verify.lock
if command -v flock >/dev/null 2>&1; then
    flock 9
fi

echo "== checking that all workspace dependencies are path-only =="
# Inside any [dependencies]-like section, a quoted version number (e.g.
# `rand = "0.10"` or `version = "1"`) means a registry lookup; every entry
# must be a `{ path = ... }` or `{ workspace = true }` reference.
if ! awk '
    /^\[/ { in_dep = ($0 ~ /dependencies(\]|\.)/) }
    in_dep && /"[0-9]/ && !/path *=/ {
        printf "%s:%d: registry dependency: %s\n", FILENAME, FNR, $0; bad = 1
    }
    END { exit bad }
' Cargo.toml crates/*/Cargo.toml; then
    echo "error: registry dependencies found (listed above)" >&2
    exit 1
fi
echo "ok: all dependencies are path-only"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test --offline (EM_THREADS=1) =="
EM_THREADS=1 cargo test -q --offline --workspace

echo "== cargo test --offline (EM_THREADS=8) =="
EM_THREADS=8 cargo test -q --offline --workspace

echo "== determinism harness with the feature cache disabled (EM_FEATCACHE=off) =="
# PreparedDataset::prepare must fall back to the uncached &str path and
# still be bit-identical at any thread count.
EM_FEATCACHE=off EM_THREADS=8 cargo test -q --offline -p automl-em --test determinism --test featcache_props

echo "== determinism harness under the EM_BINNED override (on, then off) =="
# Forcing every Best-splitter fit through the binned engine (and binned
# fits back to exact) must keep the whole harness bit-identical across
# thread counts. The first run leaves EM_THREADS unset so the in-process
# 1-vs-8 pool flips execute too.
EM_BINNED=on cargo test -q --offline -p automl-em --test determinism
EM_BINNED=off EM_THREADS=8 cargo test -q --offline -p automl-em --test determinism

echo "== weak supervision smoke (LF set -> label model -> AutoML, 1 and 8 threads) =="
# End to end with zero hand labels: apply an LF set, fit the generative
# label model, train AutoML-EM through the sample-weight path. The test
# asserts test F1 above a 0.6 floor; the exp_weak run prints the
# weak-vs-active comparison from the real binary. Run at both pool sizes:
# LF application and the label-model fit guarantee bit-identical results at
# any EM_THREADS (the determinism harness asserts the equality).
EM_THREADS=1 cargo test -q --offline -p em-weak --test weak_props \
    weak_automl_labels_fodors_zagats_with_zero_hand_labels
EM_THREADS=8 cargo test -q --offline -p em-weak --test weak_props \
    weak_automl_labels_fodors_zagats_with_zero_hand_labels
EM_THREADS=1 cargo run -q --release --offline -p em-bench --bin exp_weak -- \
    --scale 0.3 --budget 4 --only fodors
EM_THREADS=8 cargo run -q --release --offline -p em-bench --bin exp_weak -- \
    --scale 0.3 --budget 4 --only fodors

echo "== serve smoke test (search -> save/load artifact -> stream -> in-memory parity) =="
# serve_demo searches a small pipeline, round-trips it through a model
# artifact, streams the full 110-record query table through
# Matcher::match_stream, and asserts the streamed output is bit-identical
# to the in-memory predict path (so streamed F1 == in-memory F1 by
# construction); it also prints precision/recall/F1 against the gold pairs.
EM_THREADS=8 cargo run -q --release --offline -p em-bench --bin serve_demo

echo "== metrics endpoint smoke test (EM_METRICS, 1 and 8 threads) =="
# With EM_METRICS set, serve_demo serves /metrics and /healthz while it
# streams, cross-checks the windowed batch-latency quantiles against the
# post-hoc trace histogram, and still asserts bit-identical output — at
# both pool sizes, so the endpoint provably never feeds back into results.
EM_METRICS=127.0.0.1:0 EM_THREADS=1 cargo run -q --release --offline -p em-bench --bin serve_demo
EM_METRICS=127.0.0.1:0 EM_THREADS=8 cargo run -q --release --offline -p em-bench --bin serve_demo

echo "== store-backed serving smoke (10k records: build -> snapshot -> reopen -> stream) =="
# bench_serve_scale's scored section streams the catalog into a CatalogStore
# + persistent index, reopens both from disk, serves a trained artifact over
# the store with match_stream, and asserts the output is bit-identical to
# the double-resident in-memory path (including across a thread flip). The
# report lands in a temp file: this is a correctness gate, not a bench run.
SCALE_OUT="$(mktemp /tmp/em-verify-scale-XXXXXX.json)"
cargo run -q --release --offline -p em-bench --bin bench_serve_scale -- \
    --sizes 10000 --ops 2000 --out "$SCALE_OUT"
rm -f "$SCALE_OUT"

if [ "$SOAK" = 1 ]; then
    echo "== soak: 60s mixed serving workload at 100k records (--soak) =="
    # Sustained churn against the persistent sharded index: periodic
    # invariant verification and snapshots, recovery parity at shutdown,
    # and an RSS growth ceiling. Nonzero exit on any violation.
    EM_THREADS=8 cargo run -q --release --offline -p em-bench --bin soak_serve -- \
        --records 100000 --seconds 60

    echo "== soak: store-backed scored matches at 1M records (--soak) =="
    # The full-size tentpole check: a million-record catalog streamed into
    # the store, served end to end, with the store-side peak RSS asserted
    # strictly below the double-resident in-memory baseline.
    SCALE_OUT="$(mktemp /tmp/em-verify-scale-1m-XXXXXX.json)"
    cargo run -q --release --offline -p em-bench --bin bench_serve_scale -- \
        --sizes 1000000 --out "$SCALE_OUT"
    rm -f "$SCALE_OUT"
fi

echo "verify: OK"
