#!/bin/sh
# Regenerate every paper table/figure. Scales are chosen for a single-core
# machine; pass-through of per-binary flags documents each run's setting.
set -x
cd "$(dirname "$0")/.." || exit 1
R="results"
mkdir -p $R
cargo run --release -p em-bench --bin exp_datasets -q -- --scale 1.0            > $R/table3_datasets.txt 2>&1
cargo run --release -p em-bench --bin exp_fig3     -q -- --scale 1.0            > $R/fig3_tuning.txt 2>&1
cargo run --release -p em-bench --bin exp_table4   -q -- --scale 0.5 --budget 32 > $R/table4_magellan_vs_automl.txt 2>&1
cargo run --release -p em-bench --bin exp_table4   -q -- --scale 0.5 --budget 32 --only abt --show-pipeline > $R/fig11_pipeline.txt 2>&1
cargo run --release -p em-bench --bin exp_fig8     -q -- --scale 0.5 --budget 32 > $R/fig8_vs_deepmatcher.txt 2>&1
cargo run --release -p em-bench --bin exp_fig9     -q -- --scale 0.5 --budget 24 > $R/fig9_featuregen.txt 2>&1
cargo run --release -p em-bench --bin exp_fig12    -q -- --scale 0.5 --budget 32 > $R/fig12_ablation.txt 2>&1
cargo run --release -p em-bench --bin exp_fig10    -q -- --scale 0.2 --budget 96 > $R/fig10_modelspace.txt 2>&1
# Labeling-scenario tail (figs 13-15, ablation, weak-vs-active) is shared
# with the standalone active-experiments script — run it once from there.
sh scripts/run_active_experiments.sh || exit 1
echo ALL_EXPERIMENTS_DONE
