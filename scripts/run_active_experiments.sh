#!/bin/sh
# Labeling-scenario experiments at scale 0.3 (single-core-friendly; pools of
# ~2 400 pairs still dwarf init = 500): figures 13-15, the design-choice
# ablation, and the weak-vs-active supervision comparison. Also the shared
# tail of scripts/run_experiments.sh, which invokes this script instead of
# duplicating the runs.
set -x
cd "$(dirname "$0")/.." || exit 1
R="results"
mkdir -p $R
cargo run --release -p em-bench --bin exp_fig13 -q -- --scale 0.3 --budget 12 > $R/fig13_labeling_budget.txt 2>&1
cargo run --release -p em-bench --bin exp_fig14 -q -- --scale 0.3 --budget 12 > $R/fig14_init_size.txt 2>&1
cargo run --release -p em-bench --bin exp_fig15 -q -- --scale 0.3 --budget 12 > $R/fig15_st_batch.txt 2>&1
cargo run --release -p em-bench --bin exp_ablation -q -- --scale 0.3 --budget 12 > $R/ablation_design_choices.txt 2>&1
cargo run --release -p em-bench --bin exp_weak -q -- --scale 0.3 --budget 12 > $R/weak_vs_active.txt 2>&1
echo ACTIVE_EXPERIMENTS_DONE
