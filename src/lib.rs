//! Workspace umbrella crate hosting the runnable examples and integration
//! tests for the AutoML-EM reproduction. Re-exports the member crates so
//! examples can use a single dependency.

pub use automl_em as core;
pub use em_automl as automl;
pub use em_data as data;
pub use em_ml as ml;
pub use em_table as table;
pub use em_text as text;
