#!/bin/sh
# Figures 13-15 at scale 0.3 (single-core-friendly; pools of ~2 400 pairs
# still dwarf init = 500). Part of ./run_experiments.sh at higher scale.
set -x
R="results"
cargo run --release -p em-bench --bin exp_fig13 -q -- --scale 0.3 --budget 12 > $R/fig13_labeling_budget.txt 2>&1
cargo run --release -p em-bench --bin exp_fig14 -q -- --scale 0.3 --budget 12 > $R/fig14_init_size.txt 2>&1
cargo run --release -p em-bench --bin exp_fig15 -q -- --scale 0.3 --budget 12 > $R/fig15_st_batch.txt 2>&1
cargo run --release -p em-bench --bin exp_ablation -q -- --scale 0.3 --budget 12 > $R/ablation_design_choices.txt 2>&1
echo ACTIVE_EXPERIMENTS_DONE
