//! Cross-crate integration tests: data generation → feature generation →
//! pipeline search → evaluation, plus the active-learning loop — the full
//! systems the paper's experiments exercise, at test-friendly scales.

use automl_em::{
    AutoMlEmOptions, EmPipelineConfig, FeatureGenerator, FeatureScheme, ModelSpace,
    PreparedDataset, SearchChoice, SpaceOptions,
};
use em_automl::Budget;
use em_data::Benchmark;

fn quick(budget: usize, seed: u64) -> AutoMlEmOptions {
    AutoMlEmOptions {
        budget: Budget::Evaluations(budget),
        seed,
        ..Default::default()
    }
}

#[test]
fn automl_em_beats_chance_on_every_benchmark() {
    for b in Benchmark::all() {
        let ds = b.generate_scaled(1, 0.12);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 1);
        let (_, test_f1, _) = prep.run_automl(quick(4, 1));
        // Chance F1 at ~10-20% positive rate is far below 0.3.
        assert!(test_f1 > 0.3, "{}: test F1 {test_f1}", ds.name);
    }
}

#[test]
fn automl_em_never_loses_to_default_rf_on_validation() {
    // The warm-start guarantee: the returned pipeline's validation score is
    // at least the default random forest's.
    for b in [Benchmark::FodorsZagats, Benchmark::AbtBuy] {
        let ds = b.generate_scaled(2, 0.2);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 2);
        let (xt, yt) = prep.train();
        let (xv, yv) = prep.valid();
        let default_f1 = EmPipelineConfig::default_random_forest(2)
            .fit(&xt, &yt)
            .f1(&xv, &yv);
        let (valid_f1, _, _) = prep.run_automl(quick(4, 2));
        assert!(
            valid_f1 >= default_f1 - 1e-9,
            "{}: {valid_f1} < default {default_f1}",
            ds.name
        );
    }
}

#[test]
fn exhaustive_features_dominate_magellan_features_here() {
    // Figure 9's direction on the long-text dataset: with the same search,
    // Table-II features should not lose to Table-I features.
    let mut sum_m = 0.0;
    let mut sum_a = 0.0;
    for seed in 3..6u64 {
        let ds = Benchmark::AbtBuy.generate_scaled(seed, 0.15);
        let prep_m = PreparedDataset::prepare(&ds, FeatureScheme::Magellan, seed);
        let prep_a = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, seed);
        assert!(prep_a.generator.n_features() > prep_m.generator.n_features());
        sum_m += prep_m.run_automl(quick(6, seed)).1;
        sum_a += prep_a.run_automl(quick(6, seed)).1;
    }
    // Averaged over seeds (tiny test sets are noisy), the exhaustive
    // features must not lose.
    assert!(
        sum_a >= sum_m - 0.1,
        "AutoML-EM features much worse on average: {sum_a} vs {sum_m}"
    );
}

#[test]
fn every_search_algorithm_drives_the_pipeline_search() {
    let ds = Benchmark::FodorsZagats.generate_scaled(4, 0.25);
    let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 4);
    for search in [SearchChoice::Random, SearchChoice::Smac, SearchChoice::Tpe] {
        let options = AutoMlEmOptions {
            search,
            ..quick(6, 4)
        };
        let (_, test_f1, result) = prep.run_automl(options);
        assert_eq!(result.history.len(), 6);
        assert!(test_f1 > 0.5, "{search:?}: {test_f1}");
    }
}

#[test]
fn all_model_space_runs_end_to_end() {
    let ds = Benchmark::ItunesAmazon.generate_scaled(5, 0.4);
    let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 5);
    let options = AutoMlEmOptions {
        space: SpaceOptions {
            model_space: ModelSpace::AllModels,
            ..SpaceOptions::default()
        },
        ..quick(10, 5)
    };
    let (_, test_f1, result) = prep.run_automl(options);
    assert!(test_f1 > 0.4, "test F1 {test_f1}");
    // At least two distinct classifier families must have been tried in 10
    // evaluations of the 9-model space.
    let tried: std::collections::BTreeSet<_> = result
        .history
        .trials()
        .iter()
        .filter_map(|t| t.config.get_str("classifier:__choice__"))
        .map(str::to_owned)
        .collect();
    assert!(tried.len() >= 2, "only tried {tried:?}");
}

#[test]
fn ablation_never_improves_the_incumbent_on_training_fit() {
    let ds = Benchmark::AmazonGoogle.generate_scaled(6, 0.1);
    let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 6);
    let (xt, yt) = prep.train();
    let (_, _, result) = prep.run_automl(quick(8, 6));
    let full = result.best_pipeline.fit(&xt, &yt).f1(&xt, &yt);
    let ablated = result
        .best_pipeline
        .without_data_preprocessing()
        .without_feature_preprocessing()
        .fit(&xt, &yt)
        .f1(&xt, &yt);
    // On training data the fuller pipeline should fit at least as well
    // (both usually hit ~1.0; the ablation must not *gain*).
    assert!(ablated <= full + 0.05, "ablated {ablated} vs full {full}");
}

#[test]
fn feature_generation_matches_paper_arithmetic_on_real_schemas() {
    // Fodors-Zagats: 6 attributes -> Magellan counts depend on inferred
    // types; AutoML-EM always gives 16 per string attr + 4 per numeric.
    let ds = Benchmark::FodorsZagats.generate_scaled(7, 0.3);
    let types = em_table::infer_pair_types(&ds.table_a, &ds.table_b);
    let gen = FeatureGenerator::plan(FeatureScheme::AutoMlEm, ds.table_a.schema(), &types);
    let expected: usize = types
        .iter()
        .map(|t| match t.coarse() {
            em_table::CoarseType::String => 16,
            em_table::CoarseType::Number => 4,
            em_table::CoarseType::Bool => 1,
        })
        .sum();
    assert_eq!(gen.n_features(), expected);
}

#[test]
fn deterministic_full_runs() {
    let ds = Benchmark::WalmartAmazon.generate_scaled(8, 0.08);
    let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 8);
    let (v1, t1, _) = prep.run_automl(quick(5, 8));
    let (v2, t2, _) = prep.run_automl(quick(5, 8));
    assert_eq!(v1, v2);
    assert_eq!(t1, t2);
}
