//! Integration tests for AutoML-EM-Active (Algorithm 1) on benchmark data:
//! labeling economics, the self-training benefit, and robustness.

use automl_em::{
    ActiveConfig, AutoMlEmActive, FeatureScheme, GroundTruthOracle, NoisyOracle, Oracle,
    PreparedDataset,
};
use em_data::Benchmark;
use em_ml::preprocess::{ImputeStrategy, SimpleImputer};
use em_ml::{f1_score, Classifier, ForestParams, Matrix, RandomForestClassifier};

struct Pool {
    x: Matrix,
    truth: Vec<usize>,
    x_test: Matrix,
    y_test: Vec<usize>,
}

fn pool_for(benchmark: Benchmark, scale: f64, seed: u64) -> Pool {
    let ds = benchmark.generate_scaled(seed, scale);
    let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, seed);
    let mut idx = prep.split.train.clone();
    idx.extend_from_slice(&prep.split.valid);
    let (x_test, y_test) = {
        let t = &prep.split.test;
        (
            prep.features.select_rows(t),
            t.iter().map(|&i| prep.labels[i]).collect(),
        )
    };
    Pool {
        x: prep.features.select_rows(&idx),
        truth: idx.iter().map(|&i| prep.labels[i]).collect(),
        x_test,
        y_test,
    }
}

fn config(init: usize, ac: usize, st: usize, iters: usize, seed: u64) -> ActiveConfig {
    ActiveConfig {
        init_size: init,
        ac_batch: ac,
        st_batch: st,
        iterations: iters,
        seed,
        forest: ForestParams {
            n_estimators: 30,
            ..ForestParams::default()
        },
        ..ActiveConfig::default()
    }
}

/// Train a forest on the collected labels and score the held-out test split.
fn downstream_f1(pool: &Pool, labeled: &automl_em::LabeledSet, seed: u64) -> f64 {
    let (imputer, x_all) = SimpleImputer::fit_transform(ImputeStrategy::Mean, &pool.x);
    let xt = x_all.select_rows(&labeled.indices);
    let mut rf = RandomForestClassifier::new(ForestParams {
        n_estimators: 50,
        seed,
        ..ForestParams::default()
    });
    rf.fit(&xt, &labeled.labels, 2, None);
    let x_test = imputer.transform(&pool.x_test);
    f1_score(&pool.y_test, &rf.predict(&x_test))
}

#[test]
fn human_cost_is_exactly_init_plus_iterations_times_batch() {
    let pool = pool_for(Benchmark::AmazonGoogle, 0.1, 0);
    let mut oracle = GroundTruthOracle::from_classes(&pool.truth);
    let run = AutoMlEmActive::new(config(60, 5, 50, 6, 0)).run(&pool.x, &mut oracle);
    assert_eq!(oracle.queries(), 60 + 6 * 5);
    assert_eq!(run.labeled.human_count(), oracle.queries());
}

#[test]
fn self_training_labels_are_mostly_correct_with_decent_init() {
    let pool = pool_for(Benchmark::AmazonGoogle, 0.15, 1);
    let mut oracle = GroundTruthOracle::from_classes(&pool.truth);
    let run = AutoMlEmActive::new(config(150, 5, 60, 8, 1)).run(&pool.x, &mut oracle);
    let (mut ok, mut total) = (0usize, 0usize);
    for ((&i, &y), &h) in run
        .labeled
        .indices
        .iter()
        .zip(&run.labeled.labels)
        .zip(&run.labeled.human)
    {
        if !h {
            total += 1;
            ok += usize::from(y == pool.truth[i]);
        }
    }
    assert!(total > 50, "expected machine labels, got {total}");
    let acc = ok as f64 / total as f64;
    assert!(acc > 0.8, "machine-label accuracy {acc}");
}

#[test]
fn self_training_beats_plain_active_learning_downstream() {
    // The Figure 13 direction at test scale: with equal human budgets,
    // the self-training run should win on most seeds.
    let mut wins = 0;
    let trials = 3;
    for seed in 0..trials {
        let pool = pool_for(Benchmark::AmazonGoogle, 0.2, 10 + seed);
        let mut oracle_ac = GroundTruthOracle::from_classes(&pool.truth);
        let mut oracle_st = GroundTruthOracle::from_classes(&pool.truth);
        let ac_run = AutoMlEmActive::new(config(150, 8, 0, 10, seed)).run(&pool.x, &mut oracle_ac);
        let st_run = AutoMlEmActive::new(config(150, 8, 80, 10, seed)).run(&pool.x, &mut oracle_st);
        assert_eq!(oracle_ac.queries(), oracle_st.queries(), "equal human cost");
        let f1_ac = downstream_f1(&pool, &ac_run.labeled, seed);
        let f1_st = downstream_f1(&pool, &st_run.labeled, seed);
        if f1_st >= f1_ac - 1e-9 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "self-training won only {wins}/{trials} seeds");
}

#[test]
fn noisy_oracle_degrades_but_does_not_crash() {
    let pool = pool_for(Benchmark::AbtBuy, 0.1, 2);
    let mut clean = GroundTruthOracle::from_classes(&pool.truth);
    let truth_bools: Vec<bool> = pool.truth.iter().map(|&c| c == 1).collect();
    let mut noisy = NoisyOracle::new(truth_bools, 0.25, 2);
    let run_clean = AutoMlEmActive::new(config(80, 5, 30, 6, 2)).run(&pool.x, &mut clean);
    let run_noisy = AutoMlEmActive::new(config(80, 5, 30, 6, 2)).run(&pool.x, &mut noisy);
    let f1_clean = downstream_f1(&pool, &run_clean.labeled, 2);
    let f1_noisy = downstream_f1(&pool, &run_noisy.labeled, 2);
    assert!((0.0..=1.0).contains(&f1_clean));
    assert!((0.0..=1.0).contains(&f1_noisy));
    // The noisy run must actually have disagreed with the truth somewhere
    // among its human labels (flip rate 25%).
    let flipped = run_noisy
        .labeled
        .indices
        .iter()
        .zip(&run_noisy.labeled.labels)
        .zip(&run_noisy.labeled.human)
        .filter(|((&i, &y), &h)| h && y != pool.truth[i])
        .count();
    assert!(flipped > 0, "noisy oracle never flipped a label");
}

#[test]
fn pool_exhaustion_terminates_cleanly() {
    let pool = pool_for(Benchmark::BeerAdvoRateBeer, 1.0, 3);
    let n = pool.x.nrows();
    // Batches large enough to drain the pool before the iteration cap.
    let mut oracle = GroundTruthOracle::from_classes(&pool.truth);
    let run = AutoMlEmActive::new(config(n / 3, n / 4, n / 2, 50, 3)).run(&pool.x, &mut oracle);
    assert!(run.labeled.len() <= n);
    let mut idx = run.labeled.indices.clone();
    idx.sort_unstable();
    idx.dedup();
    assert_eq!(idx.len(), run.labeled.len(), "no index labeled twice");
}
