//! Product matching end-to-end: blocking + feature generation + AutoML-EM,
//! on the hard long-text product scenario the paper's introduction motivates
//! (comparing the same product across different websites).
//!
//! This example also exercises the blocking substrate (the paper treats
//! blocking as orthogonal, §II-A, but an end-to-end run needs one) and
//! compares the two feature-generation schemes on the same candidate pairs.
//!
//! Run with:
//! ```sh
//! cargo run --release --example product_matching
//! ```

use automl_em::{AutoMlEmOptions, EmPipelineConfig, FeatureScheme, PreparedDataset};
use em_automl::Budget;
use em_data::Benchmark;
use em_table::{Blocker, BlockingStats, OverlapBlocker, RecordPair};

fn main() {
    // A synthetic Abt-Buy-like dataset: product name, long description, price.
    let dataset = Benchmark::AbtBuy.generate_scaled(7, 0.25);
    println!("== blocking ==");
    // How would an overlap blocker perform on these tables? It must retain
    // most true matches while pruning the quadratic pair space.
    let blocker = OverlapBlocker {
        attribute: "name".into(),
        min_overlap: 2,
    };
    let candidates = blocker.candidates(&dataset.table_a, &dataset.table_b);
    let truth: Vec<RecordPair> = dataset
        .pairs
        .iter()
        .filter(|p| p.label)
        .map(|p| p.pair)
        .collect();
    let stats = BlockingStats::evaluate(
        &candidates,
        &truth,
        dataset.table_a.len(),
        dataset.table_b.len(),
    );
    println!(
        "overlap blocker: {} candidates, reduction ratio {:.3}, pair completeness {:.3}",
        stats.candidates, stats.reduction_ratio, stats.pair_completeness,
    );

    println!("\n== matching: Magellan features + default random forest ==");
    let prep_magellan = PreparedDataset::prepare(&dataset, FeatureScheme::Magellan, 7);
    let baseline_f1 = prep_magellan.run_fixed_pipeline(&EmPipelineConfig::default_random_forest(7));
    println!(
        "Magellan scheme: {} features, default-RF test F1 = {baseline_f1:.3}",
        prep_magellan.generator.n_features()
    );

    println!("\n== matching: AutoML-EM (Table II features + pipeline search) ==");
    let prep_auto = PreparedDataset::prepare(&dataset, FeatureScheme::AutoMlEm, 7);
    let options = AutoMlEmOptions {
        budget: Budget::Evaluations(16),
        seed: 7,
        ..Default::default()
    };
    let (valid_f1, test_f1, result) = prep_auto.run_automl(options);
    println!(
        "AutoML-EM: {} features, validation F1 = {valid_f1:.3}, test F1 = {test_f1:.3}",
        prep_auto.generator.n_features()
    );
    println!(
        "ΔF1 over the default baseline: {:+.3}",
        test_f1 - baseline_f1
    );
    println!("\nincumbent pipeline:\n{}", result.best_configuration);
}
