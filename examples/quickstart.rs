//! Quickstart: automatically develop an entity-matching model with AutoML-EM.
//!
//! Mirrors the paper's Figure 2 flow: two tables of records → candidate
//! pairs → similarity feature vectors (Table II) → automated pipeline search
//! → a fitted matcher scored by F1.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use automl_em::{AutoMlEmOptions, FeatureScheme, PreparedDataset};
use em_automl::Budget;
use em_data::Benchmark;

fn main() {
    // 1. Load a dataset. Here: a synthetic stand-in for the Fodors-Zagats
    //    restaurant benchmark (use `em_table::read_csv_file` + your own
    //    pairs to bring real data).
    let dataset = Benchmark::FodorsZagats.generate_scaled(42, 1.0);
    let stats = dataset.stats();
    println!(
        "dataset {}: {} candidate pairs, {} matching ({:.1}%)",
        dataset.name,
        stats.total,
        stats.positives,
        100.0 * stats.positive_rate()
    );

    // 2. Generate similarity features (paper Table II: every similarity
    //    function for every attribute) and split 64/16/20.
    let prepared = PreparedDataset::prepare(&dataset, FeatureScheme::AutoMlEm, 42);
    println!(
        "generated {} features per pair, e.g. {:?}",
        prepared.generator.n_features(),
        &prepared.generator.feature_names()[..4]
    );

    // 3. Let AutoML-EM search for the best pipeline (SMAC over the
    //    random-forest space, the paper's default configuration).
    let options = AutoMlEmOptions {
        budget: Budget::Evaluations(24),
        seed: 42,
        ..Default::default()
    };
    let (valid_f1, test_f1, result) = prepared.run_automl(options);

    // 4. Inspect the result: the incumbent prints exactly like the paper's
    //    Figure 11 pipeline dump.
    println!("\nbest pipeline found:\n{}", result.best_configuration);
    println!("\nvalidation F1 = {valid_f1:.3}");
    println!("test F1       = {test_f1:.3}");

    // 5. The fitted pipeline is ready for new pairs.
    let (x_test, _) = prepared.test();
    let proba = result.fitted.predict_match_proba(&x_test);
    println!(
        "first five match probabilities on held-out pairs: {:?}",
        &proba[..5.min(proba.len())]
    );
    em_obs::flush();
}
