//! Explaining an EM model (paper §VII future work): which similarity
//! features drive the matcher's decisions, how well-calibrated the scores
//! are across thresholds, and what an F1-optimal operating point looks like.
//!
//! Run with:
//! ```sh
//! cargo run --release --example explainability
//! ```

use automl_em::{AutoMlEmOptions, FeatureScheme, PreparedDataset};
use em_automl::Budget;
use em_data::Benchmark;
use em_ml::{average_precision, precision_recall_curve};

fn main() {
    let dataset = Benchmark::WalmartAmazon.generate_scaled(5, 0.2);
    let prepared = PreparedDataset::prepare(&dataset, FeatureScheme::AutoMlEm, 5);
    let (_, test_f1, result) = prepared.run_automl(AutoMlEmOptions {
        budget: Budget::Evaluations(12),
        seed: 5,
        ..Default::default()
    });
    println!(
        "fitted AutoML-EM on {} (test F1 = {test_f1:.3})\n",
        prepared.name
    );

    // 1. Native impurity importances, mapped to named similarity features.
    let names = prepared.generator.feature_names();
    match result.fitted.impurity_importances(&names) {
        Some(report) => {
            println!("top similarity features by impurity importance:");
            for (name, score) in report.top(8) {
                println!("  {score:>7.4}  {name}");
            }
        }
        None => println!("(incumbent uses a transform without native importances)"),
    }

    // 2. Model-agnostic permutation importances on the validation split.
    let (xv, yv) = prepared.valid();
    let perm = result
        .fitted
        .permutation_importances(&xv, &yv, &names, 2, 5);
    println!("\ntop features by permutation importance (F1 drop when shuffled):");
    for (name, score) in perm.top(5) {
        println!("  {score:>7.4}  {name}");
    }

    // 3. Score quality across thresholds: PR curve + average precision.
    let (xs, ys) = prepared.test();
    let scores = result.fitted.predict_match_proba(&xs);
    let ap = average_precision(&ys, &scores);
    println!("\naverage precision on test: {ap:.3}");
    let curve = precision_recall_curve(&ys, &scores);
    println!("PR curve (sampled):");
    for point in curve.iter().step_by((curve.len() / 6).max(1)) {
        println!(
            "  threshold {:>5.2} -> precision {:.3}, recall {:.3}",
            point.threshold, point.precision, point.recall
        );
    }

    // 4. F1-optimal operating point chosen on validation, applied to test.
    let (threshold, valid_f1) = result.fitted.tune_threshold(&xv, &yv);
    let tuned_pred = result.fitted.predict_with_threshold(&xs, threshold);
    let tuned_f1 = em_ml::f1_score(&ys, &tuned_pred);
    println!(
        "\nthreshold tuning: t = {threshold:.3} (valid F1 {valid_f1:.3}) -> test F1 {tuned_f1:.3} (argmax default: {test_f1:.3})"
    );
}
