//! Bring-your-own-data walkthrough: load two CSV tables, infer attribute
//! types, generate candidate pairs with a blocker, label a handful of pairs,
//! train a pipeline, and link the tables — the paper's Figure 1 restaurant
//! scenario end to end, without the benchmark generators.
//!
//! Run with:
//! ```sh
//! cargo run --release --example csv_dedup
//! ```

use automl_em::{EmPipelineConfig, FeatureGenerator, FeatureScheme};
use em_ml::Matrix;
use em_table::{infer_pair_types, parse_csv, Blocker, OverlapBlocker, RecordPair};

const TABLE_A: &str = "\
name,address,city,type
arnie mortons of chicago,435 s. la cienega blv.,los angeles,american
arts delicatessen,12224 ventura blvd.,studio city,american
fenix,8358 sunset blvd.,west hollywood,american
restaurant katsu,1972 n. hillhurst ave.,los angeles,asian
golden harbor kitchen,88 ocean drive,san francisco,seafood
luna rose bistro,500 main street,austin,italian
";

const TABLE_B: &str = "\
name,address,city,type
arnie mortons of chicago,435 s. la cienega blvd.,los angeles,steakhouses
arts deli,12224 ventura blvd.,studio city,delis
fenix at the argyle,8358 sunset blvd.,w. hollywood,french (new)
katsu,1972 hillhurst ave.,los feliz,japanese
golden harbor,88 ocean dr.,san francisco,fish & chips
blue iron tavern,77 spring street,brooklyn,american
";

fn main() {
    // 1. Load both sources (read_csv_file works the same way for files).
    let a = parse_csv(TABLE_A).expect("table A parses");
    let b = parse_csv(TABLE_B).expect("table B parses");
    let types = infer_pair_types(&a, &b);
    println!("inferred attribute types:");
    for (attr, t) in a.schema().iter().zip(&types) {
        println!("  {:10} -> {t:?}", attr.name);
    }

    // 2. Blocking: keep pairs sharing at least one name token.
    let blocker = OverlapBlocker {
        attribute: "name".into(),
        min_overlap: 1,
    };
    let candidates = blocker.candidates(&a, &b);
    println!("\ncandidate pairs after blocking: {}", candidates.len());

    // 3. Feature generation with the AutoML-EM scheme (Table II).
    let generator = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &b);
    println!("features per pair: {}", generator.n_features());

    // 4. Tiny labeled sample (in practice: active learning or an oracle).
    //    Figure 1 ground truth: (a1,b1), (a2,b2), (a3,b3), (a4,b4) match.
    let train_pairs = [
        (RecordPair::new(0, 0), 1),
        (RecordPair::new(1, 1), 1),
        (RecordPair::new(2, 2), 1),
        (RecordPair::new(4, 4), 1),
        (RecordPair::new(0, 1), 0),
        (RecordPair::new(1, 2), 0),
        (RecordPair::new(2, 0), 0),
        (RecordPair::new(3, 5), 0),
        (RecordPair::new(4, 5), 0),
        (RecordPair::new(5, 0), 0),
    ];
    let x_rows: Vec<Vec<f64>> = train_pairs
        .iter()
        .map(|(p, _)| generator.generate_row(&a, &b, *p))
        .collect();
    let x_train = Matrix::from_rows(&x_rows);
    let y_train: Vec<usize> = train_pairs.iter().map(|(_, y)| *y).collect();

    // 5. Train a pipeline (default random forest is plenty at this size).
    let pipeline = EmPipelineConfig::default_random_forest(0).fit(&x_train, &y_train);

    // 6. Link: score every blocked candidate pair.
    let x_cand = generator.generate(&a, &b, &candidates);
    let proba = pipeline.predict_match_proba(&x_cand);
    println!("\npredicted links (p >= 0.5):");
    for (pair, p) in candidates.iter().zip(&proba) {
        if *p >= 0.5 {
            let name_a = a.record(pair.left).get_by_name("name").unwrap();
            let name_b = b.record(pair.right).get_by_name("name").unwrap();
            println!("  {name_a:30} <-> {name_b:25} (p = {p:.2})");
        }
    }
}
