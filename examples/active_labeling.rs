//! Active labeling with self-training (AutoML-EM-Active, paper Algorithm 1):
//! start from a small random labeled sample, iteratively ask a simulated
//! human about the pairs the model is least sure of, trust the model's own
//! labels on the pairs it is most sure of — then hand the mixed label pool
//! to AutoML-EM.
//!
//! Run with:
//! ```sh
//! cargo run --release --example active_labeling
//! ```

use automl_em::{
    ActiveConfig, AutoMlEm, AutoMlEmActive, AutoMlEmOptions, FeatureScheme, GroundTruthOracle,
    PreparedDataset,
};
use em_automl::Budget;
use em_data::Benchmark;
use em_ml::{f1_score, stratified_train_test_indices};

fn main() {
    let dataset = Benchmark::AmazonGoogle.generate_scaled(11, 0.2);
    let prepared = PreparedDataset::prepare(&dataset, FeatureScheme::AutoMlEm, 11);
    // The labeling pool is the train+valid portion; the test split stays
    // untouched for the final score.
    let mut pool_idx: Vec<usize> = prepared.split.train.clone();
    pool_idx.extend_from_slice(&prepared.split.valid);
    let x_pool = prepared.features.select_rows(&pool_idx);
    let pool_truth: Vec<usize> = pool_idx.iter().map(|&i| prepared.labels[i]).collect();

    for (label, st_batch) in [
        ("plain active learning (st_batch = 0)", 0),
        ("AutoML-EM-Active (st_batch = 100)", 100),
    ] {
        println!("== {label} ==");
        let config = ActiveConfig {
            init_size: 100,
            ac_batch: 8,
            st_batch,
            iterations: 10,
            seed: 11,
            ..Default::default()
        };
        let mut oracle = GroundTruthOracle::from_classes(&pool_truth);
        let run = AutoMlEmActive::new(config).run(&x_pool, &mut oracle);
        println!(
            "labels collected: {} human + {} machine (oracle queries: {})",
            run.labeled.human_count(),
            run.labeled.machine_count(),
            run.labeled.human_count(),
        );
        // How accurate were the free machine labels?
        let (mut ok, mut machine) = (0, 0);
        for ((&i, &y), &h) in run
            .labeled
            .indices
            .iter()
            .zip(&run.labeled.labels)
            .zip(&run.labeled.human)
        {
            if !h {
                machine += 1;
                ok += usize::from(y == pool_truth[i]);
            }
        }
        if machine > 0 {
            println!(
                "machine-label accuracy: {:.1}% ({ok}/{machine})",
                100.0 * ok as f64 / machine as f64
            );
        }
        // Train AutoML-EM on the collected labels (split 4:1 train/valid)
        // and score on the untouched test set.
        let x_labeled = x_pool.select_rows(&run.labeled.indices);
        let (tr, va) = stratified_train_test_indices(&run.labeled.labels, 0.2, 11);
        let xt = x_labeled.select_rows(&tr);
        let yt: Vec<usize> = tr.iter().map(|&i| run.labeled.labels[i]).collect();
        let xv = x_labeled.select_rows(&va);
        let yv: Vec<usize> = va.iter().map(|&i| run.labeled.labels[i]).collect();
        let result = AutoMlEm::new(AutoMlEmOptions {
            budget: Budget::Evaluations(8),
            seed: 11,
            ..Default::default()
        })
        .fit(&xt, &yt, &xv, &yv);
        let (x_test, y_test) = prepared.test();
        let test_f1 = f1_score(&y_test, &result.fitted.predict(&x_test));
        println!("final AutoML-EM test F1: {test_f1:.3}\n");
    }
}
