//! Property tests for the benchmark generators: determinism, label
//! consistency, profile adherence, and noise-model invariants.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use em_data::{Benchmark, NoiseModel, FAMILY_SIZE};
use em_rt::StdRng;
use em_table::Value;

const CASES: u64 = 24;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0xda7a_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

const ALL_BENCHMARKS: [Benchmark; 8] = [
    Benchmark::BeerAdvoRateBeer,
    Benchmark::FodorsZagats,
    Benchmark::ItunesAmazon,
    Benchmark::DblpAcm,
    Benchmark::DblpScholar,
    Benchmark::AmazonGoogle,
    Benchmark::WalmartAmazon,
    Benchmark::AbtBuy,
];

fn any_benchmark(rng: &mut StdRng) -> Benchmark {
    ALL_BENCHMARKS[rng.random_range(0..ALL_BENCHMARKS.len())]
}

/// 1-5 lowercase words of 1-8 letters (the old text strategy).
fn random_text(rng: &mut StdRng, max_words: usize) -> String {
    let words = rng.random_range(1..=max_words);
    (0..words)
        .map(|_| {
            let len = rng.random_range(1..=8usize);
            (0..len)
                .map(|_| (b'a' + rng.random_range(0..26usize) as u8) as char)
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn generation_is_deterministic() {
    check(|rng| {
        let b = any_benchmark(rng);
        let seed = rng.random_range(0..50u64);
        let d1 = b.generate_scaled(seed, 0.05);
        let d2 = b.generate_scaled(seed, 0.05);
        assert_eq!(d1.table_a, d2.table_a);
        assert_eq!(d1.table_b, d2.table_b);
        assert_eq!(d1.pairs, d2.pairs);
    });
}

#[test]
fn labels_match_the_diagonal_construction() {
    check(|rng| {
        let b = any_benchmark(rng);
        let seed = rng.random_range(0..20u64);
        let ds = b.generate_scaled(seed, 0.08);
        for p in &ds.pairs {
            assert_eq!(p.label, p.pair.left == p.pair.right);
            assert!(p.pair.left < ds.table_a.len());
            assert!(p.pair.right < ds.table_b.len());
        }
    });
}

#[test]
fn positive_rate_tracks_the_profile() {
    check(|rng| {
        let b = any_benchmark(rng);
        let seed = rng.random_range(0..10u64);
        let ds = b.generate_scaled(seed, 0.25);
        let profile = b.profile();
        let expected = profile.positives as f64 / profile.total_pairs as f64;
        let got = ds.stats().positive_rate();
        assert!(
            (got - expected).abs() < 0.05,
            "{}: rate {got} vs profile {expected}",
            ds.name
        );
    });
}

#[test]
fn hard_negatives_stay_within_families() {
    check(|rng| {
        let b = any_benchmark(rng);
        let seed = rng.random_range(0..10u64);
        let ds = b.generate_scaled(seed, 0.1);
        // Every negative is either within one family (hard) or across
        // families (easy); families are contiguous blocks of FAMILY_SIZE.
        let mut within = 0usize;
        let mut across = 0usize;
        for p in ds.pairs.iter().filter(|p| !p.label) {
            if p.pair.left / FAMILY_SIZE == p.pair.right / FAMILY_SIZE {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 0, "{} has no hard negatives", ds.name);
        assert!(across > 0, "{} has no easy negatives", ds.name);
    });
}

#[test]
fn noise_models_keep_values_sane() {
    check(|rng| {
        let text = random_text(rng, 5);
        let number = rng.random_range(-1e4f64..1e4);
        for model in [
            NoiseModel::light(),
            NoiseModel::medium(),
            NoiseModel::heavy(),
        ] {
            match model.apply_string(&text, rng) {
                Value::Null => {}
                Value::Text(t) => assert!(!t.is_empty()),
                other => panic!("unexpected {other:?}"),
            }
            match model.apply_number(number, rng) {
                Value::Null => {}
                Value::Number(x) => assert!(x.is_finite()),
                other => panic!("unexpected {other:?}"),
            }
        }
    });
}

#[test]
fn none_noise_is_identity_everywhere() {
    check(|rng| {
        let text = random_text(rng, 4);
        let nm = NoiseModel::none();
        assert_eq!(nm.apply_string(&text, rng), Value::Text(text.clone()));
    });
}
