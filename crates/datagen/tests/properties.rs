//! Property tests for the benchmark generators: determinism, label
//! consistency, profile adherence, and noise-model invariants.

use em_data::{Benchmark, NoiseModel, FAMILY_SIZE};
use em_table::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::BeerAdvoRateBeer),
        Just(Benchmark::FodorsZagats),
        Just(Benchmark::ItunesAmazon),
        Just(Benchmark::DblpAcm),
        Just(Benchmark::DblpScholar),
        Just(Benchmark::AmazonGoogle),
        Just(Benchmark::WalmartAmazon),
        Just(Benchmark::AbtBuy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic(b in any_benchmark(), seed in 0u64..50) {
        let d1 = b.generate_scaled(seed, 0.05);
        let d2 = b.generate_scaled(seed, 0.05);
        prop_assert_eq!(d1.table_a, d2.table_a);
        prop_assert_eq!(d1.table_b, d2.table_b);
        prop_assert_eq!(d1.pairs, d2.pairs);
    }

    #[test]
    fn labels_match_the_diagonal_construction(b in any_benchmark(), seed in 0u64..20) {
        let ds = b.generate_scaled(seed, 0.08);
        for p in &ds.pairs {
            prop_assert_eq!(p.label, p.pair.left == p.pair.right);
            prop_assert!(p.pair.left < ds.table_a.len());
            prop_assert!(p.pair.right < ds.table_b.len());
        }
    }

    #[test]
    fn positive_rate_tracks_the_profile(b in any_benchmark(), seed in 0u64..10) {
        let ds = b.generate_scaled(seed, 0.25);
        let profile = b.profile();
        let expected = profile.positives as f64 / profile.total_pairs as f64;
        let got = ds.stats().positive_rate();
        prop_assert!(
            (got - expected).abs() < 0.05,
            "{}: rate {got} vs profile {expected}", ds.name
        );
    }

    #[test]
    fn hard_negatives_stay_within_families(b in any_benchmark(), seed in 0u64..10) {
        let ds = b.generate_scaled(seed, 0.1);
        // Every negative is either within one family (hard) or across
        // families (easy); families are contiguous blocks of FAMILY_SIZE.
        let mut within = 0usize;
        let mut across = 0usize;
        for p in ds.pairs.iter().filter(|p| !p.label) {
            if p.pair.left / FAMILY_SIZE == p.pair.right / FAMILY_SIZE {
                within += 1;
            } else {
                across += 1;
            }
        }
        prop_assert!(within > 0, "{} has no hard negatives", ds.name);
        prop_assert!(across > 0, "{} has no easy negatives", ds.name);
    }

    #[test]
    fn noise_models_keep_values_sane(
        text in "[a-z]{1,8}( [a-z]{1,8}){0,4}",
        number in -1e4f64..1e4,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for model in [NoiseModel::light(), NoiseModel::medium(), NoiseModel::heavy()] {
            match model.apply_string(&text, &mut rng) {
                Value::Null => {}
                Value::Text(t) => prop_assert!(!t.is_empty()),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
            match model.apply_number(number, &mut rng) {
                Value::Null => {}
                Value::Number(x) => prop_assert!(x.is_finite()),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn none_noise_is_identity_everywhere(
        text in "[a-z]{1,8}( [a-z]{1,8}){0,3}",
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nm = NoiseModel::none();
        prop_assert_eq!(nm.apply_string(&text, &mut rng), Value::Text(text.clone()));
    }
}
