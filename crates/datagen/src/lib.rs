//! # em-data — synthetic EM benchmark generators
//!
//! The paper evaluates on eight real benchmark datasets (Table III) that are
//! not redistributable here, so this crate synthesizes datasets with the
//! same *shape*: identical schema arity, pair counts, positive rates,
//! string-length profiles (so Magellan type inference assigns the same
//! buckets), family-structured hard negatives, and difficulty-calibrated
//! noise (typos, abbreviations, token drops/reorders, missing values,
//! numeric jitter). Every generator is fully seeded and deterministic.
//!
//! ```
//! use em_data::Benchmark;
//!
//! let ds = Benchmark::FodorsZagats.generate_scaled(42, 0.25);
//! let stats = ds.stats();
//! assert!(stats.positives > 0 && stats.positives < stats.total);
//! ```

mod benchmark;
pub mod catalog;
pub mod domains;
mod entity;
mod noise;
pub mod vocab;

pub use benchmark::{Benchmark, DatasetProfile, Difficulty, EmDataset};
pub use catalog::{CatalogSpec, ScaleCatalog};
pub use entity::{family_of, EntityDomain, FAMILY_SIZE};
pub use noise::{NoiseModel, ABBREVIATIONS};
