//! The domain abstraction: each benchmark domain knows its schema and how to
//! synthesize a base (clean) record for entity `(family, member)`.
//!
//! Families model the cluster structure real EM candidate sets have after
//! blocking: entities in the same family share brand / brewery / venue /
//! city tokens, so cross-pairs within a family are *hard negatives* — they
//! look similar but are different entities.

use em_rt::StdRng;
use em_table::{Schema, Value};

/// A benchmark domain: schema plus base-record synthesis.
pub trait EntityDomain: Send + Sync {
    /// Short identifier used in dataset names.
    fn name(&self) -> &'static str;

    /// Schema shared by the A and B tables.
    fn schema(&self) -> Schema;

    /// Synthesize the clean record of entity `(family, member)`.
    /// Must be deterministic given the rng state: the builder seeds the rng
    /// once and generates entities in a fixed order.
    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value>;
}

/// Number of entities that share a family (and therefore share confusable
/// tokens). 4 matches the density of hard negatives in the real benchmarks.
pub const FAMILY_SIZE: usize = 4;

/// Map a flat entity index to its `(family, member)` coordinates.
pub fn family_of(entity: usize) -> (usize, usize) {
    (entity / FAMILY_SIZE, entity % FAMILY_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_mapping() {
        assert_eq!(family_of(0), (0, 0));
        assert_eq!(family_of(3), (0, 3));
        assert_eq!(family_of(4), (1, 0));
        assert_eq!(family_of(9), (2, 1));
    }
}
