//! The eight benchmark builders mirroring the paper's Table III: dataset
//! sizes, attribute counts, positive-pair counts, and difficulty categories
//! (easy & small, easy & large, hard & large).
//!
//! Real benchmark data is not redistributable here, so each builder
//! synthesizes tables whose *shape* matches the original: same schema arity,
//! same pair counts, same positive rate, string-length profile chosen so the
//! Magellan type inference assigns the same buckets, and noise calibrated to
//! the difficulty class. See DESIGN.md §1 for the substitution argument.

use crate::domains::{
    BeerDomain, DescriptionProductDomain, ElectronicsDomain, PublicationDomain, RestaurantDomain,
    SoftwareDomain, SongDomain,
};
use crate::entity::{family_of, EntityDomain, FAMILY_SIZE};
use crate::noise::NoiseModel;
use em_rt::StdRng;
use em_table::{LabeledPair, PairStats, Table};
use std::collections::BTreeSet;

/// Difficulty category from Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Difficulty {
    /// Easy & small (hundreds of pairs).
    EasySmall,
    /// Easy & large (tens of thousands of pairs).
    EasyLarge,
    /// Hard & large (noisy, textual, ~10k pairs).
    HardLarge,
}

/// Static description of one benchmark (the Table III row).
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Total candidate pairs (train + test in the paper's accounting).
    pub total_pairs: usize,
    /// Matching (positive) pairs among them.
    pub positives: usize,
    /// Number of attributes.
    pub n_attrs: usize,
    /// Difficulty category.
    pub difficulty: Difficulty,
}

/// The eight paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Beer dataset: 450 pairs, 68 positive, 4 attributes.
    BeerAdvoRateBeer,
    /// Restaurant dataset: 946 pairs, 110 positive, 6 attributes.
    FodorsZagats,
    /// Song dataset: 539 pairs, 132 positive, 8 attributes.
    ItunesAmazon,
    /// Publication dataset: 12363 pairs, 2220 positive, 4 attributes.
    DblpAcm,
    /// Publication dataset: 28707 pairs, 5347 positive, 4 attributes.
    DblpScholar,
    /// Software products: 11460 pairs, 1167 positive, 3 attributes.
    AmazonGoogle,
    /// Electronics: 10242 pairs, 962 positive, 5 attributes.
    WalmartAmazon,
    /// Products with long descriptions: 9575 pairs, 1028 positive, 3 attrs.
    AbtBuy,
}

impl Benchmark {
    /// All eight benchmarks in the paper's Table III order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::BeerAdvoRateBeer,
            Benchmark::FodorsZagats,
            Benchmark::ItunesAmazon,
            Benchmark::DblpAcm,
            Benchmark::DblpScholar,
            Benchmark::AmazonGoogle,
            Benchmark::WalmartAmazon,
            Benchmark::AbtBuy,
        ]
    }

    /// The Table III row for this benchmark.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            Benchmark::BeerAdvoRateBeer => DatasetProfile {
                name: "BeerAdvo-RateBeer",
                total_pairs: 450,
                positives: 68,
                n_attrs: 4,
                difficulty: Difficulty::EasySmall,
            },
            Benchmark::FodorsZagats => DatasetProfile {
                name: "Fodors-Zagats",
                total_pairs: 946,
                positives: 110,
                n_attrs: 6,
                difficulty: Difficulty::EasySmall,
            },
            Benchmark::ItunesAmazon => DatasetProfile {
                name: "iTunes-Amazon",
                total_pairs: 539,
                positives: 132,
                n_attrs: 8,
                difficulty: Difficulty::EasySmall,
            },
            Benchmark::DblpAcm => DatasetProfile {
                name: "DBLP-ACM",
                total_pairs: 12363,
                positives: 2220,
                n_attrs: 4,
                difficulty: Difficulty::EasyLarge,
            },
            Benchmark::DblpScholar => DatasetProfile {
                name: "DBLP-Scholar",
                total_pairs: 28707,
                positives: 5347,
                n_attrs: 4,
                difficulty: Difficulty::EasyLarge,
            },
            Benchmark::AmazonGoogle => DatasetProfile {
                name: "Amazon-Google",
                total_pairs: 11460,
                positives: 1167,
                n_attrs: 3,
                difficulty: Difficulty::HardLarge,
            },
            Benchmark::WalmartAmazon => DatasetProfile {
                name: "Walmart-Amazon",
                total_pairs: 10242,
                positives: 962,
                n_attrs: 5,
                difficulty: Difficulty::HardLarge,
            },
            Benchmark::AbtBuy => DatasetProfile {
                name: "Abt-Buy",
                total_pairs: 9575,
                positives: 1028,
                n_attrs: 3,
                difficulty: Difficulty::HardLarge,
            },
        }
    }

    /// The A-side and B-side domain generators. DBLP-Scholar renders its B
    /// side in "scholar style" (abbreviated venues, author initials).
    fn domains(&self) -> (Box<dyn EntityDomain>, Box<dyn EntityDomain>) {
        match self {
            Benchmark::BeerAdvoRateBeer => (Box::new(BeerDomain), Box::new(BeerDomain)),
            Benchmark::FodorsZagats => (Box::new(RestaurantDomain), Box::new(RestaurantDomain)),
            Benchmark::ItunesAmazon => (Box::new(SongDomain), Box::new(SongDomain)),
            Benchmark::DblpAcm => (
                Box::new(PublicationDomain {
                    scholar_style: false,
                }),
                Box::new(PublicationDomain {
                    scholar_style: false,
                }),
            ),
            Benchmark::DblpScholar => (
                Box::new(PublicationDomain {
                    scholar_style: false,
                }),
                Box::new(PublicationDomain {
                    scholar_style: true,
                }),
            ),
            Benchmark::AmazonGoogle => (Box::new(SoftwareDomain), Box::new(SoftwareDomain)),
            Benchmark::WalmartAmazon => (Box::new(ElectronicsDomain), Box::new(ElectronicsDomain)),
            Benchmark::AbtBuy => (
                Box::new(DescriptionProductDomain),
                Box::new(DescriptionProductDomain),
            ),
        }
    }

    /// Noise profile for the B side, by difficulty.
    fn noise(&self) -> NoiseModel {
        match self {
            // Paper F1 bands: Beer ~79-82 and DBLP-Scholar ~92-95 are the
            // noisier members of the "easy" category.
            Benchmark::BeerAdvoRateBeer | Benchmark::DblpScholar => NoiseModel::medium(),
            Benchmark::ItunesAmazon => NoiseModel {
                typo: 0.05,
                drop_token: 0.06,
                ..NoiseModel::light()
            },
            _ => match self.profile().difficulty {
                Difficulty::EasySmall | Difficulty::EasyLarge => NoiseModel::light(),
                Difficulty::HardLarge => NoiseModel::heavy(),
            },
        }
    }

    /// Per-attribute noise override, modeling the *structural* divergence of
    /// the real sources (e.g. the Google side of Amazon-Google leaves the
    /// manufacturer blank for most products; Abt and Buy price the same item
    /// differently). `None` falls back to [`Benchmark::noise`].
    fn attr_noise(&self, attr: usize) -> Option<NoiseModel> {
        let base = self.noise();
        match (self, attr) {
            // Amazon-Google: manufacturer mostly missing on one side,
            // prices diverge.
            (Benchmark::AmazonGoogle, 1) => Some(NoiseModel {
                missing: 0.55,
                ..base
            }),
            (Benchmark::AmazonGoogle, 2) => Some(NoiseModel {
                numeric_jitter: 0.20,
                numeric_requantize: 0.6,
                missing: 0.15,
                ..base
            }),
            // Walmart-Amazon: model numbers typo-ridden or absent, brand
            // sometimes blank.
            (Benchmark::WalmartAmazon, 3) => Some(NoiseModel {
                typo: 0.40,
                missing: 0.40,
                ..base
            }),
            (Benchmark::WalmartAmazon, 2) => Some(NoiseModel {
                missing: 0.25,
                ..base
            }),
            // Abt-Buy: names often drop the distinguishing model token,
            // descriptions are rewrapped, prices diverge between the shops.
            (Benchmark::AbtBuy, 0) => Some(NoiseModel {
                drop_token: 0.35,
                typo: 0.15,
                ..base
            }),
            (Benchmark::AbtBuy, 1) => Some(NoiseModel {
                drop_token: 0.22,
                typo: 0.10,
                swap_tokens: 0.30,
                ..base
            }),
            (Benchmark::AbtBuy, 2) => Some(NoiseModel {
                numeric_jitter: 0.15,
                numeric_requantize: 0.6,
                missing: 0.20,
                ..base
            }),
            // BeerAdvo-RateBeer: the two sites disagree on ABV decimals.
            (Benchmark::BeerAdvoRateBeer, 3) => Some(NoiseModel {
                numeric_jitter: 0.015,
                numeric_requantize: 0.2,
                ..base
            }),
            (Benchmark::BeerAdvoRateBeer, 0) => Some(NoiseModel {
                typo: 0.06,
                drop_token: 0.06,
                ..base
            }),
            _ => None,
        }
    }

    /// Fraction of negatives drawn from the same family (hard negatives).
    fn hard_negative_fraction(&self) -> f64 {
        match self.profile().difficulty {
            Difficulty::EasySmall | Difficulty::EasyLarge => 0.35,
            Difficulty::HardLarge => 0.70,
        }
    }

    /// Generate the dataset at the paper's full size.
    pub fn generate(&self, seed: u64) -> EmDataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Generate at `scale` × the paper's size (0 < scale ≤ 1). Tests and
    /// quick experiment runs use small scales; the full harness uses 1.0.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> EmDataset {
        self.generate_scaled_with_jobs(seed, scale, 0)
    }

    /// [`generate_scaled`] with an explicit `em-rt` job cap (0 = full pool).
    ///
    /// Entity synthesis is one pool task per entity: entity `e` draws from
    /// its own `derive_seed(seed, e)` RNG stream and writes into its own
    /// row slot, so the dataset depends only on `(seed, scale)` and is
    /// bit-identical for every `jobs`. Negative-pair sampling runs serially
    /// on a separate `derive_seed(seed, u64::MAX)` stream (a reserved index
    /// no entity can reach).
    pub fn generate_scaled_with_jobs(&self, seed: u64, scale: f64, jobs: usize) -> EmDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let profile = self.profile();
        let positives = ((profile.positives as f64 * scale).round() as usize).max(8);
        let total = ((profile.total_pairs as f64 * scale).round() as usize).max(positives * 2);
        let negatives = total - positives;
        let (domain_a, domain_b) = self.domains();
        let noise = self.noise();
        let mut table_a = Table::new(domain_a.schema());
        let mut table_b = Table::new(domain_b.schema());
        // One entity per positive pair; A gets the clean render, B the
        // noisy render of the same entity (DBLP-Scholar also switches the
        // rendering style via its distinct B-side domain).
        type RowPair = (Vec<em_table::Value>, Vec<em_table::Value>);
        let mut rows: Vec<Option<RowPair>> = vec![None; positives];
        {
            let writer = em_rt::SliceWriter::new(&mut rows);
            em_rt::parallel_for(positives, jobs, |e| {
                let mut rng = StdRng::seed_from_u64(em_rt::derive_seed(seed, e as u64));
                let (family, member) = family_of(e);
                let rec_a = domain_a.base_record(family, member, &mut rng);
                let rec_b_base = domain_b.base_record(family, member, &mut rng);
                let rec_b: Vec<em_table::Value> = rec_b_base
                    .iter()
                    .enumerate()
                    .map(|(col, v)| {
                        let model = self.attr_noise(col).unwrap_or(noise);
                        model.apply(v, &mut rng)
                    })
                    .collect();
                // Safety: each entity index is handed out exactly once, and
                // the one-element slots are pairwise disjoint.
                unsafe { writer.slice_mut(e, 1)[0] = Some((rec_a, rec_b)) };
            });
        }
        for pair in rows {
            let (rec_a, rec_b) = pair.expect("every entity slot filled");
            table_a.push_row(rec_a).expect("domain arity");
            table_b.push_row(rec_b).expect("domain arity");
        }
        let mut rng = StdRng::seed_from_u64(em_rt::derive_seed(seed, u64::MAX));
        let mut pairs: Vec<LabeledPair> = (0..positives)
            .map(|e| LabeledPair::new(e, e, true))
            .collect();
        // Negatives reference existing rows: same-family cross pairs are the
        // hard ones, cross-family pairs the easy ones. Hard pairs are finite
        // (≈ positives × (FAMILY_SIZE - 1)), so enumerate them exhaustively,
        // shuffle, and take up to the target; easy pairs fill the remainder.
        let hard_target = (negatives as f64 * self.hard_negative_fraction()).round() as usize;
        let mut seen: BTreeSet<(usize, usize)> = (0..positives).map(|e| (e, e)).collect();
        let mut hard_pool: Vec<(usize, usize)> = Vec::new();
        for i in 0..positives {
            let (family, _) = family_of(i);
            for m in 0..FAMILY_SIZE {
                let j = family * FAMILY_SIZE + m;
                if j != i && j < positives {
                    hard_pool.push((i, j));
                }
            }
        }
        {
            use em_rt::SliceRandom;
            hard_pool.shuffle(&mut rng);
        }
        let mut negatives_made = 0usize;
        for (i, j) in hard_pool.into_iter().take(hard_target.min(negatives)) {
            if seen.insert((i, j)) {
                pairs.push(LabeledPair::new(i, j, false));
                negatives_made += 1;
            }
        }
        // Easy negatives: random cross-family pairs until the count is met
        // (bounded retries guard against pathological tiny datasets).
        let mut attempts = 0usize;
        let max_attempts = negatives * 200 + 10_000;
        while negatives_made < negatives && attempts < max_attempts {
            attempts += 1;
            let i = rng.random_range(0..positives);
            let j = rng.random_range(0..positives);
            if family_of(i).0 == family_of(j).0 {
                continue;
            }
            if seen.insert((i, j)) {
                pairs.push(LabeledPair::new(i, j, false));
                negatives_made += 1;
            }
        }
        EmDataset {
            name: profile.name.to_owned(),
            benchmark: *self,
            table_a,
            table_b,
            pairs,
        }
    }
}

/// A generated EM dataset: two tables plus the labeled candidate pairs.
#[derive(Debug, Clone)]
pub struct EmDataset {
    /// Human-readable benchmark name.
    pub name: String,
    /// Which benchmark produced this dataset.
    pub benchmark: Benchmark,
    /// Left (clean) table.
    pub table_a: Table,
    /// Right (noisy) table.
    pub table_b: Table,
    /// Labeled candidate pairs.
    pub pairs: Vec<LabeledPair>,
}

impl EmDataset {
    /// Positive/total statistics.
    pub fn stats(&self) -> PairStats {
        PairStats::of(&self.pairs)
    }

    /// Gold labels as 0/1 class indices in pair order.
    pub fn labels(&self) -> Vec<usize> {
        self.pairs.iter().map(|p| usize::from(p.label)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table_iii() {
        let p = Benchmark::DblpScholar.profile();
        assert_eq!(p.total_pairs, 28707);
        assert_eq!(p.positives, 5347);
        assert_eq!(p.n_attrs, 4);
        let p = Benchmark::AbtBuy.profile();
        assert_eq!(p.total_pairs, 9575);
        assert_eq!(p.positives, 1028);
        assert_eq!(p.n_attrs, 3);
    }

    #[test]
    fn schema_arity_matches_profiles() {
        for b in Benchmark::all() {
            let ds = b.generate_scaled(0, 0.05);
            assert_eq!(
                ds.table_a.schema().len(),
                b.profile().n_attrs,
                "{}",
                ds.name
            );
            assert_eq!(ds.table_b.schema().len(), b.profile().n_attrs);
        }
    }

    #[test]
    fn scaled_counts_are_proportional() {
        let ds = Benchmark::AbtBuy.generate_scaled(1, 0.1);
        let stats = ds.stats();
        let profile = Benchmark::AbtBuy.profile();
        let expect_pos = (profile.positives as f64 * 0.1).round() as usize;
        assert_eq!(stats.positives, expect_pos);
        assert!(
            (stats.total as f64 - profile.total_pairs as f64 * 0.1).abs()
                < profile.total_pairs as f64 * 0.02,
            "total {} vs expected ~{}",
            stats.total,
            profile.total_pairs / 10
        );
    }

    #[test]
    fn pairs_reference_valid_rows_and_are_unique() {
        let ds = Benchmark::FodorsZagats.generate_scaled(2, 0.5);
        let mut seen = BTreeSet::new();
        for p in &ds.pairs {
            assert!(p.pair.left < ds.table_a.len());
            assert!(p.pair.right < ds.table_b.len());
            assert!(seen.insert((p.pair.left, p.pair.right)), "duplicate pair");
        }
    }

    #[test]
    fn positives_are_diagonal_negatives_off_diagonal() {
        let ds = Benchmark::BeerAdvoRateBeer.generate_scaled(3, 1.0);
        for p in &ds.pairs {
            assert_eq!(p.label, p.pair.left == p.pair.right);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = Benchmark::ItunesAmazon.generate_scaled(7, 0.5);
        let b = Benchmark::ItunesAmazon.generate_scaled(7, 0.5);
        assert_eq!(a.table_a, b.table_a);
        assert_eq!(a.table_b, b.table_b);
        assert_eq!(a.pairs, b.pairs);
        let c = Benchmark::ItunesAmazon.generate_scaled(8, 0.5);
        assert_ne!(a.table_b, c.table_b);
    }

    #[test]
    fn positive_pairs_are_textually_similar() {
        use em_text::{jaccard, Tokenizer};
        let ds = Benchmark::FodorsZagats.generate_scaled(4, 1.0);
        let mut pos_sim = 0.0;
        let mut neg_sim = 0.0;
        let (mut np, mut nn) = (0, 0);
        for p in &ds.pairs {
            let a = ds.table_a.record(p.pair.left);
            let b = ds.table_b.record(p.pair.right);
            let (Some(na), Some(nb)) = (a.get(0).to_display_string(), b.get(0).to_display_string())
            else {
                continue;
            };
            let s = jaccard(&na, &nb, Tokenizer::QGram(3));
            if p.label {
                pos_sim += s;
                np += 1;
            } else {
                neg_sim += s;
                nn += 1;
            }
        }
        let pos_avg = pos_sim / np as f64;
        let neg_avg = neg_sim / nn as f64;
        assert!(
            pos_avg > neg_avg + 0.2,
            "positives ({pos_avg:.2}) should be clearly more similar than negatives ({neg_avg:.2})"
        );
    }

    #[test]
    fn hard_dataset_has_more_confusable_negatives() {
        use em_text::{jaccard, Tokenizer};
        let easy = Benchmark::FodorsZagats.generate_scaled(5, 0.5);
        let hard = Benchmark::AbtBuy.generate_scaled(5, 0.05);
        let avg_neg_sim = |ds: &EmDataset| {
            let mut total = 0.0;
            let mut n = 0;
            for p in ds.pairs.iter().filter(|p| !p.label) {
                let a = ds.table_a.record(p.pair.left).get(0).to_display_string();
                let b = ds.table_b.record(p.pair.right).get(0).to_display_string();
                if let (Some(a), Some(b)) = (a, b) {
                    total += jaccard(&a, &b, Tokenizer::Whitespace);
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(avg_neg_sim(&hard) > avg_neg_sim(&easy));
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = Benchmark::AbtBuy.generate_scaled(0, 0.0);
    }
}
