//! Publication domain (DBLP-ACM / DBLP-Scholar shape: 4 attributes — title,
//! authors, venue, year; paper Table III). The `scholar_style` flag makes the
//! B side render venues in abbreviated form and author lists with initials,
//! mirroring how Google Scholar differs from DBLP.

use crate::entity::EntityDomain;
use crate::vocab;
use em_rt::StdRng;
use em_table::{Schema, Value};

/// Publications: members of a family share a venue and an author cluster
/// (same research group publishing related papers).
#[derive(Debug, Clone, Copy, Default)]
pub struct PublicationDomain {
    /// Render venue/author strings the "scholar" way (short venue,
    /// initials) — used for the harder DBLP-Scholar variant.
    pub scholar_style: bool,
}

impl EntityDomain for PublicationDomain {
    fn name(&self) -> &'static str {
        "publication"
    }

    fn schema(&self) -> Schema {
        Schema::new(["title", "authors", "venue", "year"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        let (venue_long, venue_short) = vocab::VENUES[family % vocab::VENUES.len()];
        // Sibling papers come from the same group: they share the leading
        // title word and the subject noun, and mostly the author list —
        // the classic DBLP hard negative (same authors, similar titles).
        let w1 = vocab::pick(vocab::PAPER_WORDS, family * 5);
        let w2 = vocab::pick(vocab::PAPER_WORDS, family + member * 11 + 7);
        let w3 = vocab::pick(vocab::PAPER_WORDS, family * 9 + member * 13 + 2);
        let noun = vocab::pick(vocab::PAPER_NOUNS, family * 3);
        let title = format!("{w1} {w2} {w3} for {noun}");
        let n_authors = 2 + member % 2;
        let mut authors = Vec::new();
        for a in 0..n_authors {
            let first = vocab::pick(vocab::AUTHOR_FIRST, family * 7 + a * 3);
            let last = vocab::pick(vocab::AUTHOR_LAST, family * 2 + a * 5);
            if self.scholar_style {
                authors.push(format!("{}. {last}", &first[..1]));
            } else {
                authors.push(format!("{first} {last}"));
            }
        }
        let authors = authors.join(", ");
        let venue = if self.scholar_style {
            venue_short
        } else {
            venue_long
        };
        let year = 1998 + (family * 5 + member / 2 + rng.random_range(0..2usize)) % 25;
        vec![
            Value::Text(title),
            Value::Text(authors),
            Value::Text(venue.to_owned()),
            Value::Number(year as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        assert_eq!(PublicationDomain::default().schema().len(), 4);
    }

    #[test]
    fn scholar_style_abbreviates() {
        let mut rng = StdRng::seed_from_u64(0);
        let dblp = PublicationDomain {
            scholar_style: false,
        };
        let scholar = PublicationDomain {
            scholar_style: true,
        };
        let a = dblp.base_record(0, 0, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(0);
        let b = scholar.base_record(0, 0, &mut rng2);
        let va = a[2].as_text().unwrap();
        let vb = b[2].as_text().unwrap();
        assert!(va.len() > vb.len(), "{va} vs {vb}");
        // Same title either way.
        assert_eq!(a[0], b[0]);
        // Scholar authors use initials.
        assert!(b[1].as_text().unwrap().contains(". "));
    }

    #[test]
    fn family_shares_venue() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = PublicationDomain::default();
        let a = d.base_record(2, 0, &mut rng);
        let b = d.base_record(2, 3, &mut rng);
        assert_eq!(a[2], b[2]);
        assert_ne!(a[0], b[0]);
    }
}
