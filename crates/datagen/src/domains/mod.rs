//! Concrete benchmark domains mirroring the paper's Table III datasets:
//! restaurants (Fodors-Zagats), beers (BeerAdvo-RateBeer), songs
//! (iTunes-Amazon), publications (DBLP-ACM / DBLP-Scholar), and products
//! (Amazon-Google software, Walmart-Amazon electronics, Abt-Buy with long
//! descriptions).

mod beer;
mod product;
mod publication;
mod restaurant;
mod song;

pub use beer::BeerDomain;
pub use product::{DescriptionProductDomain, ElectronicsDomain, SoftwareDomain};
pub use publication::PublicationDomain;
pub use restaurant::RestaurantDomain;
pub use song::SongDomain;
