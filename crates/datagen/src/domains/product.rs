//! Product domains:
//! - [`SoftwareDomain`] — Amazon-Google shape (3 attributes: title,
//!   manufacturer, price),
//! - [`ElectronicsDomain`] — Walmart-Amazon shape (5 attributes: title,
//!   category, brand, modelno, price),
//! - [`DescriptionProductDomain`] — Abt-Buy shape (3 attributes: name,
//!   description, price) with a *long-text* description attribute, the case
//!   the paper highlights as hardest for non-deep-learning matchers.
//!
//! These are the "hard & large" benchmarks, so family siblings are
//! near-duplicates: same brand, same product line, same wording — they
//! differ only in a version number, an edition word, or one character of a
//! model code. That is exactly the product-catalog ambiguity that pins real
//! Abt-Buy / Amazon-Google F1 scores in the 40-70 range.

use crate::entity::EntityDomain;
use crate::vocab;
use em_rt::StdRng;
use em_table::{Schema, Value};

/// Family base price plus a small per-member step, so sibling prices are
/// confusably close.
fn price_for(family: usize, member: usize) -> f64 {
    let base_cents = 4900 + (family * 3337) % 45000;
    let cents = base_cents + member * 300;
    cents as f64 / 100.0
}

/// Model codes within a family differ in a single trailing letter:
/// `SO410a` vs `SO410b` — one typo away from a sibling collision.
fn model_number(family: usize, member: usize) -> String {
    let brand = vocab::pick(vocab::BRANDS, family);
    format!(
        "{}{}{}",
        brand[..2].to_ascii_uppercase(),
        100 + (family * 7) % 900,
        (b'a' + (member % 26) as u8) as char,
    )
}

/// Software products (Amazon-Google): title, manufacturer, price.
///
/// Siblings are successive versions/editions of the same product
/// ("photo studio 9.0 standard" vs "photo studio 9.0 professional" vs
/// "photo studio 10.0 standard"), mirroring the real Amazon-Google
/// confusables.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftwareDomain;

impl EntityDomain for SoftwareDomain {
    fn name(&self) -> &'static str {
        "software"
    }

    fn schema(&self) -> Schema {
        Schema::new(["title", "manufacturer", "price"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        let publisher = vocab::pick(vocab::SOFTWARE_PUBLISHERS, family);
        let product = vocab::pick(vocab::SOFTWARE_NAMES, family);
        let version = 3 + family % 9 + member / 2;
        let edition = if member.is_multiple_of(2) {
            "standard"
        } else {
            "professional"
        };
        let title = format!("{publisher} {product} {version}.0 {edition}");
        let _ = rng;
        vec![
            Value::Text(title),
            Value::Text(publisher.to_owned()),
            Value::Number(price_for(family, member) / 3.0),
        ]
    }
}

/// Electronics (Walmart-Amazon): title, category, brand, modelno, price.
///
/// Siblings share brand, product type, and marketing adjective — only the
/// model code moves.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElectronicsDomain;

impl EntityDomain for ElectronicsDomain {
    fn name(&self) -> &'static str {
        "electronics"
    }

    fn schema(&self) -> Schema {
        Schema::new(["title", "category", "brand", "modelno", "price"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        let brand = vocab::pick(vocab::BRANDS, family);
        let ptype = vocab::pick(vocab::PRODUCT_TYPES, family);
        let adj = vocab::pick(vocab::PRODUCT_ADJECTIVES, family);
        let model = model_number(family, member);
        let title = format!("{brand} {adj} {ptype} {model}");
        let category = ptype
            .split_whitespace()
            .last()
            .unwrap_or("electronics")
            .to_owned();
        let _ = rng;
        vec![
            Value::Text(title),
            Value::Text(category),
            Value::Text(brand.to_owned()),
            Value::Text(model),
            Value::Number(price_for(family, member)),
        ]
    }
}

/// Products with long text descriptions (Abt-Buy): name, description, price.
///
/// Siblings share the brand, product type, and two of three description
/// clauses; the distinguishing model code is one character apart — so a
/// noisy positive and a sibling negative look almost identical, the Abt-Buy
/// situation where Magellan's F1 collapses to ~44.
#[derive(Debug, Clone, Copy, Default)]
pub struct DescriptionProductDomain;

impl EntityDomain for DescriptionProductDomain {
    fn name(&self) -> &'static str {
        "product_description"
    }

    fn schema(&self) -> Schema {
        Schema::new(["name", "description", "price"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        let brand = vocab::pick(vocab::BRANDS, family);
        let ptype = vocab::pick(vocab::PRODUCT_TYPES, family);
        let model = model_number(family, member);
        let name = format!("{brand} {ptype} {model}");
        // Long description (> 10 words, the paper's Long String bucket).
        // All three clauses are family-determined: sibling descriptions are
        // *identical except for the model code*, so the only signal
        // separating a noisy positive from a sibling negative is one
        // character of the model token — the Abt-Buy regime.
        let c1 = vocab::pick(vocab::DESCRIPTION_CLAUSES, family);
        let c2 = vocab::pick(vocab::DESCRIPTION_CLAUSES, family * 3 + 1);
        let c3 = vocab::pick(vocab::DESCRIPTION_CLAUSES, family * 5 + 2);
        let adj = vocab::pick(vocab::PRODUCT_ADJECTIVES, family);
        let description = format!("the {brand} {model} is a {adj} {ptype} {c1} {c2} {c3}");
        let _ = rng;
        vec![
            Value::Text(name),
            Value::Text(description),
            Value::Number(price_for(family, member)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_text::{jaccard, Tokenizer};

    #[test]
    fn schema_shapes_match_table_iii() {
        assert_eq!(SoftwareDomain.schema().len(), 3);
        assert_eq!(ElectronicsDomain.schema().len(), 5);
        assert_eq!(DescriptionProductDomain.schema().len(), 3);
    }

    #[test]
    fn description_is_long_string() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = DescriptionProductDomain.base_record(1, 2, &mut rng);
        let desc = r[1].as_text().unwrap();
        assert!(
            desc.split_whitespace().count() > 10,
            "description too short: {desc}"
        );
    }

    #[test]
    fn electronics_family_shares_brand() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ElectronicsDomain.base_record(5, 0, &mut rng);
        let b = ElectronicsDomain.base_record(5, 3, &mut rng);
        assert_eq!(a[2], b[2]);
        assert_ne!(a[3], b[3], "model numbers must differ");
    }

    #[test]
    fn model_numbers_are_distinct_within_family() {
        let mut seen = std::collections::BTreeSet::new();
        for m in 0..4 {
            seen.insert(model_number(7, m));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn siblings_are_near_duplicates() {
        // The hard-negative design: sibling titles overlap heavily.
        let mut rng = StdRng::seed_from_u64(2);
        for f in 0..10 {
            let a = SoftwareDomain.base_record(f, 0, &mut rng);
            let b = SoftwareDomain.base_record(f, 1, &mut rng);
            let sim = jaccard(
                a[0].as_text().unwrap(),
                b[0].as_text().unwrap(),
                Tokenizer::Whitespace,
            );
            assert!(sim > 0.5, "sibling similarity only {sim}");
            assert_ne!(a[0], b[0], "siblings are still distinct entities");
        }
    }

    #[test]
    fn sibling_prices_are_close() {
        let mut rng = StdRng::seed_from_u64(3);
        for f in 0..10 {
            let a = ElectronicsDomain.base_record(f, 0, &mut rng);
            let b = ElectronicsDomain.base_record(f, 3, &mut rng);
            let pa = a[4].as_number().unwrap();
            let pb = b[4].as_number().unwrap();
            assert!((pa - pb).abs() / pa.max(pb) < 0.25, "{pa} vs {pb}");
        }
    }

    #[test]
    fn prices_are_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for f in 0..20 {
            for m in 0..4 {
                for rec in [
                    SoftwareDomain.base_record(f, m, &mut rng),
                    ElectronicsDomain.base_record(f, m, &mut rng),
                    DescriptionProductDomain.base_record(f, m, &mut rng),
                ] {
                    let p = rec.last().unwrap().as_number().unwrap();
                    assert!(p > 0.0);
                }
            }
        }
    }
}
