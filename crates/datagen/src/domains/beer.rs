//! Beer domain (BeerAdvo-RateBeer shape: 4 attributes — beer name, brewery
//! name, style, ABV; paper Table III).

use crate::entity::EntityDomain;
use crate::vocab;
use em_rt::StdRng;
use em_table::{Schema, Value};

/// Beers: members of a family come from the same brewery.
#[derive(Debug, Clone, Copy, Default)]
pub struct BeerDomain;

impl EntityDomain for BeerDomain {
    fn name(&self) -> &'static str {
        "beer"
    }

    fn schema(&self) -> Schema {
        Schema::new(["beer_name", "brew_factory_name", "style", "abv"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        // Siblings share the brewery and either the adjective or the noun,
        // so same-family beers ("stone hoppy lager" vs "stone hoppy porter")
        // are genuinely confusable — BeerAdvo-RateBeer sits at ~79 F1 in the
        // paper despite being "easy & small".
        let brewery = vocab::pick(vocab::BREWERIES, family);
        let adj = vocab::pick(vocab::BEER_ADJECTIVES, family * 2 + member / 2);
        let noun = vocab::pick(vocab::BEER_NOUNS, family * 3 + member % 2);
        let style = vocab::pick(vocab::BEER_STYLES, family + member / 2);
        let name = format!("{brewery} {adj} {noun}");
        let abv = 4.0
            + ((family * 17) % 70) as f64 / 10.0
            + member as f64 * 0.1
            + rng.random_range(0.0..0.1);
        vec![
            Value::Text(name),
            Value::Text(format!("{brewery} brewing")),
            Value::Text(style.to_owned()),
            Value::Number((abv * 10.0).round() / 10.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        assert_eq!(BeerDomain.schema().len(), 4);
    }

    #[test]
    fn family_shares_brewery() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = BeerDomain.base_record(2, 0, &mut rng);
        let b = BeerDomain.base_record(2, 3, &mut rng);
        assert_eq!(a[1], b[1]);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn abv_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        for f in 0..10 {
            for m in 0..4 {
                let r = BeerDomain.base_record(f, m, &mut rng);
                let abv = r[3].as_number().unwrap();
                assert!((3.5..=13.0).contains(&abv), "{abv}");
            }
        }
    }
}
