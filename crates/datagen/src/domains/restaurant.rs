//! Restaurant domain (Fodors-Zagats shape: 6 attributes — name, address,
//! city, phone, type, class; paper Fig. 1 / Table III).

use crate::entity::EntityDomain;
use crate::vocab;
use em_rt::StdRng;
use em_table::{Schema, Value};

/// Restaurants: members of a family share a city and street, modeling
/// same-neighborhood confusables.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestaurantDomain;

impl EntityDomain for RestaurantDomain {
    fn name(&self) -> &'static str {
        "restaurant"
    }

    fn schema(&self) -> Schema {
        Schema::new(["name", "address", "city", "phone", "type", "class"])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        // Family anchors the location; member differentiates the identity.
        let city = vocab::pick(vocab::CITIES, family);
        let street = vocab::pick(vocab::STREETS, family * 3 + 1);
        let suffix = vocab::pick(vocab::STREET_SUFFIXES, family + member);
        let head = vocab::pick(vocab::NAME_HEADS, family * 7 + member * 3);
        let tail = vocab::pick(vocab::NAME_TAILS, family * 5 + member * 11 + 1);
        let extra = vocab::pick(vocab::NAME_HEADS, member * 13 + 5);
        let name = if member.is_multiple_of(2) {
            format!("{head} {tail}")
        } else {
            format!("{head} {extra} {tail}")
        };
        let number = 100 + (family * 97 + member * 31) % 9000;
        let address = format!("{number} {street} {suffix}");
        let area = 200 + (family * 13) % 700;
        let line = 1000 + rng.random_range(0..9000);
        let phone = format!("{area}-555-{line}");
        let (cuisine, _) = vocab::CUISINES[(family + member) % vocab::CUISINES.len()];
        let class = (family % 5 + 1) as f64;
        vec![
            Value::Text(name),
            Value::Text(address),
            Value::Text(city.to_owned()),
            Value::Text(phone),
            Value::Text(cuisine.to_owned()),
            Value::Number(class),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_fodors_zagats_shape() {
        let d = RestaurantDomain;
        assert_eq!(d.schema().len(), 6);
        assert_eq!(d.schema().names()[0], "name");
    }

    #[test]
    fn family_members_share_city_but_not_name() {
        let d = RestaurantDomain;
        let mut rng = StdRng::seed_from_u64(0);
        let a = d.base_record(3, 0, &mut rng);
        let b = d.base_record(3, 1, &mut rng);
        assert_eq!(a[2], b[2], "same family shares a city");
        assert_ne!(a[0], b[0], "different members have different names");
    }

    #[test]
    fn different_families_differ() {
        let d = RestaurantDomain;
        let mut rng = StdRng::seed_from_u64(0);
        let a = d.base_record(0, 0, &mut rng);
        let b = d.base_record(1, 0, &mut rng);
        assert_ne!(a[2], b[2]);
    }

    #[test]
    fn record_arity_matches_schema() {
        let d = RestaurantDomain;
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.base_record(9, 2, &mut rng).len(), d.schema().len());
    }
}
