//! Song domain (iTunes-Amazon shape: 8 attributes — song name, artist name,
//! album name, genre, price, copyright, time, released; paper Table III).

use crate::entity::EntityDomain;
use crate::vocab;
use em_rt::StdRng;
use em_table::{Schema, Value};

/// Songs: members of a family are tracks by the same artist on the same
/// album — the classic hard-negative structure of music catalogs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SongDomain;

impl EntityDomain for SongDomain {
    fn name(&self) -> &'static str {
        "song"
    }

    fn schema(&self) -> Schema {
        Schema::new([
            "song_name",
            "artist_name",
            "album_name",
            "genre",
            "price",
            "copyright",
            "time",
            "released",
        ])
    }

    fn base_record(&self, family: usize, member: usize, rng: &mut StdRng) -> Vec<Value> {
        let artist = format!(
            "{} {}",
            vocab::pick(vocab::ARTISTS, family),
            vocab::pick(vocab::ARTISTS, family * 5 + 3)
        );
        let album = format!(
            "{} {}",
            vocab::pick(vocab::SONG_WORDS, family * 7 + 2),
            vocab::pick(vocab::SONG_WORDS, family * 11 + 4)
        );
        // Sibling tracks on the same album share the first title word and
        // half the time the second ("golden night dance" vs "golden night
        // fire" vs "golden rain fire") — catalog-style confusables.
        let song = format!(
            "{} {} {}",
            vocab::pick(vocab::SONG_WORDS, family * 3),
            vocab::pick(vocab::SONG_WORDS, family * 5 + member % 2 + 1),
            vocab::pick(vocab::SONG_WORDS, family * 7 + member * 2 + 9)
        );
        let genre = vocab::pick(vocab::GENRES, family);
        let price = 0.69 + ((family + member) % 3) as f64 * 0.30;
        let year = 1995 + (family * 3 + member % 2) % 28;
        let label = vocab::pick(vocab::BREWERIES, family + 7); // label names reuse a pool
        let copyright = format!("(c) {year} {label} records");
        let secs = 150 + (family * 31 + member * 53) % 240 + rng.random_range(0..5usize);
        let time = format!("{}:{:02}", secs / 60, secs % 60);
        vec![
            Value::Text(song),
            Value::Text(artist),
            Value::Text(album),
            Value::Text(genre.to_owned()),
            Value::Number((price * 100.0).round() / 100.0),
            Value::Text(copyright),
            Value::Text(time),
            Value::Number(year as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        assert_eq!(SongDomain.schema().len(), 8);
    }

    #[test]
    fn family_shares_artist_and_album() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = SongDomain.base_record(4, 0, &mut rng);
        let b = SongDomain.base_record(4, 2, &mut rng);
        assert_eq!(a[1], b[1]);
        assert_eq!(a[2], b[2]);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn time_format_is_mm_ss() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = SongDomain.base_record(0, 0, &mut rng);
        let t = r[6].as_text().unwrap();
        assert!(t.contains(':'), "{t}");
    }
}
