//! Million-record catalog synthesis for serving-scale benchmarks.
//!
//! The entity generators in this crate reproduce the *shape* of the
//! paper's eight benchmark datasets — hundreds to thousands of records.
//! Stress-testing the serving index needs a different knob set: catalogs
//! of 10⁴–10⁶ records whose token frequencies follow the zipf law real
//! vocabularies do (a handful of stopword-like tokens in hundreds of
//! thousands of records, a long tail of near-unique ones), plus a
//! controllable exact-duplicate rate so retraction and dedup paths see
//! realistic collisions.
//!
//! [`ScaleCatalog`] is fully seeded: every record value is a pure function
//! of `(seed, row)`, so benches and soak harnesses can synthesize a record
//! on demand without materializing the whole catalog, and two runs with
//! the same spec agree bit-for-bit.

use crate::vocab;
use em_rt::{derive_seed, parallel_for, SliceWriter, StdRng};
use em_table::{Schema, Table, Value};

/// Single-word pools composed into the scale vocabulary (multi-word pools
/// like `CITIES` would split under the whitespace tokenizer).
const POOLS: &[&[&str]] = &[
    vocab::NAME_HEADS,
    vocab::NAME_TAILS,
    vocab::SONG_WORDS,
    vocab::PAPER_WORDS,
    vocab::BEER_ADJECTIVES,
    vocab::BEER_NOUNS,
    vocab::AUTHOR_FIRST,
    vocab::AUTHOR_LAST,
];

/// Shape of a synthetic serving catalog.
#[derive(Debug, Clone)]
pub struct CatalogSpec {
    /// Catalog size in records.
    pub records: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Distinct tokens in the vocabulary (zipf ranks).
    pub vocab: usize,
    /// Zipf exponent: token rank `r` has weight `1/r^s`. Natural-language
    /// vocabularies sit near 1; higher skews harder.
    pub zipf_s: f64,
    /// Minimum tokens per record value.
    pub min_tokens: usize,
    /// Maximum tokens per record value (inclusive).
    pub max_tokens: usize,
    /// Probability a record is an exact duplicate of an earlier one.
    pub duplicate_rate: f64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            records: 10_000,
            seed: 42,
            vocab: 40_000,
            zipf_s: 1.07,
            min_tokens: 4,
            max_tokens: 10,
            duplicate_rate: 0.10,
        }
    }
}

/// A seeded zipf-vocabulary catalog generator. Construction precomputes
/// the vocabulary CDF once (O(vocab)); record values are generated on
/// demand.
pub struct ScaleCatalog {
    spec: CatalogSpec,
    /// Cumulative zipf weights, normalized to end at 1.0; rank = the
    /// partition point of a uniform draw.
    cdf: Vec<f64>,
    /// Deduped base words (pools share words like "golden" and "grill";
    /// dedup keeps rank → token injective).
    words: Vec<&'static str>,
}

impl ScaleCatalog {
    /// Build the generator for `spec` (`records`, `vocab`, `min_tokens` ≥ 1;
    /// `max_tokens` ≥ `min_tokens`).
    pub fn new(spec: CatalogSpec) -> Self {
        assert!(spec.vocab >= 1 && spec.min_tokens >= 1);
        assert!(spec.max_tokens >= spec.min_tokens);
        let mut cdf = Vec::with_capacity(spec.vocab);
        let mut total = 0.0;
        for rank in 1..=spec.vocab {
            total += 1.0 / (rank as f64).powf(spec.zipf_s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        let mut seen = std::collections::HashSet::new();
        let words = POOLS
            .iter()
            .flat_map(|p| p.iter().copied())
            .filter(|w| seen.insert(*w))
            .collect();
        ScaleCatalog { spec, cdf, words }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &CatalogSpec {
        &self.spec
    }

    /// Token text for vocabulary rank `id` (rank 0 = most frequent).
    /// Pool words carry a numeric generation suffix once the physical
    /// pools are exhausted, so every rank is a distinct non-numeric word.
    fn token_text(&self, id: usize) -> String {
        let (slot, generation) = (id % self.words.len(), id / self.words.len());
        let word = self.words[slot];
        if generation == 0 {
            word.to_string()
        } else {
            format!("{word}{generation}")
        }
    }

    /// Draw a vocabulary rank from the zipf distribution.
    fn sample_rank(&self, rng: &mut StdRng) -> usize {
        let u = rng.unit_f64();
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.spec.vocab - 1)
    }

    /// Compose a fresh (non-duplicate) value from `rng`.
    fn compose(&self, rng: &mut StdRng) -> String {
        let n = rng.random_range(self.spec.min_tokens..=self.spec.max_tokens);
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.token_text(self.sample_rank(rng)));
        }
        words.join(" ")
    }

    /// The blocking value of catalog row `row` — a pure function of
    /// `(spec.seed, row)`. With probability `duplicate_rate` a row is an
    /// exact copy of an earlier row (redirects strictly decrease the row,
    /// so the chain always terminates).
    pub fn value(&self, row: usize) -> String {
        let mut i = row;
        loop {
            let mut rng = StdRng::seed_from_u64(derive_seed(self.spec.seed, i as u64));
            if i > 0 && rng.unit_f64() < self.spec.duplicate_rate {
                i = rng.random_range(0..i);
                continue;
            }
            return self.compose(&mut rng);
        }
    }

    /// The schema of every table/row this generator produces.
    pub fn schema(&self) -> Schema {
        Schema::new(["name"])
    }

    /// Catalog row `row` as table cells — for appending rows to a
    /// persistent store one at a time without materializing the catalog.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        vec![Value::Text(self.value(row))]
    }

    /// Stream the catalog through `sink` in row order, `chunk` rows at a
    /// time: each chunk's values are synthesized in parallel on the
    /// `em-rt` pool (bit-identical at any `EM_THREADS` — every row derives
    /// its own rng), then handed over as `(first_row, rows)`. Peak memory
    /// is O(chunk), never O(records), which is what lets the scale bench
    /// load a million-record catalog into a store the process could not
    /// hold as a `Table`.
    ///
    /// # Errors
    /// Stops at and returns the first error from `sink`.
    pub fn for_each_chunk<E>(
        &self,
        chunk: usize,
        mut sink: impl FnMut(usize, Vec<Vec<Value>>) -> Result<(), E>,
    ) -> Result<(), E> {
        assert!(chunk >= 1);
        let n = self.spec.records;
        let mut start = 0usize;
        while start < n {
            let len = chunk.min(n - start);
            let mut values: Vec<String> = vec![String::new(); len];
            let writer = SliceWriter::new(&mut values);
            parallel_for(len, 0, |i| {
                // Safety: each chunk-local index is handed out exactly once.
                unsafe { writer.write(i, self.value(start + i)) };
            });
            let rows: Vec<Vec<Value>> = values.into_iter().map(|v| vec![Value::Text(v)]).collect();
            sink(start, rows)?;
            start += len;
        }
        Ok(())
    }

    /// Materialize the whole catalog as a one-column `name` table. Values
    /// are synthesized in parallel on the `em-rt` pool; output is
    /// identical at any `EM_THREADS` because each row derives its own rng.
    pub fn table(&self) -> Table {
        let n = self.spec.records;
        let mut values: Vec<String> = vec![String::new(); n];
        let writer = SliceWriter::new(&mut values);
        parallel_for(n, 0, |i| {
            // Safety: each row index is handed out exactly once.
            unsafe { writer.write(i, self.value(i)) };
        });
        let mut table = Table::new(Schema::new(["name"]));
        for v in values {
            table.push_row(vec![Value::Text(v)]).unwrap();
        }
        table
    }

    /// Query `q`'s blocking value, drawn from a seed stream disjoint from
    /// the catalog's. Half the queries are noisy lookups of an existing
    /// record (one token dropped, one fresh token appended — the serving
    /// hot path); half are fresh compositions (mostly-miss traffic).
    pub fn query_value(&self, q: usize) -> String {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.spec.seed ^ 0x5EED_CAFE, q as u64));
        if self.spec.records > 0 && rng.unit_f64() < 0.5 {
            let row = rng.random_range(0..self.spec.records);
            let base = self.value(row);
            let mut words: Vec<&str> = base.split_whitespace().collect();
            if words.len() > 1 {
                let drop = rng.random_range(0..words.len());
                words.remove(drop);
            }
            let mut out = words.join(" ");
            let extra = self.token_text(self.sample_rank(&mut rng));
            out.push(' ');
            out.push_str(&extra);
            out
        } else {
            self.compose(&mut rng)
        }
    }

    /// A batch of `n` query records (same schema as [`Self::table`]),
    /// starting at query stream offset `start`.
    pub fn queries(&self, start: usize, n: usize) -> Table {
        let mut table = Table::new(Schema::new(["name"]));
        for q in start..start + n {
            table
                .push_row(vec![Value::Text(self.query_value(q))])
                .unwrap();
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_spec() -> CatalogSpec {
        CatalogSpec {
            records: 2_000,
            seed: 7,
            vocab: 500,
            ..CatalogSpec::default()
        }
    }

    #[test]
    fn values_are_deterministic() {
        let a = ScaleCatalog::new(small_spec());
        let b = ScaleCatalog::new(small_spec());
        for row in [0, 1, 17, 999, 1_999] {
            assert_eq!(a.value(row), b.value(row));
        }
        for q in [0, 5, 123] {
            assert_eq!(a.query_value(q), b.query_value(q));
        }
    }

    #[test]
    fn table_matches_on_demand_values() {
        let cat = ScaleCatalog::new(CatalogSpec {
            records: 300,
            ..small_spec()
        });
        let table = cat.table();
        assert_eq!(table.len(), 300);
        let col = table.schema().index_of("name").unwrap();
        for rec in table.records() {
            let v = rec.get(col).to_display_string().unwrap();
            assert_eq!(v, cat.value(rec.index()));
        }
    }

    #[test]
    fn chunked_streaming_matches_materialized_table() {
        let cat = ScaleCatalog::new(CatalogSpec {
            records: 300,
            ..small_spec()
        });
        let table = cat.table();
        let mut streamed: Vec<Vec<Value>> = Vec::new();
        cat.for_each_chunk(64, |start, rows| {
            assert_eq!(start, streamed.len());
            streamed.extend(rows);
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(streamed.len(), table.len());
        for (i, row) in streamed.iter().enumerate() {
            assert_eq!(row.as_slice(), table.record(i).values());
            assert_eq!(row.as_slice(), cat.row_values(i).as_slice());
        }
        // Errors from the sink stop the stream and propagate.
        let mut calls = 0;
        let err = cat.for_each_chunk(64, |_, _| {
            calls += 1;
            Err("stop")
        });
        assert_eq!((err, calls), (Err("stop"), 1));
    }

    #[test]
    fn duplicate_rate_produces_exact_copies() {
        let cat = ScaleCatalog::new(small_spec());
        let mut seen: HashMap<String, usize> = HashMap::new();
        for row in 0..cat.spec().records {
            *seen.entry(cat.value(row)).or_default() += 1;
        }
        let dups: usize = seen.values().filter(|&&c| c > 1).map(|&c| c - 1).sum();
        let rate = dups as f64 / cat.spec().records as f64;
        // Spec asks for ~10%; chained redirects push the realized rate a
        // little higher, near-unique compositions a little lower.
        assert!(
            (0.05..=0.25).contains(&rate),
            "duplicate rate {rate} out of band"
        );
    }

    #[test]
    fn token_frequencies_are_zipf_skewed() {
        // Vocab larger than the total draw count, so the tail shows as
        // singletons rather than being saturated by repeat draws.
        let cat = ScaleCatalog::new(CatalogSpec {
            vocab: 50_000,
            ..small_spec()
        });
        let mut freq: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for row in 0..cat.spec().records {
            for w in cat.value(row).split_whitespace() {
                *freq.entry(w.to_string()).or_default() += 1;
                total += 1;
            }
        }
        let max = *freq.values().max().unwrap();
        // The head token should carry percents of all draws — far above
        // the uniform expectation of total/vocab (< 1 here).
        assert!(max * 100 > total, "head token frequency {max} of {total}");
        // And the tail should be long: many tokens seen once or twice.
        let tail = freq.values().filter(|&&c| c <= 2).count();
        assert!(
            tail * 2 > freq.len(),
            "tail too short: {tail}/{}",
            freq.len()
        );
    }

    #[test]
    fn distinct_ranks_yield_distinct_tokens() {
        let cat = ScaleCatalog::new(small_spec());
        let mut seen = std::collections::HashSet::new();
        for id in 0..cat.spec().vocab {
            assert!(seen.insert(cat.token_text(id)), "token collision at {id}");
        }
    }
}
