//! Word pools used by the domain entity generators. Deterministic
//! composition from these pools (seeded per entity) gives realistic-looking
//! records whose token overlap structure drives matching difficulty.

/// Restaurant / place name fragments.
pub const NAME_HEADS: &[&str] = &[
    "arnie", "arts", "fenix", "katsu", "palm", "grill", "luna", "rose", "golden", "blue",
    "crystal", "royal", "little", "grand", "old", "new", "silver", "iron", "green", "red",
    "harbor", "sunset", "ocean", "mountain", "river", "garden", "spice", "villa", "casa", "maple",
    "cedar", "union", "liberty", "empire", "metro", "central", "corner", "urban",
];

/// Restaurant / place name tails.
pub const NAME_TAILS: &[&str] = &[
    "mortons",
    "delicatessen",
    "kitchen",
    "bistro",
    "house",
    "tavern",
    "cafe",
    "diner",
    "grill",
    "room",
    "table",
    "place",
    "spot",
    "garden",
    "club",
    "bar",
    "eatery",
    "canteen",
    "pavilion",
    "terrace",
    "lounge",
    "corner",
    "works",
    "company",
    "brothers",
    "palace",
];

/// Street names for addresses.
pub const STREETS: &[&str] = &[
    "la cienega",
    "ventura",
    "sunset",
    "hillhurst",
    "main",
    "oak",
    "elm",
    "maple",
    "pine",
    "washington",
    "lincoln",
    "jefferson",
    "madison",
    "franklin",
    "highland",
    "melrose",
    "wilshire",
    "olympic",
    "pico",
    "figueroa",
    "broadway",
    "spring",
    "grand",
    "hope",
];

/// Street suffixes (the abbreviation dictionary maps between long and short
/// forms, creating realistic A/B divergence like "blvd." vs "boulevard").
pub const STREET_SUFFIXES: &[&str] = &["boulevard", "street", "avenue", "drive", "road", "lane"];

/// Cities.
pub const CITIES: &[&str] = &[
    "los angeles",
    "studio city",
    "west hollywood",
    "los feliz",
    "new york",
    "brooklyn",
    "chicago",
    "san francisco",
    "oakland",
    "seattle",
    "portland",
    "austin",
    "boston",
    "philadelphia",
    "atlanta",
    "miami",
    "denver",
    "phoenix",
    "dallas",
    "houston",
];

/// Cuisine / venue types. Paired synonym sets model the Figure 1 situation
/// where A says "american" and B says "steakhouses".
pub const CUISINES: &[(&str, &str)] = &[
    ("american", "steakhouses"),
    ("american", "delis"),
    ("french", "french (new)"),
    ("asian", "japanese"),
    ("asian", "chinese"),
    ("italian", "pizza"),
    ("mexican", "tex-mex"),
    ("indian", "south asian"),
    ("mediterranean", "greek"),
    ("seafood", "fish & chips"),
];

/// Beer name fragments.
pub const BEER_ADJECTIVES: &[&str] = &[
    "hoppy", "golden", "dark", "imperial", "double", "wild", "sour", "smoked", "barrel", "vintage",
    "hazy", "crisp", "bold", "noble", "rustic", "amber", "midnight", "blonde",
];

/// Beer name nouns.
pub const BEER_NOUNS: &[&str] = &[
    "lager",
    "porter",
    "stout",
    "ale",
    "pilsner",
    "saison",
    "dubbel",
    "tripel",
    "bock",
    "wheat",
    "kolsch",
    "bitter",
    "weisse",
    "gose",
    "lambic",
    "barleywine",
];

/// Brewery name fragments.
pub const BREWERIES: &[&str] = &[
    "stone",
    "anchor",
    "sierra",
    "cascade",
    "ballast",
    "harpoon",
    "founders",
    "bell",
    "dogfish",
    "alchemist",
    "russian river",
    "tree house",
    "half acre",
    "odell",
    "surly",
    "deschutes",
    "allagash",
    "firestone",
    "cigar city",
    "maine beer",
];

/// Beer styles.
pub const BEER_STYLES: &[&str] = &[
    "american ipa",
    "imperial stout",
    "pale ale",
    "pilsner",
    "saison",
    "porter",
    "hefeweizen",
    "amber ale",
    "brown ale",
    "belgian tripel",
    "berliner weisse",
    "gose",
];

/// Artist name fragments for songs.
pub const ARTISTS: &[&str] = &[
    "aurora", "midnight", "velvet", "echo", "crimson", "silver", "neon", "atlas", "nova", "ember",
    "willow", "phoenix", "indigo", "cobalt", "marble", "salt", "golden", "hollow",
];

/// Song title words.
pub const SONG_WORDS: &[&str] = &[
    "love",
    "night",
    "dream",
    "fire",
    "rain",
    "heart",
    "road",
    "light",
    "shadow",
    "dance",
    "summer",
    "winter",
    "ocean",
    "city",
    "home",
    "stars",
    "forever",
    "yesterday",
    "tomorrow",
    "golden",
    "broken",
    "silent",
    "electric",
    "wild",
];

/// Music genres.
pub const GENRES: &[&str] = &[
    "pop",
    "rock",
    "indie",
    "electronic",
    "hip-hop",
    "jazz",
    "folk",
    "country",
    "r&b",
    "classical",
    "ambient",
    "metal",
];

/// Research-paper title words.
pub const PAPER_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "distributed",
    "adaptive",
    "learning",
    "query",
    "optimization",
    "indexing",
    "streaming",
    "approximate",
    "parallel",
    "incremental",
    "entity",
    "matching",
    "integration",
    "schema",
    "mining",
    "clustering",
    "classification",
    "graph",
    "join",
    "sampling",
    "privacy",
    "crowdsourcing",
    "probabilistic",
    "semantic",
    "knowledge",
];

/// Research-paper title nouns.
pub const PAPER_NOUNS: &[&str] = &[
    "databases",
    "systems",
    "networks",
    "queries",
    "models",
    "algorithms",
    "frameworks",
    "pipelines",
    "warehouses",
    "tables",
    "records",
    "indexes",
    "streams",
    "engines",
];

/// Author first names.
pub const AUTHOR_FIRST: &[&str] = &[
    "wei",
    "jian",
    "pei",
    "anhai",
    "erhard",
    "felix",
    "hector",
    "jennifer",
    "michael",
    "rachel",
    "david",
    "sanjay",
    "luis",
    "xin",
    "ahmed",
    "theodoros",
    "sebastian",
    "laura",
];

/// Author last names.
pub const AUTHOR_LAST: &[&str] = &[
    "wang",
    "zheng",
    "pei",
    "doan",
    "rahm",
    "naumann",
    "garcia-molina",
    "widom",
    "stonebraker",
    "koudas",
    "dewitt",
    "agrawal",
    "gravano",
    "dong",
    "elmagarmid",
    "rekatsinas",
    "schelter",
    "haas",
];

/// Publication venues (long and short forms).
pub const VENUES: &[(&str, &str)] = &[
    (
        "proceedings of the acm sigmod international conference on management of data",
        "sigmod",
    ),
    ("proceedings of the vldb endowment", "pvldb"),
    ("ieee international conference on data engineering", "icde"),
    ("acm transactions on database systems", "tods"),
    (
        "international conference on extending database technology",
        "edbt",
    ),
    ("conference on information and knowledge management", "cikm"),
];

/// Product brand names.
pub const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "panasonic",
    "logitech",
    "canon",
    "nikon",
    "philips",
    "toshiba",
    "epson",
    "brother",
    "lenovo",
    "asus",
    "acer",
    "jbl",
    "bose",
    "garmin",
    "netgear",
    "linksys",
    "sandisk",
    "kingston",
];

/// Product category words.
pub const PRODUCT_TYPES: &[&str] = &[
    "wireless mouse",
    "mechanical keyboard",
    "noise cancelling headphones",
    "usb hub",
    "laser printer",
    "digital camera",
    "bluetooth speaker",
    "portable ssd",
    "hdmi cable",
    "wifi router",
    "fitness tracker",
    "webcam",
    "microphone",
    "monitor",
    "docking station",
    "power bank",
    "memory card",
    "external drive",
    "smart bulb",
    "media streamer",
];

/// Adjectives for product descriptions (long-text attributes).
pub const PRODUCT_ADJECTIVES: &[&str] = &[
    "premium",
    "compact",
    "ergonomic",
    "high-speed",
    "ultra-slim",
    "professional",
    "rechargeable",
    "portable",
    "durable",
    "lightweight",
    "advanced",
    "versatile",
];

/// Clause fragments for long product descriptions.
pub const DESCRIPTION_CLAUSES: &[&str] = &[
    "designed for everyday use with a comfortable grip and responsive controls",
    "featuring industry leading battery life and fast charging over usb-c",
    "compatible with windows macos and most linux distributions out of the box",
    "backed by a two year limited warranty and responsive customer support",
    "engineered with aircraft grade aluminum for durability without extra weight",
    "delivers crisp detailed sound with deep bass and clear highs at any volume",
    "includes a quick start guide carrying pouch and replacement tips in the box",
    "ideal for home office gaming and travel thanks to its foldable design",
    "supports the latest wireless standards for stable low latency connections",
    "offers plug and play setup with no drivers or additional software required",
    "built to withstand drops spills and the rigors of daily commuting",
    "ships in frustration free packaging made from recycled materials",
];

/// Software product names.
pub const SOFTWARE_NAMES: &[&str] = &[
    "photo studio",
    "office suite",
    "antivirus plus",
    "backup manager",
    "video editor",
    "tax preparer",
    "language tutor",
    "system optimizer",
    "password vault",
    "drawing pad",
    "music maker",
    "pdf toolkit",
    "web designer",
    "data recovery",
    "firewall pro",
];

/// Software publishers.
pub const SOFTWARE_PUBLISHERS: &[&str] = &[
    "adobe",
    "microsoft",
    "corel",
    "symantec",
    "intuit",
    "mcafee",
    "roxio",
    "nero",
    "kaspersky",
    "avanquest",
    "broderbund",
    "individual software",
    "nova development",
];

/// Deterministically pick an item from a pool using an index.
pub fn pick<'a>(pool: &'a [&'a str], idx: usize) -> &'a str {
    pool[idx % pool.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty() {
        assert!(!NAME_HEADS.is_empty());
        assert!(!CITIES.is_empty());
        assert!(!CUISINES.is_empty());
        assert!(!DESCRIPTION_CLAUSES.is_empty());
        assert!(!VENUES.is_empty());
    }

    #[test]
    fn pick_wraps_around() {
        assert_eq!(pick(&["a", "b", "c"], 0), "a");
        assert_eq!(pick(&["a", "b", "c"], 4), "b");
    }
}
