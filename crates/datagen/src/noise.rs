//! Dirtiness model: the controlled perturbations that turn a clean A-side
//! record into its messy B-side counterpart (typos, abbreviations, dropped
//! and reordered tokens, missing values, numeric jitter). The intensity knob
//! is what separates the paper's "easy" and "hard" dataset categories.

use em_rt::StdRng;
use em_table::Value;

/// Long-form → short-form rewrites applied at the token level, modeling the
/// real A/B divergence of the benchmarks ("boulevard" vs "blvd.",
/// "delicatessen" vs "deli", "west" vs "w.").
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("boulevard", "blvd."),
    ("street", "st."),
    ("avenue", "ave."),
    ("drive", "dr."),
    ("road", "rd."),
    ("lane", "ln."),
    ("west", "w."),
    ("east", "e."),
    ("north", "n."),
    ("south", "s."),
    ("delicatessen", "deli"),
    ("restaurant", "rest."),
    ("company", "co."),
    ("brothers", "bros."),
    ("international", "intl."),
    ("incorporated", "inc."),
    ("professional", "pro"),
    ("proceedings", "proc."),
    ("international", "int'l"),
    ("conference", "conf."),
    ("transactions", "trans."),
];

/// Perturbation intensities. All probabilities are per-opportunity
/// (per token or per value as noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Per-token probability of one random character edit.
    pub typo: f64,
    /// Per-token probability of applying a dictionary abbreviation.
    pub abbreviate: f64,
    /// Per-token probability of dropping the token (never drops the last
    /// remaining token).
    pub drop_token: f64,
    /// Probability of swapping one adjacent token pair in the string.
    pub swap_tokens: f64,
    /// Probability of blanking the whole value (missingness).
    pub missing: f64,
    /// Relative jitter applied to numeric values (e.g. 0.02 = ±2%).
    pub numeric_jitter: f64,
    /// Probability that a numeric value is re-rounded (prices ending .99
    /// vs .00, years off by one).
    pub numeric_requantize: f64,
}

impl NoiseModel {
    /// Light noise: the "easy" benchmark profile. Mostly abbreviations and
    /// the occasional typo; values rarely go missing.
    pub fn light() -> Self {
        NoiseModel {
            typo: 0.02,
            abbreviate: 0.30,
            drop_token: 0.02,
            swap_tokens: 0.02,
            missing: 0.01,
            numeric_jitter: 0.0,
            numeric_requantize: 0.05,
        }
    }

    /// Medium noise: between the easy and hard profiles — used for the
    /// noisier "easy" benchmarks (BeerAdvo-RateBeer, DBLP-Scholar).
    pub fn medium() -> Self {
        NoiseModel {
            typo: 0.06,
            abbreviate: 0.35,
            drop_token: 0.08,
            swap_tokens: 0.08,
            missing: 0.04,
            numeric_jitter: 0.01,
            numeric_requantize: 0.15,
        }
    }

    /// Heavy noise: the "hard" benchmark profile. Frequent typos, token
    /// drops and reorders, more missing values, numeric drift.
    pub fn heavy() -> Self {
        NoiseModel {
            typo: 0.12,
            abbreviate: 0.40,
            drop_token: 0.25,
            swap_tokens: 0.20,
            missing: 0.12,
            numeric_jitter: 0.08,
            numeric_requantize: 0.40,
        }
    }

    /// No noise at all (identity perturbation; useful in tests).
    pub fn none() -> Self {
        NoiseModel {
            typo: 0.0,
            abbreviate: 0.0,
            drop_token: 0.0,
            swap_tokens: 0.0,
            missing: 0.0,
            numeric_jitter: 0.0,
            numeric_requantize: 0.0,
        }
    }

    /// Perturb a string value.
    pub fn apply_string(&self, s: &str, rng: &mut StdRng) -> Value {
        if self.missing > 0.0 && rng.random_range(0.0..1.0) < self.missing {
            return Value::Null;
        }
        let mut tokens: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        if tokens.is_empty() {
            return Value::Text(s.to_owned());
        }
        // Abbreviations.
        for t in tokens.iter_mut() {
            if rng.random_range(0.0..1.0) < self.abbreviate {
                if let Some((_, short)) = ABBREVIATIONS.iter().find(|(long, _)| long == t) {
                    *t = (*short).to_owned();
                }
            }
        }
        // Token drops (keep at least one token).
        if tokens.len() > 1 {
            let mut kept: Vec<String> = Vec::with_capacity(tokens.len());
            for t in tokens.drain(..) {
                if rng.random_range(0.0..1.0) >= self.drop_token {
                    kept.push(t);
                }
            }
            if kept.is_empty() {
                kept.push(s.split_whitespace().next().unwrap().to_owned());
            }
            tokens = kept;
        }
        // Adjacent swap.
        if tokens.len() >= 2 && rng.random_range(0.0..1.0) < self.swap_tokens {
            let i = rng.random_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
        }
        // Typos.
        for t in tokens.iter_mut() {
            if rng.random_range(0.0..1.0) < self.typo {
                *t = typo(t, rng);
            }
        }
        Value::Text(tokens.join(" "))
    }

    /// Perturb a numeric value.
    pub fn apply_number(&self, x: f64, rng: &mut StdRng) -> Value {
        if self.missing > 0.0 && rng.random_range(0.0..1.0) < self.missing {
            return Value::Null;
        }
        let mut v = x;
        if self.numeric_jitter > 0.0 {
            let rel = rng.random_range(-self.numeric_jitter..self.numeric_jitter);
            v *= 1.0 + rel;
        }
        if self.numeric_requantize > 0.0 && rng.random_range(0.0..1.0) < self.numeric_requantize {
            // Round to a "different-looking but same" rendering.
            v = if x.fract() == 0.0 {
                // Integers drift by one (years, counts).
                x + if rng.random_range(0.0..1.0) < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            } else {
                (v * 100.0).round() / 100.0
            };
        }
        Value::Number(v)
    }

    /// Perturb any cell value.
    pub fn apply(&self, v: &Value, rng: &mut StdRng) -> Value {
        match v {
            Value::Null => Value::Null,
            Value::Text(s) => self.apply_string(s, rng),
            Value::Number(x) => self.apply_number(*x, rng),
            Value::Bool(b) => {
                if self.missing > 0.0 && rng.random_range(0.0..1.0) < self.missing {
                    Value::Null
                } else {
                    Value::Bool(*b)
                }
            }
        }
    }
}

/// One random character edit: substitution, deletion, insertion, or
/// adjacent transposition.
fn typo(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return word.to_owned();
    }
    let alphabet = "abcdefghijklmnopqrstuvwxyz";
    let rand_char = |rng: &mut StdRng| {
        alphabet
            .chars()
            .nth(rng.random_range(0..alphabet.len()))
            .unwrap()
    };
    let mut out = chars.clone();
    match rng.random_range(0..4) {
        0 => {
            // substitute
            let i = rng.random_range(0..out.len());
            out[i] = rand_char(rng);
        }
        1 => {
            // delete (keep at least one char)
            if out.len() > 1 {
                let i = rng.random_range(0..out.len());
                out.remove(i);
            }
        }
        2 => {
            // insert
            let i = rng.random_range(0..=out.len());
            let c = rand_char(rng);
            out.insert(i, c);
        }
        _ => {
            // transpose
            if out.len() >= 2 {
                let i = rng.random_range(0..out.len() - 1);
                out.swap(i, i + 1);
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_text::levenshtein_distance;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let nm = NoiseModel::none();
        assert_eq!(
            nm.apply_string("arnie mortons of chicago", &mut rng),
            Value::Text("arnie mortons of chicago".into())
        );
        assert_eq!(nm.apply_number(42.5, &mut rng), Value::Number(42.5));
    }

    #[test]
    fn typo_is_one_edit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = typo("chicago", &mut rng);
            // One edit operation; a transposition costs 2 in plain
            // Levenshtein (1 in Damerau), so allow up to 2.
            assert!(levenshtein_distance("chicago", &t) <= 2, "{t}");
        }
    }

    #[test]
    fn abbreviations_fire_deterministically_under_seed() {
        let nm = NoiseModel {
            abbreviate: 1.0,
            ..NoiseModel::none()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let v = nm.apply_string("435 south la cienega boulevard", &mut rng);
        assert_eq!(v.as_text(), Some("435 s. la cienega blvd."));
    }

    #[test]
    fn heavy_noise_still_preserves_some_signal() {
        let nm = NoiseModel::heavy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total_sim = 0.0;
        let n = 100;
        for _ in 0..n {
            let v = nm.apply_string("golden harbor kitchen and tavern", &mut rng);
            if let Some(t) = v.as_text() {
                total_sim += em_text::jaccard(
                    "golden harbor kitchen and tavern",
                    t,
                    em_text::Tokenizer::QGram(3),
                );
            }
        }
        // Perturbed strings stay recognizably similar on average.
        assert!(total_sim / n as f64 > 0.4);
    }

    #[test]
    fn drop_token_never_empties_string() {
        let nm = NoiseModel {
            drop_token: 0.95,
            ..NoiseModel::none()
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let v = nm.apply_string("a b c d", &mut rng);
            assert!(!v.as_text().unwrap().is_empty());
        }
    }

    #[test]
    fn missing_probability_blanks_values() {
        let nm = NoiseModel {
            missing: 1.0,
            ..NoiseModel::none()
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(nm.apply_string("x", &mut rng).is_null());
        assert!(nm.apply_number(1.0, &mut rng).is_null());
        assert!(nm.apply(&Value::Bool(true), &mut rng).is_null());
    }

    #[test]
    fn numeric_jitter_bounded() {
        let nm = NoiseModel {
            numeric_jitter: 0.05,
            ..NoiseModel::none()
        };
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let v = nm.apply_number(100.0, &mut rng).as_number().unwrap();
            assert!((94.9..=105.1).contains(&v), "{v}");
        }
    }
}
