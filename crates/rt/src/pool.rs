//! A persistent, process-global worker pool with scoped parallel iteration.
//!
//! One pool exists per process, lazily initialized on first use and sized
//! from [`set_threads`], the `EM_THREADS` environment variable, or
//! `std::thread::available_parallelism()`, in that order of precedence.
//! Worker threads are spawned once and block on a condvar between jobs, so
//! repeated small parallel sections (the hundreds of forest fits of a SMAC
//! search) pay the thread-spawn cost exactly once per process instead of
//! once per call.
//!
//! Work distribution is dynamic: each [`parallel_for`] job shares a single
//! atomic counter from which workers claim chunks of indices, so uneven
//! per-index cost (deep vs. shallow trees, long vs. short strings) balances
//! automatically. The output of a parallel section must not depend on which
//! thread computes which index — every index is processed exactly once, so
//! deterministic per-index closures yield bit-identical results for any
//! thread count.
//!
//! Nesting is safe and cheap: a `parallel_for` issued while the pool is
//! already running a job (e.g. a forest fit inside a parallel candidate
//! batch) simply runs inline on the calling thread, which is already one of
//! the saturating workers.

use crate::stats;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Explicit thread-count override (0 = unset). Highest precedence.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the pool's thread count programmatically. Takes full effect when
/// called before the first parallel section; afterwards it still caps the
/// number of participating workers per job (never grows the pool).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The thread count the pool resolves to: [`set_threads`] override, then the
/// `EM_THREADS` environment variable, then `available_parallelism()`.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(s) = std::env::var("EM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A job handed to the workers: a type-erased reference to a closure that
/// lives on the submitter's stack. The submitter blocks until every worker
/// is done with it, so the erased lifetime never actually dangles.
#[derive(Clone, Copy)]
struct RawJob {
    f: *const (dyn Fn() + Sync),
}

// The pointee is Sync and outlives the job (enforced by the completion
// barrier in `Pool::run`), so shipping the pointer across threads is sound.
unsafe impl Send for RawJob {}

struct PoolState {
    job: Option<RawJob>,
    /// Increments per job so sleeping workers can tell "new job" from
    /// spurious wakeups.
    epoch: usize,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// Set when any participant panicked; the submitter re-panics.
    panicked: bool,
    /// When the current job was published (stats timebase ns; 0 when stats
    /// are off). Observed by workers to report queue-wait; never read by
    /// scheduling logic.
    publish_ns: u64,
}

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

struct Pool {
    shared: &'static Shared,
    n_workers: usize,
    /// One job at a time; contenders (including nested sections) run inline.
    busy: AtomicBool,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let n_workers = threads().saturating_sub(1);
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                publish_ns: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }));
        for i in 0..n_workers {
            std::thread::Builder::new()
                .name(format!("em-rt-{i}"))
                .spawn(move || worker_loop(shared, i))
                .expect("spawn em-rt worker");
        }
        Pool {
            shared,
            n_workers,
            busy: AtomicBool::new(false),
        }
    })
}

fn worker_loop(shared: &'static Shared, index: usize) {
    let mut seen_epoch = 0usize;
    loop {
        let (job, publish_ns) = {
            let mut st = shared.state.lock().unwrap();
            while st.epoch == seen_epoch || st.job.is_none() {
                st = shared.work.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            (st.job.expect("job present at fresh epoch"), st.publish_ns)
        };
        let start_ns = if stats::enabled() {
            let now = stats::now_ns();
            stats::QUEUE_WAIT_NS.record(now.saturating_sub(publish_ns));
            now
        } else {
            0
        };
        // Run the (lifetime-erased) job body; the submitter is blocked on
        // `done` until we decrement `remaining`, keeping the closure alive.
        let body = unsafe { &*job.f };
        let outcome = catch_unwind(AssertUnwindSafe(body));
        if start_ns != 0 {
            stats::add_busy_ns(Some(index), stats::now_ns().saturating_sub(start_ns));
        }
        let mut st = shared.state.lock().unwrap();
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

impl Pool {
    /// Broadcast `body` to every worker, run it on the caller too, and wait
    /// for all of them. Panics from any participant are re-raised here after
    /// the barrier (so no closure reference outlives the call).
    fn run(&self, body: &(dyn Fn() + Sync)) {
        let raw = RawJob {
            // Erase the borrow's lifetime; the completion barrier below
            // guarantees no worker touches it after `run` returns.
            f: unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync)>(body)
            },
        };
        let stats_on = stats::enabled();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(raw);
            st.epoch = st.epoch.wrapping_add(1);
            st.remaining = self.n_workers;
            st.publish_ns = if stats_on { stats::now_ns() } else { 0 };
            self.shared.work.notify_all();
        }
        let own_start = if stats_on { stats::now_ns() } else { 0 };
        let own = catch_unwind(AssertUnwindSafe(body));
        if stats_on {
            stats::add_busy_ns(None, stats::now_ns().saturating_sub(own_start));
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        self.busy.store(false, Ordering::Release);
        match own {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("em-rt pool worker panicked"),
            Ok(()) => {}
        }
    }
}

/// Number of background worker threads the shared pool owns (initializing
/// the pool if needed). The calling thread always participates in parallel
/// sections too, so total concurrency is `pool_workers() + 1`. Returns 0
/// when the pool resolved to a single thread — callers that need *real*
/// concurrency (e.g. a blocking coordinator/worker protocol) must fall back
/// to a sequential path in that case.
pub fn pool_workers() -> usize {
    pool().n_workers
}

/// Run `f(i)` for every `i in 0..n`, distributing indices over the shared
/// pool with chunked work stealing. `jobs` caps the number of participating
/// threads (0 = the pool's full [`threads`] count). Results are independent
/// of `jobs`: every index runs exactly once, in chunks claimed off a single
/// atomic counter.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, jobs: usize, f: F) {
    // Aim for ~8 steal operations per participant: cheap enough to balance,
    // coarse enough that counter contention is negligible.
    let workers = effective_jobs(jobs);
    let chunk = (n / (workers * 8).max(1)).max(1);
    parallel_for_chunked(n, jobs, chunk, f);
}

/// [`parallel_for`] with an explicit steal-chunk size.
pub fn parallel_for_chunked<F: Fn(usize) + Sync>(n: usize, jobs: usize, chunk: usize, f: F) {
    if n == 0 {
        return;
    }
    let jobs = effective_jobs(jobs).min(n);
    let p = pool();
    let stats_on = stats::enabled();
    if jobs <= 1 || p.n_workers == 0 {
        if stats_on {
            stats::POOL_INLINE.fetch_add(1, Ordering::Relaxed);
        }
        for i in 0..n {
            f(i);
        }
        return;
    }
    if p.busy
        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        // Pool occupied: nested section (or a concurrent top-level one).
        // The machine is already saturated — run inline.
        if stats_on {
            stats::POOL_INLINE.fetch_add(1, Ordering::Relaxed);
        }
        for i in 0..n {
            f(i);
        }
        return;
    }
    if stats_on {
        stats::POOL_JOBS.fetch_add(1, Ordering::Relaxed);
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    // The submitter always participates; workers beyond `jobs` bow out.
    let tickets = AtomicIsize::new(jobs as isize - 1);
    let body = move || {
        if tickets.fetch_sub(1, Ordering::Relaxed) < 0 {
            return;
        }
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            if stats_on {
                stats::POOL_CHUNKS.fetch_add(1, Ordering::Relaxed);
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                f(i);
            }
        }
    };
    // `run` resets `busy` before returning (including on panic paths is not
    // needed: a panic propagates out of the process's test anyway, and the
    // barrier has completed by the time it re-raises).
    p.run(&body);
}

/// Run a fixed set of heterogeneous tasks on the pool (a minimal "scoped
/// spawn": each closure runs exactly once, and `scope` returns after all of
/// them finish).
pub fn scope(jobs: usize, tasks: &[&(dyn Fn() + Sync)]) {
    parallel_for_chunked(tasks.len(), jobs, 1, |i| (tasks[i])());
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        threads()
    } else {
        jobs
    }
}

/// Shared mutable access to disjoint elements of a slice from a parallel
/// section, without a lock: the caller promises every index is written by at
/// most one thread (which `parallel_for`'s exactly-once index distribution
/// gives for free).
pub struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceWriter<'_, T> {}
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    /// Wrap a uniquely-borrowed slice for disjoint parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        SliceWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write one element.
    ///
    /// # Safety
    /// No other thread may read or write index `i` for the duration of the
    /// parallel section.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "SliceWriter index out of bounds");
        unsafe { self.ptr.add(i).write(value) };
    }

    /// Borrow a mutable sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// Ranges handed out to concurrent threads must be disjoint.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start <= self.len && len <= self.len - start,
            "SliceWriter range out of bounds"
        );
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1000, 0, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn respects_explicit_job_caps() {
        for jobs in [1, 2, 7] {
            let sum = AtomicU64::new(0);
            parallel_for(100, jobs, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
        }
    }

    #[test]
    fn disjoint_writes_assemble_results() {
        let mut out = vec![0usize; 513];
        let w = SliceWriter::new(&mut out);
        parallel_for(513, 0, |i| unsafe { w.write(i, i * i) });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn nested_sections_run_inline() {
        let total = AtomicUsize::new(0);
        parallel_for(8, 0, |_| {
            parallel_for(10, 0, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn scope_runs_every_task() {
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let ta = || {
            a.fetch_add(1, Ordering::Relaxed);
        };
        let tb = || {
            b.fetch_add(10, Ordering::Relaxed);
        };
        scope(0, &[&ta, &tb]);
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let caught = std::panic::catch_unwind(|| {
            parallel_for(16, 0, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // The pool must still work afterwards.
        let sum = AtomicUsize::new(0);
        parallel_for(50, 0, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 49 * 50 / 2);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        parallel_for(0, 0, |_| panic!("must not run"));
    }
}
