//! Deterministic pseudo-random numbers: a SplitMix64-seeded xoshiro256++
//! generator with the small API surface the workspace actually uses —
//! `seed_from_u64`, `random_range` over integer and float ranges, Bernoulli
//! draws, Gaussian sampling, and slice shuffling/choosing.
//!
//! The generator is fully deterministic for a fixed seed on every platform
//! (no OS entropy, no hash-seed dependence), which the workspace leans on
//! for reproducible experiments and for the 1-thread-vs-N-thread
//! bit-identity guarantees of the parallel paths.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand a 64-bit seed into xoshiro state and
/// recommended by the xoshiro authors for exactly that purpose.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
/// Named `StdRng` so call sites read the same as with the `rand` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministically build a generator from a 64-bit seed via SplitMix64
    /// state expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range (exclusive `lo..hi` or inclusive
    /// `lo..=hi`), over the integer and float types the workspace samples.
    ///
    /// # Panics
    /// On empty ranges.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Standard normal draw (Box-Muller; one of the pair is discarded to
    /// keep the stream position independent of call history).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.unit_f64().max(1e-300);
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Uniform `u64` below `bound` (unbiased via Lemire-style widening
    /// multiply with rejection).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Derive an independent stream seed from a base seed and a task index —
/// the workspace's seeding discipline for parallel sections: every parallel
/// task that needs randomness builds its own `StdRng` from
/// `derive_seed(seed, i)` instead of sharing one generator, so results
/// depend only on `(seed, i)` and never on which thread ran the task or in
/// what order. The mix is one SplitMix64 step over a xor of the inputs,
/// so neighboring indices produce statistically unrelated streams.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A range that [`StdRng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher-Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
    /// A uniformly random element (`None` on an empty slice).
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn derived_seeds_give_independent_reproducible_streams() {
        // Reproducible: same (seed, index) -> same stream.
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        // Distinct across indices and base seeds, including index 0 vs the
        // base seed itself (a parallel task must not alias the parent).
        assert_ne!(derive_seed(7, 0), 7);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(seed, index)));
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let u = rng.random_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
            let f = rng.random_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.random_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
