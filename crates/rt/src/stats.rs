//! Self-instrumentation for the runtime: lock-free counters and log-scale
//! histograms the pool and channel update on their hot paths, plus the
//! process-wide monotonic timebase every trace record in the workspace
//! shares.
//!
//! This module exists so `em-obs` (which depends on `em-rt`) can observe the
//! runtime without a dependency cycle: `em-obs` flips [`set_enabled`] when a
//! trace sink is active and snapshots everything here at flush time via
//! [`snapshot_json`]. When disabled (the default), every instrumentation
//! site reduces to one relaxed atomic load — no timestamps are taken, no
//! counters move, and nothing allocates.
//!
//! Determinism contract: everything here *observes* execution (timestamps,
//! claim counts, wait durations) and nothing feeds back into scheduling or
//! computation, so enabling stats can never change a result bit.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Master switch, flipped by the observability layer. Default off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable runtime stats collection. Counters are not cleared on
/// transitions; pair with [`reset`] when a clean window is needed.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether runtime stats collection is currently on. One relaxed load —
/// cheap enough for per-chunk hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process's trace epoch (the first call to this
/// function). Monotonic, shared by every span and event in the workspace so
/// records from different crates land on one timeline.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Number of per-thread busy-time slots: slot 0 is the submitting thread,
/// slots `1..` are pool workers. Workers beyond the cap fold into the last
/// slot (pools that large do not occur in practice).
pub const MAX_TRACKED_THREADS: usize = 65;

/// A fixed-bucket log2 histogram: bucket 0 holds zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64`
/// range; recording is a single relaxed `fetch_add`.
pub struct LogHistogram {
    buckets: [AtomicU64; 65],
}

impl LogHistogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; 65],
        }
    }

    /// Count one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    Some((lower, n))
                }
            })
            .collect()
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the bucket
    /// containing the `q`-th observation, or `None` if empty. Log-bucketed,
    /// so the answer is within 2x of the true value — plenty for a p50/p99
    /// utilization report.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << (i - 1) });
            }
        }
        None
    }

    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            (
                "buckets",
                Json::arr(self.nonzero_buckets().into_iter().map(|(lower, n)| {
                    Json::obj([("ge", Json::from(lower)), ("n", Json::from(n))])
                })),
            ),
            ("p50", self.quantile(0.50).map_or(Json::Null, Json::from)),
            ("p99", self.quantile(0.99).map_or(Json::Null, Json::from)),
        ])
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Parallel sections dispatched to the worker pool.
pub static POOL_JOBS: AtomicU64 = AtomicU64::new(0);
/// Parallel sections run inline (serial request, nested section, or a
/// contended pool).
pub static POOL_INLINE: AtomicU64 = AtomicU64::new(0);
/// Work chunks claimed off dispatch counters (steal operations).
pub static POOL_CHUNKS: AtomicU64 = AtomicU64::new(0);
/// Delay from job publication to each participant starting it, in ns.
pub static QUEUE_WAIT_NS: LogHistogram = LogHistogram::new();
/// Busy nanoseconds per participating thread: slot 0 = submitter, 1.. =
/// pool workers.
pub static THREAD_BUSY_NS: [AtomicU64; MAX_TRACKED_THREADS] =
    [const { AtomicU64::new(0) }; MAX_TRACKED_THREADS];
/// Values sent over `em-rt` channels.
pub static CHANNEL_SENDS: AtomicU64 = AtomicU64::new(0);
/// Values received over `em-rt` channels.
pub static CHANNEL_RECVS: AtomicU64 = AtomicU64::new(0);
/// Time receivers spent blocked waiting for a value, in ns (only recorded
/// when `recv` actually blocks).
pub static RECV_WAIT_NS: LogHistogram = LogHistogram::new();

/// Add `ns` of busy time to the slot for pool worker `index` (`None` = the
/// submitting thread).
#[inline]
pub fn add_busy_ns(worker: Option<usize>, ns: u64) {
    let slot = match worker {
        None => 0,
        Some(i) => (i + 1).min(MAX_TRACKED_THREADS - 1),
    };
    THREAD_BUSY_NS[slot].fetch_add(ns, Ordering::Relaxed);
}

/// Total busy nanoseconds accumulated across every tracked thread (submitter
/// plus pool workers). Monotone while stats stay enabled; live-telemetry
/// pollers diff successive samples against wall time to derive pool
/// utilization without touching the flush path.
pub fn busy_ns_total() -> u64 {
    THREAD_BUSY_NS
        .iter()
        .map(|slot| slot.load(Ordering::Relaxed))
        .sum()
}

/// Clear every counter and histogram (the timebase epoch is left alone so
/// timestamps stay comparable across windows).
pub fn reset() {
    for c in [
        &POOL_JOBS,
        &POOL_INLINE,
        &POOL_CHUNKS,
        &CHANNEL_SENDS,
        &CHANNEL_RECVS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
    for slot in &THREAD_BUSY_NS {
        slot.store(0, Ordering::Relaxed);
    }
    QUEUE_WAIT_NS.clear();
    RECV_WAIT_NS.clear();
}

/// Snapshot every runtime counter as a JSON object (the payload of the
/// trace's `"kind":"pool"` / `"kind":"channel"` records).
pub fn snapshot_json() -> (Json, Json) {
    let busy: Vec<Json> = THREAD_BUSY_NS
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| {
            let ns = slot.load(Ordering::Relaxed);
            if ns == 0 {
                None
            } else {
                let name = if i == 0 {
                    "submitter".to_string()
                } else {
                    format!("worker-{}", i - 1)
                };
                Some(Json::obj([
                    ("thread", Json::from(name)),
                    ("busy_ns", Json::from(ns)),
                ]))
            }
        })
        .collect();
    let pool = Json::obj([
        ("jobs", Json::from(POOL_JOBS.load(Ordering::Relaxed))),
        (
            "inline_sections",
            Json::from(POOL_INLINE.load(Ordering::Relaxed)),
        ),
        (
            "chunks_claimed",
            Json::from(POOL_CHUNKS.load(Ordering::Relaxed)),
        ),
        ("workers", Json::from(crate::pool::pool_workers())),
        ("queue_wait_ns", QUEUE_WAIT_NS.to_json()),
        ("busy", Json::Arr(busy)),
    ]);
    let channel = Json::obj([
        ("sends", Json::from(CHANNEL_SENDS.load(Ordering::Relaxed))),
        ("recvs", Json::from(CHANNEL_RECVS.load(Ordering::Relaxed))),
        ("recv_wait_ns", RECV_WAIT_NS.to_json()),
    ]);
    (pool, channel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_buckets_by_power_of_two() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(0.99), Some(4));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
