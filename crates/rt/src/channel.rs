//! A small blocking MPMC channel for coordinator/worker protocols.
//!
//! The async SMBO scheduler in `em-automl` keeps its surrogate model and
//! suggestion RNG on a single coordinator and ships work out / results back
//! over two of these channels, so the mutable search state itself never sits
//! behind a lock. The channel is the only shared structure, and it is a
//! plain `Mutex<VecDeque>` + `Condvar` — unbounded, FIFO, clonable on both
//! ends.
//!
//! Closing: every sender dropped (or an explicit [`Sender::close`]) wakes
//! all blocked receivers, which then drain the remaining queue and get
//! `None`. This is the termination signal worker loops key off.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders: usize,
    closed: bool,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    ready: Condvar,
}

/// The sending half of a [`channel`]. Cloning adds a sender; the channel
/// closes when all senders are dropped or any calls [`Sender::close`].
pub struct Sender<T> {
    inner: Arc<Channel<T>>,
}

/// The receiving half of a [`channel`]. Cloning adds a competing consumer
/// (MPMC: each item is delivered to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Channel<T>>,
}

/// Create an unbounded FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            senders: 1,
            closed: false,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value, waking one blocked receiver. Returns the value back
    /// as an `Err` if the channel was already closed.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err(value);
        }
        st.queue.push_back(value);
        drop(st);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Close the channel explicitly: receivers drain the queue, then see
    /// `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.inner.ready.notify_all();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            st.closed = true;
            drop(st);
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value is available (`Some`) or the channel is closed
    /// and drained (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Some(v);
            }
            if st.closed {
                return None;
            }
            st = self.inner.ready.wait(st).unwrap();
        }
    }

    /// Non-blocking receive: `Some` if a value was queued, `None` otherwise
    /// (whether the channel is open or closed).
    pub fn try_recv(&self) -> Option<T> {
        self.inner.state.lock().unwrap().queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn drop_of_last_sender_closes() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_after_close_fails() {
        let (tx, rx) = channel();
        tx.close();
        assert_eq!(tx.send(7), Err(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn cross_thread_handoff_delivers_everything() {
        let (work_tx, work_rx) = channel::<usize>();
        let (res_tx, res_rx) = channel::<usize>();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let work_rx = work_rx.clone();
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    while let Some(v) = work_rx.recv() {
                        res_tx.send(v * 2).unwrap();
                    }
                });
            }
            for i in 0..100 {
                work_tx.send(i).unwrap();
            }
            work_tx.close();
            drop(res_tx);
            let mut got: Vec<usize> = std::iter::from_fn(|| res_rx.recv()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        });
    }
}
