//! A small blocking MPMC channel for coordinator/worker protocols.
//!
//! The async SMBO scheduler in `em-automl` keeps its surrogate model and
//! suggestion RNG on a single coordinator and ships work out / results back
//! over two of these channels, so the mutable search state itself never sits
//! behind a lock. The channel is the only shared structure, and it is a
//! plain `Mutex<VecDeque>` + `Condvar` — unbounded, FIFO, clonable on both
//! ends.
//!
//! Closing: every sender dropped (or an explicit [`Sender::close`]) wakes
//! all blocked receivers, which then drain the remaining queue and get
//! `None`. This is the termination signal worker loops key off. The channel
//! also closes when every receiver is dropped, so a producer whose consumers
//! have all exited gets its value back as an `Err` instead of queueing into
//! the void.

use crate::stats;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    closed: bool,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    ready: Condvar,
}

/// The sending half of a [`channel`]. Cloning adds a sender; the channel
/// closes when all senders are dropped or any calls [`Sender::close`].
pub struct Sender<T> {
    inner: Arc<Channel<T>>,
}

/// The receiving half of a [`channel`]. Cloning adds a competing consumer
/// (MPMC: each item is delivered to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Channel<T>>,
}

/// Create an unbounded FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            closed: false,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value, waking one blocked receiver. Returns the value back
    /// as an `Err` if the channel was already closed or every receiver has
    /// been dropped (nobody can ever consume it).
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.inner.state.lock().unwrap();
        if st.closed || st.receivers == 0 {
            return Err(value);
        }
        st.queue.push_back(value);
        drop(st);
        if stats::enabled() {
            stats::CHANNEL_SENDS.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Close the channel explicitly: receivers drain the queue, then see
    /// `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.inner.ready.notify_all();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            st.closed = true;
            drop(st);
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value is available (`Some`) or the channel is closed
    /// and drained (`None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap();
        // Time only the blocking path, and only when stats are on: a recv
        // satisfied from the queue records a zero-cost hit, not a wait.
        let mut wait_start = 0u64;
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                if stats::enabled() {
                    stats::CHANNEL_RECVS.fetch_add(1, Ordering::Relaxed);
                    if wait_start != 0 {
                        stats::RECV_WAIT_NS.record(stats::now_ns().saturating_sub(wait_start));
                    }
                }
                return Some(v);
            }
            if st.closed {
                return None;
            }
            if wait_start == 0 && stats::enabled() {
                wait_start = stats::now_ns();
            }
            st = self.inner.ready.wait(st).unwrap();
        }
    }

    /// Non-blocking receive: `Some` if a value was queued, `None` otherwise
    /// (whether the channel is open or closed).
    pub fn try_recv(&self) -> Option<T> {
        let v = self.inner.state.lock().unwrap().queue.pop_front();
        if v.is_some() && stats::enabled() {
            stats::CHANNEL_RECVS.fetch_add(1, Ordering::Relaxed);
        }
        v
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Nobody can ever consume again: close so senders learn
            // immediately instead of queueing into the void, and drop any
            // undeliverable backlog.
            st.closed = true;
            st.queue.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn drop_of_last_sender_closes() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_after_close_fails() {
        let (tx, rx) = channel();
        tx.close();
        assert_eq!(tx.send(7), Err(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_after_all_receivers_dropped_fails() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(2).unwrap();
        drop(rx2);
        assert_eq!(tx.send(3), Err(3));
        // Still failing on a second attempt (closed is sticky).
        assert_eq!(tx.send(4), Err(4));
    }

    #[test]
    fn blocked_recv_wakes_when_last_sender_drops() {
        let (tx, rx) = channel::<usize>();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv());
            // Give the receiver a chance to block, then drop the only sender.
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn contended_mpmc_delivers_each_item_exactly_once() {
        // 8 producers x 8 consumers racing over one channel: every item must
        // come out exactly once, and per-producer order must be preserved
        // in the interleaved consumption (FIFO per queue implies per-sender
        // monotonicity of what any single consumer observes in aggregate).
        const PRODUCERS: usize = 8;
        const CONSUMERS: usize = 8;
        const PER_PRODUCER: usize = 500;
        let (tx, rx) = channel::<(usize, usize)>();
        let consumed: Vec<std::sync::Mutex<Vec<(usize, usize)>>> = (0..CONSUMERS)
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        std::thread::scope(|s| {
            for sink in &consumed {
                let rx = rx.clone();
                s.spawn(move || {
                    while let Some(item) = rx.recv() {
                        sink.lock().unwrap().push(item);
                    }
                });
            }
            drop(rx);
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send((p, i)).unwrap();
                    }
                });
            }
            drop(tx);
        });
        let mut all: Vec<(usize, usize)> = consumed
            .iter()
            .flat_map(|m| m.lock().unwrap().clone())
            .collect();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        all.sort_unstable();
        let expected: Vec<(usize, usize)> = (0..PRODUCERS)
            .flat_map(|p| (0..PER_PRODUCER).map(move |i| (p, i)))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn cross_thread_handoff_delivers_everything() {
        let (work_tx, work_rx) = channel::<usize>();
        let (res_tx, res_rx) = channel::<usize>();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let work_rx = work_rx.clone();
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    while let Some(v) = work_rx.recv() {
                        res_tx.send(v * 2).unwrap();
                    }
                });
            }
            for i in 0..100 {
                work_tx.send(i).unwrap();
            }
            work_tx.close();
            drop(res_tx);
            let mut got: Vec<usize> = std::iter::from_fn(|| res_rx.recv()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        });
    }
}
