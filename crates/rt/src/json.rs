//! A minimal JSON value, writer, and parser — just enough for the benchmark
//! and experiment binaries to emit machine-readable results without `serde`,
//! and for `obs_report` to read JSONL traces back.
//!
//! Construction is by hand (`Json::obj`, `Json::arr`, `From` impls);
//! rendering escapes strings per RFC 8259 and prints numbers with enough
//! precision to round-trip `f64`. [`Json::parse`] is a strict recursive
//! descent over the same grammar.

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with the given indentation width (pretty-printed).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    /// Parse a JSON document. Rejects trailing garbage; numbers parse as
    /// `f64` (the only numeric type this value carries).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n:?}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3usize).render(), "3");
        assert_eq!(Json::from(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::from("forest")),
            ("times_ms", Json::arr([Json::from(1.5), Json::from(2.0)])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"forest\",\"times_ms\":[1.5,2],\"ok\":true}"
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::obj([("a", Json::arr([Json::from(1.0)]))]);
        assert_eq!(doc.render_pretty(2), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_textually() {
        let v = 0.1 + 0.2;
        let rendered = Json::from(v).render();
        assert_eq!(rendered.parse::<f64>().unwrap(), v);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj([
            ("name", Json::from("forest.fit \"quoted\"\n")),
            ("t0", Json::from(123456789usize)),
            ("score", Json::from(-0.5e-3)),
            (
                "tags",
                Json::arr([Json::Null, Json::from(true), Json::from(false)]),
            ),
            ("nested", Json::obj([("empty_arr", Json::Arr(vec![]))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty(2)).unwrap(), doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "aA\n\t\\ é"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n\t\\ é");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("truex").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"kind":"span","t0":5,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("t0").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("kind").is_none());
    }
}
