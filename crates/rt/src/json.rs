//! A minimal JSON value and writer — just enough for the benchmark and
//! experiment binaries to emit machine-readable results without `serde`.
//!
//! Construction is by hand (`Json::obj`, `Json::arr`, `From` impls);
//! rendering escapes strings per RFC 8259 and prints numbers with enough
//! precision to round-trip `f64`.

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with the given indentation width (pretty-printed).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n:?}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3usize).render(), "3");
        assert_eq!(Json::from(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::from("a\"b\\c\nd").render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::from("forest")),
            ("times_ms", Json::arr([Json::from(1.5), Json::from(2.0)])),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"forest\",\"times_ms\":[1.5,2],\"ok\":true}"
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::obj([("a", Json::arr([Json::from(1.0)]))]);
        assert_eq!(doc.render_pretty(2), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_textually() {
        let v = 0.1 + 0.2;
        let rendered = Json::from(v).render();
        assert_eq!(rendered.parse::<f64>().unwrap(), v);
    }
}
