//! `parking_lot`-flavored shims over `std::sync`: locks whose `lock()`
//! returns the guard directly (poisoning is treated as a bug in the
//! panicking section, so the guard is recovered rather than propagated).

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock with the same poison-recovering interface.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_unwraps() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
