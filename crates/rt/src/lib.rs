//! `em-rt` — the zero-dependency runtime underneath the AutoML-EM workspace.
//!
//! The workspace's hot paths (forest training, pairwise feature generation,
//! pipeline search) are embarrassingly parallel but latency-sensitive: a
//! single SMAC run fits hundreds of small forests, so per-fit thread-spawn
//! overhead compounds. This crate owns that problem with four tiny modules:
//!
//! * [`pool`] — a persistent, lazily-initialized, process-global worker pool
//!   with a scoped [`parallel_for`] interface and atomic-counter work
//!   stealing. Threads are spawned once and reused across every fit of a
//!   search, instead of once per call.
//! * [`rng`] — a deterministic SplitMix64-seeded xoshiro256++ generator
//!   ([`StdRng`]) replacing the `rand` crate: `seed_from_u64`,
//!   `random_range`, `shuffle`, and Gaussian sampling, plus the
//!   [`derive_seed`] per-task stream-splitting discipline that keeps
//!   parallel sections bit-identical across thread counts.
//! * [`channel`] — a blocking MPMC channel (`Mutex<VecDeque>` + `Condvar`)
//!   for coordinator/worker protocols such as the async SMBO scheduler.
//! * [`sync`] — `parking_lot`-flavored wrappers over `std::sync` (a
//!   [`sync::Mutex`] whose `lock()` returns the guard directly).
//! * [`json`] — a minimal JSON value/writer/parser for benchmark and
//!   experiment output, standing in for `serde`.
//! * [`stats`] — lock-free self-instrumentation (pool queue-wait, per-worker
//!   busy time, channel traffic) behind a relaxed-atomic enable flag, plus
//!   the process-wide monotonic timebase `em-obs` builds its traces on.
//!
//! Everything is plain `std`; the workspace builds with no registry access.

pub mod channel;
pub mod json;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod sync;

pub use channel::{channel, Receiver, Sender};
pub use json::Json;
pub use pool::{
    parallel_for, parallel_for_chunked, pool_workers, scope, set_threads, threads, SliceWriter,
};
pub use rng::{derive_seed, SliceRandom, StdRng};
