//! Thread-count determinism: with a fixed seed, the feature matrix and the
//! forest predictions must be bit-identical whether the shared `em-rt` pool
//! runs the work on 1 thread or many. This is the guarantee that lets every
//! experiment in the repo report one number regardless of the host.
//!
//! This test gets its own process (integration-test binary), so it can size
//! the global pool without interfering with other tests.

use automl_em::{FeatureGenerator, FeatureScheme};
use em_ml::{Classifier, ForestParams, RandomForestClassifier};
use em_table::RecordPair;

#[test]
fn feature_matrix_and_forest_are_thread_count_invariant() {
    // Force a multi-worker pool even on single-core CI hosts (EM_THREADS
    // still wins if the environment sets it).
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }

    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(7, 0.2);
    let generator =
        FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
    let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
    assert!(pairs.len() >= 64, "need enough pairs to trigger the parallel path");

    // Feature matrix: serial vs pooled, bit for bit (NaN = missing cell).
    let serial = generator.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, 1);
    let pooled = generator.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, em_rt::threads());
    assert_eq!(serial.nrows(), pooled.nrows());
    assert_eq!(serial.ncols(), pooled.ncols());
    for (a, b) in serial.as_slice().iter().zip(pooled.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Forest: 1 job vs many jobs, identical predictions and probabilities.
    // Trees reject NaN, so impute the missing cells first (mean, like the
    // pipeline's default preprocessor).
    let (_, serial) =
        em_ml::preprocess::SimpleImputer::fit_transform(em_ml::preprocess::ImputeStrategy::Mean, &serial);
    let labels: Vec<usize> = ds.pairs.iter().map(|p| usize::from(p.label)).collect();
    let fit = |n_jobs: usize| {
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 31,
            seed: 41,
            n_jobs,
            ..ForestParams::default()
        });
        rf.fit(&serial, &labels, 2, None);
        rf
    };
    let rf1 = fit(1);
    let rfn = fit(em_rt::threads());
    assert_eq!(rf1.predict(&serial), rfn.predict(&serial));
    let (p1, pn) = (rf1.predict_proba(&serial), rfn.predict_proba(&serial));
    for (a, b) in p1.as_slice().iter().zip(pn.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(rf1.vote_fraction(&serial), rfn.vote_fraction(&serial));
}
