//! Thread-count determinism harness: with a fixed seed, every pool-parallel
//! path in the workspace must produce bit-identical results whether the
//! shared `em-rt` pool runs the work on 1 thread or many. This is the
//! guarantee that lets every experiment in the repo report one number
//! regardless of the host. Covered paths:
//!
//! 1. pairwise feature generation + forest training (the original check),
//! 2. `em-table` blocking candidate generation,
//! 3. stratified k-fold `cross_val_f1`,
//! 4. permutation feature importances,
//! 5. `em-data` benchmark synthesis,
//! 6. the async SMBO search trajectory (serial fallback vs worker threads),
//! 7. cached feature generation (`FeatureCache`): profile building and memo
//!    filling at any thread count, bit-identical to the uncached path,
//! 8. the binned tree splitter: forest-level jobs and per-node subtree
//!    tasks at any pool size, plus the `EM_BINNED` engine override,
//! 9. `em-weak` labeling-function application and label-model EM fitting
//!    (parallel E-step), bit-identical votes/posteriors at any pool size.
//!
//! This harness gets its own process (integration-test binary), so it can
//! size the global pool without interfering with other tests. `verify.sh`
//! additionally runs the whole tier-1 suite under `EM_THREADS=1` and
//! `EM_THREADS=8`; inside the `EM_THREADS=8` run these tests compare
//! 1-thread against 8-thread execution in-process.

use automl_em::{EmPipelineConfig, FeatureCache, FeatureGenerator, FeatureScheme};
use em_ml::{
    Classifier, DecisionTree, ForestParams, Matrix, RandomForestClassifier, Splitter, TreeParams,
};
use em_table::{Blocker, OverlapBlocker, RecordPair};
use std::sync::{Mutex, MutexGuard};

/// Tests here may mutate the process-global `em_rt::set_threads` knob, so
/// they must not interleave.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Force a multi-worker pool even on single-core CI hosts (EM_THREADS still
/// wins if the environment sets it).
fn ensure_pool() {
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }
}

/// Small labeled feature data with an informative column, a noisy column, a
/// missing-prone column, and a constant column.
fn toy_data() -> (Matrix, Vec<usize>) {
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for i in 0..80 {
        let c = i % 2;
        let noise = ((i * 7) % 13) as f64 / 13.0;
        let missing = if i % 9 == 0 { f64::NAN } else { noise };
        rows.push(vec![c as f64 + 0.1 * noise, noise, missing, 1.0]);
        y.push(c);
    }
    (Matrix::from_rows(&rows), y)
}

#[test]
fn feature_matrix_and_forest_are_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();

    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(7, 0.2);
    let generator =
        FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
    let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
    assert!(
        pairs.len() >= 64,
        "need enough pairs to trigger the parallel path"
    );

    // Feature matrix: serial vs pooled, bit for bit (NaN = missing cell).
    let serial = generator.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, 1);
    let pooled = generator.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, em_rt::threads());
    assert_eq!(serial.nrows(), pooled.nrows());
    assert_eq!(serial.ncols(), pooled.ncols());
    for (a, b) in serial.as_slice().iter().zip(pooled.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Forest: 1 job vs many jobs, identical predictions and probabilities.
    // Trees reject NaN, so impute the missing cells first (mean, like the
    // pipeline's default preprocessor).
    let (_, serial) = em_ml::preprocess::SimpleImputer::fit_transform(
        em_ml::preprocess::ImputeStrategy::Mean,
        &serial,
    );
    let labels: Vec<usize> = ds.pairs.iter().map(|p| usize::from(p.label)).collect();
    let fit = |n_jobs: usize| {
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 31,
            seed: 41,
            n_jobs,
            ..ForestParams::default()
        });
        rf.fit(&serial, &labels, 2, None);
        rf
    };
    let rf1 = fit(1);
    let rfn = fit(em_rt::threads());
    assert_eq!(rf1.predict(&serial), rfn.predict(&serial));
    let (p1, pn) = (rf1.predict_proba(&serial), rfn.predict_proba(&serial));
    for (a, b) in p1.as_slice().iter().zip(pn.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(rf1.vote_fraction(&serial), rfn.vote_fraction(&serial));
}

#[test]
fn cached_featuregen_is_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();

    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(7, 0.2);
    let generator =
        FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
    let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
    assert!(
        pairs.len() >= 64,
        "need enough pairs to trigger the parallel path"
    );

    let bitwise_eq = |a: &Matrix, b: &Matrix| {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    };

    // Serial build + serial memo fill vs pooled build + pooled fill: the
    // interner ids, memo contents, and output matrix must all agree bit for
    // bit, and both must match the uncached `&str` path.
    let uncached = generator.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, 1);
    let mut serial = FeatureCache::with_jobs(generator.clone(), &ds.table_a, &ds.table_b, 1);
    let mut pooled = FeatureCache::with_jobs(
        generator.clone(),
        &ds.table_a,
        &ds.table_b,
        em_rt::threads(),
    );
    assert_eq!(serial.interned_tokens(), pooled.interned_tokens());
    let from_serial = serial.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, 1);
    let from_pooled = pooled.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, em_rt::threads());
    bitwise_eq(&uncached, &from_serial);
    bitwise_eq(&uncached, &from_pooled);
    assert_eq!(serial.memo_len(), pooled.memo_len());

    // Re-running against a warm memo changes nothing.
    let warm = pooled.generate_with_jobs(&ds.table_a, &ds.table_b, &pairs, em_rt::threads());
    bitwise_eq(&uncached, &warm);
}

#[test]
fn featcache_counters_reach_the_trace() {
    let _guard = serialize();
    ensure_pool();
    // With tracing on, the cache's em-obs counters (profile builds, memo
    // hits/misses, interner size) must land in the flushed trace — and a
    // second batch over the same pairs must be pure memo hits.
    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(3, 0.2);
    let generator =
        FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
    let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
    let trace_path =
        std::env::temp_dir().join(format!("em-featcache-trace-{}.jsonl", std::process::id()));
    em_obs::set_mode(em_obs::TraceMode::File(
        trace_path.to_string_lossy().into_owned(),
    ));
    let mut cache = FeatureCache::new(generator, &ds.table_a, &ds.table_b);
    let _ = cache.generate(&ds.table_a, &ds.table_b, &pairs);
    let _ = cache.generate(&ds.table_a, &ds.table_b, &pairs);
    em_obs::flush();
    em_obs::set_mode(em_obs::TraceMode::Off);
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    let records = em_obs::report::parse_trace(&text).expect("trace parses");
    let counter = |name: &str| -> u64 {
        records
            .iter()
            .filter(|r| r.get("kind").and_then(em_rt::Json::as_str) == Some("counter"))
            .filter(|r| r.get("name").and_then(em_rt::Json::as_str) == Some(name))
            .filter_map(|r| r.get("value").and_then(em_rt::Json::as_f64))
            .map(|v| v as u64)
            .max()
            .unwrap_or(0)
    };
    assert!(counter("featcache.profile_builds") > 0);
    assert!(counter("featcache.interner_tokens") > 0);
    assert!(counter("featcache.memo_misses") > 0);
    // The second batch repeats every key, so hits must at least cover it.
    assert!(counter("featcache.memo_hits") > 0);
}

#[test]
fn blocking_candidates_are_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();
    // DBLP-ACM at 0.2 scale yields ~440 records per table — enough to span
    // multiple 256-record probe shards.
    let ds = em_data::Benchmark::DblpAcm.generate_scaled(11, 0.2);
    assert!(ds.table_a.len() > 256, "need multiple shards");
    let attr = ds.table_a.schema().names()[0].to_string();
    let blocker = OverlapBlocker {
        attribute: attr,
        min_overlap: 2,
    };
    let serial = blocker.candidates_with_jobs(&ds.table_a, &ds.table_b, 1);
    let pooled = blocker.candidates_with_jobs(&ds.table_a, &ds.table_b, em_rt::threads());
    assert!(!serial.is_empty());
    assert_eq!(serial, pooled);
}

#[test]
fn cross_val_f1_is_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();
    let (x, y) = toy_data();
    let config = EmPipelineConfig::default_random_forest(3);
    let serial = config.cross_val_f1_with_jobs(&x, &y, 5, 9, 1);
    let pooled = config.cross_val_f1_with_jobs(&x, &y, 5, 9, em_rt::threads());
    assert_eq!(serial.to_bits(), pooled.to_bits());
}

#[test]
fn permutation_importances_are_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();
    let (x, y) = toy_data();
    let fitted = EmPipelineConfig::default_random_forest(5).fit(&x, &y);
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    let serial = fitted.permutation_importances_with_jobs(&x, &y, &names, 3, 17, 1);
    let pooled = fitted.permutation_importances_with_jobs(&x, &y, &names, 3, 17, em_rt::threads());
    assert_eq!(serial.entries.len(), pooled.entries.len());
    for (a, b) in serial.entries.iter().zip(&pooled.entries) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}

#[test]
fn benchmark_synthesis_is_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();
    for b in [
        em_data::Benchmark::FodorsZagats,
        em_data::Benchmark::DblpScholar,
        em_data::Benchmark::AbtBuy,
    ] {
        let serial = b.generate_scaled_with_jobs(13, 0.1, 1);
        let pooled = b.generate_scaled_with_jobs(13, 0.1, em_rt::threads());
        assert_eq!(serial.table_a, pooled.table_a, "{}", serial.name);
        assert_eq!(serial.table_b, pooled.table_b, "{}", serial.name);
        assert_eq!(serial.pairs, pooled.pairs, "{}", serial.name);
    }
}

#[test]
fn results_are_identical_with_tracing_on_and_off() {
    let _guard = serialize();
    ensure_pool();
    // The observability contract: instrumentation observes, it never feeds
    // back. A traced run must produce bit-identical results to an untraced
    // one — spans, counters, and events may not perturb RNG streams, work
    // partitioning, or float accumulation order.
    let (x, y) = toy_data();
    let run = || {
        let config = EmPipelineConfig::default_random_forest(7);
        let f1 = config.cross_val_f1_with_jobs(&x, &y, 5, 3, em_rt::threads());
        let fitted = config.fit(&x, &y);
        (f1, fitted.predict(&x))
    };
    let trace_path =
        std::env::temp_dir().join(format!("em-det-trace-{}.jsonl", std::process::id()));
    em_obs::set_mode(em_obs::TraceMode::File(
        trace_path.to_string_lossy().into_owned(),
    ));
    let traced = run();
    em_obs::flush();
    em_obs::set_mode(em_obs::TraceMode::Off);
    let untraced = run();
    assert_eq!(traced.0.to_bits(), untraced.0.to_bits());
    assert_eq!(traced.1, untraced.1);
    // The trace itself must be well-formed JSONL with the expected spans.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let records = em_obs::report::parse_trace(&text).expect("trace parses");
    assert!(!records.is_empty());
    assert!(text.contains("pipeline.cross_val"));
    assert!(text.contains("forest.fit"));
    let _ = std::fs::remove_file(&trace_path);
}

/// Continuous two-cluster data (the lossy binned regime) with weak
/// separation, so trees grow deep with large internal nodes — big enough
/// that the binned engine's per-node subtree tasks actually spawn.
fn binned_tree_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = em_rt::StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 2;
        rows.push(
            (0..d)
                .map(|_| c as f64 * 0.4 + rng.random_range(-1.0..1.0))
                .collect::<Vec<f64>>(),
        );
        y.push(c);
    }
    (Matrix::from_rows(&rows), y)
}

#[test]
fn binned_forest_is_thread_count_invariant() {
    let _guard = serialize();
    ensure_pool();
    let (x, y) = binned_tree_data(900, 6, 31);
    let fit = |n_jobs: usize| {
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 15,
            splitter: Splitter::Binned,
            seed: 43,
            n_jobs,
            ..ForestParams::default()
        });
        rf.fit(&x, &y, 2, None);
        rf
    };
    let rf1 = fit(1);
    let rfn = fit(em_rt::threads());
    assert_eq!(rf1.predict(&x), rfn.predict(&x));
    let (p1, pn) = (rf1.predict_proba(&x), rfn.predict_proba(&x));
    for (a, b) in p1.as_slice().iter().zip(pn.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn binned_subtree_tasking_is_thread_count_invariant() {
    let _guard = serialize();
    if std::env::var("EM_THREADS").is_ok() {
        // The env pins the pool size for the whole process; the 1-vs-8 flip
        // below needs the knob free (verify.sh runs this suite both ways).
        return;
    }
    // Large single tree: the root partitions ~800/800, well past the
    // spawn threshold, so with >1 threads whole subtrees run as pool tasks.
    // Fitting with a 1-thread pool takes the pure-recursion path instead;
    // the two trees must be identical node for node.
    let (x, y) = binned_tree_data(1600, 5, 77);
    let params = TreeParams {
        splitter: Splitter::Binned,
        seed: 13,
        ..TreeParams::default()
    };
    let fit = || DecisionTree::fit_classifier(&x, &y, 2, None, params.clone());
    em_rt::set_threads(1);
    let serial = fit();
    em_rt::set_threads(8);
    let pooled = fit();
    em_rt::set_threads(4);
    assert!(serial.n_nodes() > 64, "tree should be non-trivial");
    assert_eq!(serial.n_nodes(), pooled.n_nodes());
    assert_eq!(
        serial.to_json().render(),
        pooled.to_json().render(),
        "binned tree must be identical at any pool size"
    );
}

#[test]
fn em_binned_override_unifies_engines() {
    let _guard = serialize();
    ensure_pool();
    // With the `EM_BINNED` override pinned in either direction, the
    // requested splitter no longer selects the engine: a Best-configured
    // and a Binned-configured fit run the same code and must agree bit for
    // bit. (Serialized params still record what was requested, so compare
    // the node arrays, not the whole document.)
    let overridden = matches!(
        std::env::var("EM_BINNED").as_deref(),
        Ok("on" | "1" | "true" | "off" | "0" | "false")
    );
    if !overridden {
        eprintln!("skipping: EM_BINNED override not active");
        return;
    }
    let (x, y) = binned_tree_data(400, 4, 5);
    let fit = |splitter: Splitter| {
        DecisionTree::fit_classifier(
            &x,
            &y,
            2,
            None,
            TreeParams {
                splitter,
                seed: 3,
                ..TreeParams::default()
            },
        )
    };
    let a = fit(Splitter::Best);
    let b = fit(Splitter::Binned);
    assert_eq!(
        a.to_json().get("nodes").unwrap().render(),
        b.to_json().get("nodes").unwrap().render(),
        "override must unify the two engines"
    );
    let (pa, pb) = (a.predict_proba(&x), b.predict_proba(&x));
    for (va, vb) in pa.as_slice().iter().zip(pb.as_slice()) {
        assert_eq!(va.to_bits(), vb.to_bits());
    }
}

#[test]
fn async_smbo_trajectory_is_thread_count_invariant() {
    let _guard = serialize();
    // End-to-end: the full AutoML-EM driver with async candidate
    // evaluation, run once with a 1-thread pool (serial fallback) and once
    // with a multi-worker pool — same seed, identical trajectory, including
    // the forest fits nested inside each objective evaluation.
    if std::env::var("EM_THREADS").is_ok() {
        // The env pins the pool size for the whole process; the in-process
        // 1-vs-N comparison below needs to flip it, so defer to the runs
        // where the knob is free (verify.sh runs this suite both ways).
        return;
    }
    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(2, 0.2);
    let prep = automl_em::PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 2);
    let (xt, yt) = prep.train();
    let (xv, yv) = prep.valid();
    let run = || {
        let driver = automl_em::AutoMlEm::new(automl_em::AutoMlEmOptions {
            budget: em_automl::Budget::Evaluations(6),
            candidate_batch: 3,
            seed: 21,
            ..Default::default()
        });
        driver.fit(&xt, &yt, &xv, &yv)
    };
    em_rt::set_threads(1);
    let serial = run();
    em_rt::set_threads(8);
    let pooled = run();
    em_rt::set_threads(4);
    assert_eq!(serial.history.len(), pooled.history.len());
    for (a, b) in serial.history.trials().iter().zip(pooled.history.trials()) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    assert_eq!(serial.best_configuration, pooled.best_configuration);
    assert_eq!(
        serial.validation_f1.to_bits(),
        pooled.validation_f1.to_bits()
    );
}

#[test]
fn weak_lf_application_and_label_model_are_thread_count_invariant() {
    let _guard = serialize();
    if std::env::var("EM_THREADS").is_ok() {
        // The env pins the pool size for the whole process; the in-process
        // 1-vs-8 flip below needs the knob free (verify.sh runs this suite
        // both ways).
        return;
    }
    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(5, 0.3);
    let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
    let lfs = em_weak::LfSet::similarity_battery(&ds.table_a, &ds.table_b, 0.7, 0.2);
    let run = || {
        em_weak::WeakSupervision::run(
            &lfs,
            &ds.table_a,
            &ds.table_b,
            &pairs,
            &em_weak::LabelModelOptions::default(),
        )
        .expect("battery compiles against its own schema")
    };
    em_rt::set_threads(1);
    let serial = run();
    em_rt::set_threads(8);
    let pooled = run();
    em_rt::set_threads(4);
    // Votes go through FeatureCache (parallel profile drafting + memo
    // fill); the label model's E-step is a parallel_for. Both must be bit
    // stable.
    assert_eq!(serial.votes, pooled.votes);
    assert_eq!(serial.stats, pooled.stats);
    assert_eq!(serial.model.iterations, pooled.model.iterations);
    assert_eq!(serial.model.converged, pooled.model.converged);
    assert_eq!(serial.model.prior.to_bits(), pooled.model.prior.to_bits());
    for (a, b) in serial.model.accuracies.iter().zip(&pooled.model.accuracies) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in serial.posteriors.iter().zip(&pooled.posteriors) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // The derived training set (thresholded hard labels + confidence
    // weights) is therefore identical too.
    let (ts, tp) = (serial.training_set(), pooled.training_set());
    assert_eq!(ts.indices, tp.indices);
    assert_eq!(ts.labels, tp.labels);
    for (a, b) in ts.weights.iter().zip(&tp.weights) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
