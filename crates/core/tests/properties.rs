//! Property tests for the AutoML-EM core: feature-generation invariants,
//! pipeline totality over the whole search space, and decode robustness.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use automl_em::{
    build_space, decode_configuration, FeatureGenerator, FeatureScheme, ModelSpace, SpaceOptions,
};
use em_rt::StdRng;
use em_table::{AttrType, RecordPair, Schema, Table, Value};

const CASES: u64 = 48;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0xc03e_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// 1-4 lowercase words of 1-8 letters (the old text strategy).
fn random_text(rng: &mut StdRng) -> String {
    let words = rng.random_range(1..=4usize);
    (0..words)
        .map(|_| {
            let len = rng.random_range(1..=8usize);
            (0..len)
                .map(|_| (b'a' + rng.random_range(0..26usize) as u8) as char)
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Random cell values including nulls, weighted 2:1:1:1 text/number/bool/null.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0..5usize) {
        0 | 1 => Value::Text(random_text(rng)),
        2 => Value::Number(rng.random_range(-1000.0f64..1000.0)),
        3 => Value::Bool(rng.random_bool(0.5)),
        _ => Value::Null,
    }
}

/// A pair of single-schema tables with 1-5 rows each.
fn table_pair(rng: &mut StdRng, cols: usize) -> (Table, Table) {
    let names: Vec<String> = (0..cols).map(|i| format!("attr{i}")).collect();
    let mut a = Table::new(Schema::new(names.clone()));
    let mut b = Table::new(Schema::new(names));
    for t in [&mut a, &mut b] {
        let rows = rng.random_range(1..6usize);
        for _ in 0..rows {
            t.push_row((0..cols).map(|_| random_value(rng)).collect())
                .unwrap();
        }
    }
    (a, b)
}

#[test]
fn feature_generation_is_total_and_shape_correct() {
    check(|rng| {
        let (a, b) = table_pair(rng, 3);
        for scheme in [FeatureScheme::Magellan, FeatureScheme::AutoMlEm] {
            let generator = FeatureGenerator::plan_for_tables(scheme, &a, &b);
            let pairs: Vec<RecordPair> = (0..a.len())
                .flat_map(|i| (0..b.len()).map(move |j| RecordPair::new(i, j)))
                .collect();
            let x = generator.generate(&a, &b, &pairs);
            assert_eq!(x.nrows(), pairs.len());
            assert_eq!(x.ncols(), generator.n_features());
            // Every cell is finite or NaN — never infinite (raw NW scores
            // are bounded by string lengths).
            for v in x.as_slice() {
                assert!(v.is_nan() || v.is_finite());
            }
        }
    });
}

#[test]
fn identical_records_maximize_similarity_features() {
    check(|rng| {
        let (a, _) = table_pair(rng, 2);
        // Pairing a table with itself: every *similarity* feature on a
        // non-null attribute is at its identity value.
        let generator = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &a);
        let names = generator.feature_names();
        for i in 0..a.len() {
            let row = generator.generate_row(&a, &a, RecordPair::new(i, i));
            for (name, v) in names.iter().zip(&row) {
                if v.is_nan() {
                    continue;
                }
                if name.ends_with("lev_dist") {
                    assert_eq!(*v, 0.0, "{} on self-pair", name);
                } else if name.ends_with("exact_match")
                    || name.ends_with("jaro")
                    || name.ends_with("jaro_winkler")
                    || name.ends_with("lev_sim")
                    || name.contains("jaccard")
                    || name.contains("cosine")
                    || name.contains("dice")
                    || name.contains("overlap")
                    || name.ends_with("abs_norm")
                {
                    assert!((*v - 1.0).abs() < 1e-9, "{} = {} on self-pair", name, v);
                }
            }
        }
    });
}

#[test]
fn autoem_feature_count_formula() {
    check(|rng| {
        let n_attrs = rng.random_range(1..6usize);
        let attr_types: Vec<AttrType> = (0..n_attrs)
            .map(|_| match rng.random_range(0..6usize) {
                0 => AttrType::Boolean,
                1 => AttrType::Numeric,
                2 => AttrType::SingleWordString,
                3 => AttrType::ShortString,
                4 => AttrType::MediumString,
                _ => AttrType::LongString,
            })
            .collect();
        let names: Vec<String> = (0..attr_types.len()).map(|i| format!("a{i}")).collect();
        let schema = Schema::new(names);
        let generator = FeatureGenerator::plan(FeatureScheme::AutoMlEm, &schema, &attr_types);
        let expected: usize = attr_types
            .iter()
            .map(|t| match t {
                AttrType::Boolean => 1,
                AttrType::Numeric => 4,
                _ => 16,
            })
            .sum();
        assert_eq!(generator.n_features(), expected);
        // Magellan never generates more than AutoML-EM.
        let magellan = FeatureGenerator::plan(FeatureScheme::Magellan, &schema, &attr_types);
        assert!(magellan.n_features() <= generator.n_features());
    });
}

#[test]
fn every_space_sample_decodes_and_fits() {
    check(|rng| {
        // Any configuration the richest space can produce must decode into
        // a pipeline that trains on a tiny dataset without panicking.
        let sample_seed = rng.random_range(0..300u64);
        let space = build_space(SpaceOptions {
            model_space: ModelSpace::AllModels,
            ..SpaceOptions::default()
        });
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let config = space.sample(&mut rng);
        let pipeline = decode_configuration(&config, sample_seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let c = i % 2;
            let noise = ((i * 7) % 13) as f64 / 13.0;
            let missing = if i % 5 == 0 { f64::NAN } else { noise };
            rows.push(vec![c as f64 + 0.05 * noise, noise, missing]);
            y.push(c);
        }
        let x = em_ml::Matrix::from_rows(&rows);
        let fitted = pipeline.fit(&x, &y);
        let pred = fitted.predict(&x);
        assert_eq!(pred.len(), 24);
        let f1 = fitted.f1(&x, &y);
        assert!((0.0..=1.0).contains(&f1));
    });
}
