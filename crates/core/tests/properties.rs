//! Property tests for the AutoML-EM core: feature-generation invariants,
//! pipeline totality over the whole search space, and decode robustness.

use automl_em::{
    build_space, decode_configuration, FeatureGenerator, FeatureScheme, ModelSpace, SpaceOptions,
};
use em_table::{AttrType, RecordPair, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random cell values including nulls (boxed so row strategies are Clone).
fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        2 => proptest::string::string_regex("[a-z]{1,8}( [a-z]{1,8}){0,3}")
            .unwrap()
            .prop_map(Value::Text),
        1 => (-1000.0f64..1000.0).prop_map(Value::Number),
        1 => any::<bool>().prop_map(Value::Bool),
        1 => Just(Value::Null),
    ]
    .boxed()
}

/// A pair of single-schema tables with 1-6 rows each.
fn table_pair(cols: usize) -> impl Strategy<Value = (Table, Table)> {
    let rows = || {
        proptest::collection::vec(
            proptest::collection::vec(value_strategy(), cols..=cols),
            1..6,
        )
    };
    (rows(), rows()).prop_map(move |(ra, rb)| {
        let names: Vec<String> = (0..cols).map(|i| format!("attr{i}")).collect();
        let mut a = Table::new(Schema::new(names.clone()));
        let mut b = Table::new(Schema::new(names));
        for r in ra {
            a.push_row(r).unwrap();
        }
        for r in rb {
            b.push_row(r).unwrap();
        }
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feature_generation_is_total_and_shape_correct((a, b) in table_pair(3)) {
        for scheme in [FeatureScheme::Magellan, FeatureScheme::AutoMlEm] {
            let generator = FeatureGenerator::plan_for_tables(scheme, &a, &b);
            let pairs: Vec<RecordPair> = (0..a.len())
                .flat_map(|i| (0..b.len()).map(move |j| RecordPair::new(i, j)))
                .collect();
            let x = generator.generate(&a, &b, &pairs);
            prop_assert_eq!(x.nrows(), pairs.len());
            prop_assert_eq!(x.ncols(), generator.n_features());
            // Every cell is finite or NaN — never infinite (raw NW scores
            // are bounded by string lengths).
            for v in x.as_slice() {
                prop_assert!(v.is_nan() || v.is_finite());
            }
        }
    }

    #[test]
    fn identical_records_maximize_similarity_features((a, _) in table_pair(2)) {
        // Pairing a table with itself: every *similarity* feature on a
        // non-null attribute is at its identity value.
        let generator = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &a);
        let names = generator.feature_names();
        for i in 0..a.len() {
            let row = generator.generate_row(&a, &a, RecordPair::new(i, i));
            for (name, v) in names.iter().zip(&row) {
                if v.is_nan() {
                    continue;
                }
                if name.ends_with("lev_dist") {
                    prop_assert_eq!(*v, 0.0, "{} on self-pair", name);
                } else if name.ends_with("exact_match")
                    || name.ends_with("jaro")
                    || name.ends_with("jaro_winkler")
                    || name.ends_with("lev_sim")
                    || name.contains("jaccard")
                    || name.contains("cosine")
                    || name.contains("dice")
                    || name.contains("overlap")
                    || name.ends_with("abs_norm")
                {
                    prop_assert!((*v - 1.0).abs() < 1e-9, "{} = {} on self-pair", name, v);
                }
            }
        }
    }

    #[test]
    fn autoem_feature_count_formula(types in proptest::collection::vec(0usize..6, 1..6)) {
        let attr_types: Vec<AttrType> = types
            .iter()
            .map(|&t| match t {
                0 => AttrType::Boolean,
                1 => AttrType::Numeric,
                2 => AttrType::SingleWordString,
                3 => AttrType::ShortString,
                4 => AttrType::MediumString,
                _ => AttrType::LongString,
            })
            .collect();
        let names: Vec<String> = (0..attr_types.len()).map(|i| format!("a{i}")).collect();
        let schema = Schema::new(names);
        let generator = FeatureGenerator::plan(FeatureScheme::AutoMlEm, &schema, &attr_types);
        let expected: usize = attr_types
            .iter()
            .map(|t| match t {
                AttrType::Boolean => 1,
                AttrType::Numeric => 4,
                _ => 16,
            })
            .sum();
        prop_assert_eq!(generator.n_features(), expected);
        // Magellan never generates more than AutoML-EM.
        let magellan = FeatureGenerator::plan(FeatureScheme::Magellan, &schema, &attr_types);
        prop_assert!(magellan.n_features() <= generator.n_features());
    }

    #[test]
    fn every_space_sample_decodes_and_fits(sample_seed in 0u64..300) {
        // Any configuration the richest space can produce must decode into
        // a pipeline that trains on a tiny dataset without panicking.
        let space = build_space(SpaceOptions {
            model_space: ModelSpace::AllModels,
            ..SpaceOptions::default()
        });
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let config = space.sample(&mut rng);
        let pipeline = decode_configuration(&config, sample_seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let c = i % 2;
            let noise = ((i * 7) % 13) as f64 / 13.0;
            let missing = if i % 5 == 0 { f64::NAN } else { noise };
            rows.push(vec![c as f64 + 0.05 * noise, noise, missing]);
            y.push(c);
        }
        let x = em_ml::Matrix::from_rows(&rows);
        let fitted = pipeline.fit(&x, &y);
        let pred = fitted.predict(&x);
        prop_assert_eq!(pred.len(), 24);
        let f1 = fitted.f1(&x, &y);
        prop_assert!((0.0..=1.0).contains(&f1));
    }
}
