//! Property tests for the feature cache: over randomly generated table
//! pairs (unicode values, nulls, mixed types), the cached path must produce
//! a matrix bit-identical to the uncached `&str` path, for both feature
//! schemes — and `PreparedDataset::prepare` must honor `EM_FEATCACHE`.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use automl_em::{FeatureCache, FeatureGenerator, FeatureScheme, PreparedDataset};
use em_ml::Matrix;
use em_rt::StdRng;
use em_table::{parse_csv, RecordPair, Table};
use std::sync::{Mutex, MutexGuard};

const CASES: u64 = 48;

/// Tests here may mutate the process environment, so they must not
/// interleave.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0xfea7_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// A CSV-safe cell value: unicode-bearing strings (no commas/quotes), a
/// small shared vocabulary so values repeat across rows and tables (the
/// memo's bread and butter), numbers, booleans, and empty (null) cells.
fn random_cell(rng: &mut StdRng) -> String {
    const WORDS: &[&str] = &[
        "café",
        "münchen",
        "東京",
        "acme corp",
        "blue",
        "blüe",
        "widget",
        "λ calc",
        "no 9",
    ];
    match rng.random_range(0..10u32) {
        0 => String::new(), // null
        1 => format!("{}", rng.random_range(-50..50i64)),
        2 => format!("{:.2}", rng.random_range(0..1000u32) as f64 / 7.0),
        3 => (if rng.random_range(0..2u32) == 0 {
            "true"
        } else {
            "false"
        })
        .to_string(),
        _ => {
            let n = rng.random_range(1..=3usize);
            (0..n)
                .map(|_| WORDS[rng.random_range(0..WORDS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        }
    }
}

/// A random table with `rows` rows over a fixed 3-column header.
fn random_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut csv = String::from("name,detail,extra\n");
    for _ in 0..rows {
        for c in 0..3 {
            if c > 0 {
                csv.push(',');
            }
            csv.push_str(&random_cell(rng));
        }
        csv.push('\n');
    }
    parse_csv(&csv).expect("generated CSV parses")
}

fn bitwise_eq(a: &Matrix, b: &Matrix) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn cached_featurization_bit_identical_to_uncached() {
    check(|rng| {
        let rows_a = rng.random_range(1..=10usize);
        let a = random_table(rng, rows_a);
        let rows_b = rng.random_range(1..=10usize);
        let b = random_table(rng, rows_b);
        let pairs: Vec<RecordPair> = (0..a.len())
            .flat_map(|i| (0..b.len()).map(move |j| RecordPair::new(i, j)))
            .collect();
        for scheme in [FeatureScheme::Magellan, FeatureScheme::AutoMlEm] {
            let g = FeatureGenerator::plan_for_tables(scheme, &a, &b);
            let uncached = g.generate(&a, &b, &pairs);
            let mut cache = FeatureCache::new(g, &a, &b);
            bitwise_eq(&uncached, &cache.generate(&a, &b, &pairs));
            // Warm-memo repeat stays identical.
            bitwise_eq(&uncached, &cache.generate(&a, &b, &pairs));
        }
    });
}

/// Sustained serving workload: the catalog side is fixed, `rebind_left`
/// swings in a fresh mostly-unique query batch each round, and the memo
/// cap must (a) actually bound the memo via epoch eviction, (b) count its
/// evictions, and (c) never change a single output bit.
#[test]
fn memo_cap_evicts_epochs_under_sustained_rebinds() {
    let _guard = serialize();
    const CAP: usize = 500;
    const BATCHES: usize = 60;
    const CATALOG_ROWS: usize = 24;
    const QUERY_ROWS: usize = 12;

    let mut rng = StdRng::seed_from_u64(0x005E_51CE);
    let catalog = random_table(&mut rng, CATALOG_ROWS);
    let queries_of = |batch: usize| {
        let mut csv = String::from("name,detail,extra\n");
        for i in 0..QUERY_ROWS {
            // Mostly-unique values (every batch mints new ones) with a
            // repeating tail so some memo entries are re-touched and
            // survive into later epochs.
            csv.push_str(&format!(
                "query {batch} row {i} café,detail {} batch {batch},shared extra {}\n",
                i % 3,
                i % 4
            ));
        }
        parse_csv(&csv).unwrap()
    };
    let pairs: Vec<RecordPair> = (0..QUERY_ROWS)
        .flat_map(|i| {
            (0..CATALOG_ROWS)
                .step_by(3)
                .map(move |j| RecordPair::new(i, j))
        })
        .collect();

    // Evictions only count while tracing is enabled.
    let trace =
        std::env::temp_dir().join(format!("em-featcache-evict-{}.jsonl", std::process::id()));
    em_obs::set_mode(em_obs::TraceMode::File(
        trace.to_string_lossy().into_owned(),
    ));
    let evictions_before = FeatureCache::evictions();

    let g = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &queries_of(0), &catalog);
    let mut cache = FeatureCache::new(g.clone(), &queries_of(0), &catalog);
    cache.set_memo_cap(Some(CAP));
    let mut peak_memo = 0usize;
    for batch in 0..BATCHES {
        let q = queries_of(batch);
        cache.rebind_left(&q);
        let cached = cache.generate(&q, &catalog, &pairs);
        peak_memo = peak_memo.max(cache.memo_len());
        // The current batch's own entries are never evicted, so the memo
        // may overshoot the cap by at most one batch's worth of pairs.
        assert!(
            cache.memo_len() <= CAP + pairs.len() * catalog.schema().len(),
            "batch {batch}: memo {} far above cap {CAP}",
            cache.memo_len()
        );
        // Eviction must never change output: spot-check against the
        // uncached path every few batches (it is the expensive side).
        if batch % 9 == 0 || batch == BATCHES - 1 {
            bitwise_eq(&g.generate(&q, &catalog, &pairs), &cached);
        }
    }
    let evicted = FeatureCache::evictions() - evictions_before;
    em_obs::set_mode(em_obs::TraceMode::Off);
    let _ = std::fs::remove_file(&trace);

    assert!(peak_memo > 0, "memo never populated");
    assert!(
        evicted > 0,
        "sustained unique-value batches never triggered epoch eviction"
    );

    // Control: with no cap the same workload grows the memo past CAP —
    // i.e. the bound above is the cap's doing, not workload shrinkage.
    let mut unbounded = FeatureCache::new(g, &queries_of(0), &catalog);
    for batch in 0..BATCHES {
        let q = queries_of(batch);
        unbounded.rebind_left(&q);
        unbounded.generate(&q, &catalog, &pairs);
    }
    assert!(
        unbounded.memo_len() > CAP,
        "workload too small to exercise the cap: {}",
        unbounded.memo_len()
    );
}

#[test]
fn prepare_respects_em_featcache_env() {
    let _guard = serialize();
    let saved = std::env::var("EM_FEATCACHE").ok();
    let ds = em_data::Benchmark::FodorsZagats.generate_scaled(3, 0.2);

    std::env::set_var("EM_FEATCACHE", "off");
    assert!(!automl_em::featcache::enabled());
    let off = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 7);

    std::env::remove_var("EM_FEATCACHE");
    assert!(automl_em::featcache::enabled());
    let on = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 7);

    match saved {
        Some(v) => std::env::set_var("EM_FEATCACHE", v),
        None => std::env::remove_var("EM_FEATCACHE"),
    }
    // Cache on or off, the prepared features are bit-identical.
    bitwise_eq(&off.features, &on.features);
    assert_eq!(off.labels, on.labels);
}
