//! Feature-vector generation from record pairs — the paper's §III-B.
//!
//! Two schemes are implemented exactly as the paper tabulates them:
//!
//! * [`FeatureScheme::Magellan`] (Table I): similarity functions chosen by
//!   the attribute's fine-grained type (single-word / 1-to-5-word /
//!   5-to-10-word / long string / numeric / boolean), Magellan's pre-defined
//!   heuristic rules.
//! * [`FeatureScheme::AutoMlEm`] (Table II): *every* string similarity
//!   function for every string attribute regardless of length — "generate as
//!   many features as possible and delegate feature processing to AutoML".
//!
//! For the paper's running example (attributes typed single-word,
//! single-word, long, long) Magellan yields 6+6+2+2 = 14 features while
//! AutoML-EM yields 16×4 = 64, matching §III-B.

use em_ml::Matrix;
use em_table::{AttrType, RecordPair, Schema, Table, Value};
use em_text::{BooleanSimilarity, NumericSimilarity, StringSimilarity, Tokenizer};

/// Which feature-generation rules to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureScheme {
    /// Magellan's type-dependent rules (paper Table I).
    Magellan,
    /// AutoML-EM's exhaustive rules (paper Table II).
    AutoMlEm,
}

/// How one feature is computed: which attribute, which measure.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureKind {
    /// A string-to-string similarity.
    String(StringSimilarity),
    /// A number-to-number similarity.
    Numeric(NumericSimilarity),
    /// A boolean similarity.
    Bool(BooleanSimilarity),
}

/// One planned feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSpec {
    /// Attribute position in the shared schema.
    pub attr_index: usize,
    /// Attribute name (for display; `Name_jaccard_space` style).
    pub attr_name: String,
    /// Similarity measure applied.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// Feature name in the `attr_measure` convention the paper's Figure 2
    /// shows (`Name_Space_Jaccard` ≈ `name_jaccard_space`).
    pub fn name(&self) -> String {
        let suffix = match &self.kind {
            FeatureKind::String(s) => s.name(),
            FeatureKind::Numeric(n) => n.name().to_owned(),
            FeatureKind::Bool(b) => b.name().to_owned(),
        };
        format!("{}_{}", self.attr_name, suffix)
    }
}

/// The full set of string similarity functions of Table II (16 rows).
pub fn all_string_similarities() -> Vec<StringSimilarity> {
    use StringSimilarity::*;
    vec![
        LevenshteinDistance,
        LevenshteinSimilarity,
        Jaro,
        ExactMatch,
        JaroWinkler,
        NeedlemanWunsch,
        SmithWaterman,
        MongeElkan,
        OverlapCoefficient(Tokenizer::Whitespace),
        Dice(Tokenizer::Whitespace),
        Cosine(Tokenizer::Whitespace),
        Jaccard(Tokenizer::Whitespace),
        OverlapCoefficient(Tokenizer::QGram(3)),
        Dice(Tokenizer::QGram(3)),
        Cosine(Tokenizer::QGram(3)),
        Jaccard(Tokenizer::QGram(3)),
    ]
}

/// Magellan's similarity functions for a fine-grained type (Table I).
pub fn magellan_string_similarities(t: AttrType) -> Vec<StringSimilarity> {
    use StringSimilarity::*;
    match t {
        AttrType::SingleWordString => vec![
            LevenshteinDistance,
            LevenshteinSimilarity,
            Jaro,
            ExactMatch,
            JaroWinkler,
            Jaccard(Tokenizer::QGram(3)),
        ],
        AttrType::ShortString => vec![
            LevenshteinDistance,
            LevenshteinSimilarity,
            NeedlemanWunsch,
            SmithWaterman,
            MongeElkan,
            Cosine(Tokenizer::Whitespace),
            Jaccard(Tokenizer::Whitespace),
            Jaccard(Tokenizer::QGram(3)),
        ],
        AttrType::MediumString => vec![
            LevenshteinDistance,
            LevenshteinSimilarity,
            MongeElkan,
            Cosine(Tokenizer::Whitespace),
            Jaccard(Tokenizer::QGram(3)),
        ],
        AttrType::LongString => vec![Cosine(Tokenizer::Whitespace), Jaccard(Tokenizer::QGram(3))],
        AttrType::Numeric | AttrType::Boolean => Vec::new(),
    }
}

/// The numeric similarity functions (identical in both tables).
pub fn numeric_similarities() -> Vec<NumericSimilarity> {
    vec![
        NumericSimilarity::LevenshteinDistance,
        NumericSimilarity::LevenshteinSimilarity,
        NumericSimilarity::ExactMatch,
        NumericSimilarity::AbsoluteNorm,
    ]
}

/// A planned feature generator for a specific schema + inferred types.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureGenerator {
    scheme: FeatureScheme,
    specs: Vec<FeatureSpec>,
}

impl FeatureGenerator {
    /// Plan the features for the given attribute types under `scheme`.
    pub fn plan(scheme: FeatureScheme, schema: &Schema, types: &[AttrType]) -> Self {
        assert_eq!(schema.len(), types.len(), "types must cover the schema");
        let mut specs = Vec::new();
        for (i, (attr, &t)) in schema.iter().zip(types).enumerate() {
            let push_strings = |specs: &mut Vec<FeatureSpec>, sims: Vec<StringSimilarity>| {
                for s in sims {
                    specs.push(FeatureSpec {
                        attr_index: i,
                        attr_name: attr.name.clone(),
                        kind: FeatureKind::String(s),
                    });
                }
            };
            match t {
                AttrType::Boolean => specs.push(FeatureSpec {
                    attr_index: i,
                    attr_name: attr.name.clone(),
                    kind: FeatureKind::Bool(BooleanSimilarity::ExactMatch),
                }),
                AttrType::Numeric => {
                    for n in numeric_similarities() {
                        specs.push(FeatureSpec {
                            attr_index: i,
                            attr_name: attr.name.clone(),
                            kind: FeatureKind::Numeric(n),
                        });
                    }
                }
                string_type => match scheme {
                    FeatureScheme::Magellan => {
                        push_strings(&mut specs, magellan_string_similarities(string_type));
                    }
                    FeatureScheme::AutoMlEm => {
                        push_strings(&mut specs, all_string_similarities());
                    }
                },
            }
        }
        FeatureGenerator { scheme, specs }
    }

    /// Infer types from the table pair and plan (the usual entry point).
    pub fn plan_for_tables(scheme: FeatureScheme, a: &Table, b: &Table) -> Self {
        let types = em_table::infer_pair_types(a, b);
        Self::plan(scheme, a.schema(), &types)
    }

    /// Build a generator over an explicit spec list instead of a planned
    /// scheme battery. Used by `em-weak` to evaluate exactly the similarity
    /// columns its labeling functions reference (deduplicated by the caller)
    /// through the same cached kernels as regular feature generation.
    pub fn from_specs(scheme: FeatureScheme, specs: Vec<FeatureSpec>) -> Self {
        FeatureGenerator { scheme, specs }
    }

    /// The scheme this generator was planned with.
    pub fn scheme(&self) -> FeatureScheme {
        self.scheme
    }

    /// Number of features per pair.
    pub fn n_features(&self) -> usize {
        self.specs.len()
    }

    /// The planned features.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// Feature names in column order.
    pub fn feature_names(&self) -> Vec<String> {
        self.specs.iter().map(FeatureSpec::name).collect()
    }

    /// Compute the feature vector of a single record pair. Missing values
    /// on either side produce NaN (imputed later in the pipeline).
    pub fn generate_row(&self, a: &Table, b: &Table, pair: RecordPair) -> Vec<f64> {
        let ra = a.record(pair.left);
        let rb = b.record(pair.right);
        self.specs
            .iter()
            .map(|spec| {
                let va = ra.get(spec.attr_index);
                let vb = rb.get(spec.attr_index);
                compute_feature(&spec.kind, va, vb)
            })
            .collect()
    }

    /// Compute the feature matrix for a batch of pairs, in parallel on the
    /// shared `em-rt` worker pool ([`Self::generate_with_jobs`] with the
    /// pool's default thread count).
    pub fn generate(&self, a: &Table, b: &Table, pairs: &[RecordPair]) -> Matrix {
        self.generate_with_jobs(a, b, pairs, 0)
    }

    /// [`Self::generate`] with an explicit worker cap (0 = the pool's
    /// [`em_rt::threads`] count). Each worker steals chunks of pair indices
    /// off a shared counter and writes its rows directly into the disjoint
    /// row slices of the output matrix — no lock, no intermediate per-chunk
    /// buffers. Row `r` depends only on `pairs[r]`, so the result is
    /// bit-identical for every `jobs` value.
    pub fn generate_with_jobs(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[RecordPair],
        jobs: usize,
    ) -> Matrix {
        let _span = em_obs::span!("featuregen.generate");
        let n = pairs.len();
        let d = self.specs.len();
        let mut out = Matrix::zeros(n, d);
        if n == 0 || d == 0 {
            return out;
        }
        let jobs = if n < 64 { 1 } else { jobs };
        let writer = em_rt::SliceWriter::new(out.as_mut_slice());
        em_rt::parallel_for(n, jobs, |r| {
            // Safety: each row index is handed out exactly once, and row
            // slices `[r * d, (r + 1) * d)` are pairwise disjoint.
            let row = unsafe { writer.slice_mut(r * d, d) };
            let ra = a.record(pairs[r].left);
            let rb = b.record(pairs[r].right);
            for (value, spec) in row.iter_mut().zip(&self.specs) {
                *value =
                    compute_feature(&spec.kind, ra.get(spec.attr_index), rb.get(spec.attr_index));
            }
        });
        out
    }

    /// Bind this generator to a table pair as a [`crate::FeatureCache`]:
    /// value profiles are precomputed once and attribute-level similarity
    /// vectors are memoized across [`crate::FeatureCache::generate`] calls.
    /// Output is bit-identical to [`Self::generate`]; this `&str`-based
    /// generator remains the thin uncached path.
    pub fn cached(&self, a: &Table, b: &Table) -> crate::FeatureCache {
        crate::FeatureCache::new(self.clone(), a, b)
    }
}

/// Evaluate one feature, propagating missing values as NaN. Shared with
/// the cached path (`featcache`), which uses it for the non-string kinds.
pub(crate) fn compute_feature(kind: &FeatureKind, va: &Value, vb: &Value) -> f64 {
    match kind {
        FeatureKind::String(sim) => match (va.to_display_string(), vb.to_display_string()) {
            (Some(a), Some(b)) => sim.apply(&a, &b),
            _ => f64::NAN,
        },
        FeatureKind::Numeric(sim) => match (va.as_number(), vb.as_number()) {
            (Some(a), Some(b)) => sim.apply(a, b),
            _ => f64::NAN,
        },
        FeatureKind::Bool(sim) => match (va.as_bool(), vb.as_bool()) {
            (Some(a), Some(b)) => sim.apply(a, b),
            _ => f64::NAN,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_table::parse_csv;

    fn paper_example_types() -> Vec<AttrType> {
        vec![
            AttrType::SingleWordString,
            AttrType::SingleWordString,
            AttrType::LongString,
            AttrType::LongString,
        ]
    }

    #[test]
    fn paper_feature_counts_match_section_iii_b() {
        let schema = em_table::Schema::new(["a", "b", "c", "d"]);
        let magellan =
            FeatureGenerator::plan(FeatureScheme::Magellan, &schema, &paper_example_types());
        assert_eq!(magellan.n_features(), 6 + 6 + 2 + 2);
        let autoem =
            FeatureGenerator::plan(FeatureScheme::AutoMlEm, &schema, &paper_example_types());
        assert_eq!(autoem.n_features(), 16 * 4);
    }

    #[test]
    fn table_i_counts_per_type() {
        assert_eq!(
            magellan_string_similarities(AttrType::SingleWordString).len(),
            6
        );
        assert_eq!(magellan_string_similarities(AttrType::ShortString).len(), 8);
        assert_eq!(
            magellan_string_similarities(AttrType::MediumString).len(),
            5
        );
        assert_eq!(magellan_string_similarities(AttrType::LongString).len(), 2);
        assert_eq!(all_string_similarities().len(), 16);
        assert_eq!(numeric_similarities().len(), 4);
    }

    #[test]
    fn numeric_and_bool_features() {
        let schema = em_table::Schema::new(["price", "in_stock"]);
        let types = vec![AttrType::Numeric, AttrType::Boolean];
        for scheme in [FeatureScheme::Magellan, FeatureScheme::AutoMlEm] {
            let g = FeatureGenerator::plan(scheme, &schema, &types);
            assert_eq!(g.n_features(), 4 + 1);
        }
    }

    #[test]
    fn feature_names_are_descriptive_and_unique() {
        let schema = em_table::Schema::new(["name", "city"]);
        let types = vec![AttrType::ShortString, AttrType::SingleWordString];
        let g = FeatureGenerator::plan(FeatureScheme::AutoMlEm, &schema, &types);
        let names = g.feature_names();
        assert!(names.contains(&"name_jaccard_space".to_string()));
        assert!(names.contains(&"city_jaro_winkler".to_string()));
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn generate_produces_expected_values() {
        let a = parse_csv("name\nnew york\n").unwrap();
        let b = parse_csv("name\nnew york city\n").unwrap();
        let g = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &b);
        let x = g.generate(&a, &b, &[RecordPair::new(0, 0)]);
        let names = g.feature_names();
        let jix = names
            .iter()
            .position(|n| n == "name_jaccard_space")
            .unwrap();
        assert!((x.get(0, jix) - 2.0 / 3.0).abs() < 1e-12);
        let eix = names.iter().position(|n| n == "name_exact_match").unwrap();
        assert_eq!(x.get(0, eix), 0.0);
    }

    #[test]
    fn missing_values_become_nan() {
        let a = parse_csv("name,price\nwidget,10\n").unwrap();
        let b = parse_csv("name,price\n,12\n").unwrap();
        let g = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &b);
        let x = g.generate(&a, &b, &[RecordPair::new(0, 0)]);
        // All name features NaN, price features present.
        for (j, name) in g.feature_names().iter().enumerate() {
            if name.starts_with("name_") {
                assert!(x.get(0, j).is_nan(), "{name}");
            } else {
                assert!(!x.get(0, j).is_nan(), "{name}");
            }
        }
    }

    #[test]
    fn parallel_and_serial_generation_agree() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(0, 0.3);
        let g =
            FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
        let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
        let batch = g.generate(&ds.table_a, &ds.table_b, &pairs);
        for (r, &p) in pairs.iter().enumerate().step_by(17) {
            let row = g.generate_row(&ds.table_a, &ds.table_b, p);
            for (j, v) in row.iter().enumerate() {
                let got = batch.get(r, j);
                assert!((got == *v) || (got.is_nan() && v.is_nan()));
            }
        }
    }

    #[test]
    fn autoem_generates_strict_superset_of_magellan_for_strings() {
        let schema = em_table::Schema::new(["x"]);
        for t in [
            AttrType::SingleWordString,
            AttrType::ShortString,
            AttrType::MediumString,
            AttrType::LongString,
        ] {
            let m = FeatureGenerator::plan(FeatureScheme::Magellan, &schema, &[t]);
            let a = FeatureGenerator::plan(FeatureScheme::AutoMlEm, &schema, &[t]);
            assert!(a.n_features() >= m.n_features());
            for spec in m.specs() {
                assert!(
                    a.specs().contains(spec),
                    "AutoML-EM missing {spec:?} for {t:?}"
                );
            }
        }
    }
}
