//! AutoML-EM-Active — the paper's Algorithm 1: hybrid active learning +
//! self-training on top of a random-forest labeler.
//!
//! Each iteration trains a random forest on the labeled pool, scores every
//! unlabeled pair by *tree agreement* (the Figure 7 confidence), sends the
//! `ac_batch` least-confident pairs to the human oracle, trusts the machine
//! labels of the `st_batch` most-confident pairs (preserving the initial
//! class ratio α to avoid concept drift, §IV Remarks), and retrains.
//! Setting `st_batch = 0` recovers plain active learning (the paper's
//! "AC + AutoML-EM" baseline).

use crate::oracle::Oracle;
use em_ml::preprocess::{ImputeStrategy, SimpleImputer};
use em_ml::{Classifier, ForestParams, Matrix, RandomForestClassifier};
use em_rt::SliceRandom;
use em_rt::StdRng;

/// How per-pair confidence is computed from the committee of trees —
/// the paper uses tree-agreement (Figure 7); the alternatives implement its
/// §VII future-work suggestions (maximum margin, query by committee).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStrategy {
    /// Fraction of trees agreeing with the majority vote (paper default).
    VoteFraction,
    /// Maximum margin: `|p(match) - p(non-match)|` from the averaged
    /// probabilities.
    ProbabilityMargin,
    /// `1 - H(p) / log2(k)` over the averaged class probabilities. For
    /// binary problems this ranks identically to `ProbabilityMargin` (the
    /// entropy is monotone in the margin); it differs for multi-class use.
    Entropy,
}

/// Configuration of an AutoML-EM-Active run (the knobs of §V-D1).
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Initial random training-set size (`init` in Figures 13-15).
    pub init_size: usize,
    /// Human labels per iteration (`ac_batch`; the only human cost).
    pub ac_batch: usize,
    /// Machine labels per iteration (`st_batch`; 0 = plain active learning).
    pub st_batch: usize,
    /// Number of iterations (the paper runs 20).
    pub iterations: usize,
    /// Forest used as the iteration labeler.
    pub forest: ForestParams,
    /// Preserve the initial positive rate α among machine labels
    /// (§IV Remark 2).
    pub preserve_class_ratio: bool,
    /// Confidence measure driving both batch selections.
    pub strategy: QueryStrategy,
    /// Seed for the initial sample.
    pub seed: u64,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        ActiveConfig {
            init_size: 100,
            ac_batch: 20,
            st_batch: 200,
            iterations: 20,
            forest: ForestParams {
                n_estimators: 50,
                ..ForestParams::default()
            },
            preserve_class_ratio: true,
            strategy: QueryStrategy::VoteFraction,
            seed: 0,
        }
    }
}

/// The labeled pool an active run accumulates.
#[derive(Debug, Clone, Default)]
pub struct LabeledSet {
    /// Pool indices of the labeled pairs, in acquisition order.
    pub indices: Vec<usize>,
    /// The labels used for training (human labels are gold; machine labels
    /// are model predictions and may be wrong).
    pub labels: Vec<usize>,
    /// Whether each label came from the human oracle.
    pub human: Vec<bool>,
}

impl LabeledSet {
    fn push(&mut self, index: usize, label: usize, human: bool) {
        self.indices.push(index);
        self.labels.push(label);
        self.human.push(human);
    }

    /// Number of labeled items.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of human-provided labels.
    pub fn human_count(&self) -> usize {
        self.human.iter().filter(|&&h| h).count()
    }

    /// Number of machine-inferred labels.
    pub fn machine_count(&self) -> usize {
        self.len() - self.human_count()
    }
}

/// Per-iteration bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Cumulative human labels after this iteration.
    pub human_labels: usize,
    /// Cumulative machine labels after this iteration.
    pub machine_labels: usize,
    /// Mean confidence of the pairs sent to the human (low by design).
    pub mean_ac_confidence: f64,
    /// Mean confidence of the self-trained pairs (high by design).
    pub mean_st_confidence: f64,
}

/// Result of an active run.
#[derive(Debug, Clone)]
pub struct ActiveRunResult {
    /// The accumulated labeled pool.
    pub labeled: LabeledSet,
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

/// The Algorithm-1 driver.
#[derive(Debug, Clone, Default)]
pub struct AutoMlEmActive {
    /// Run configuration.
    pub config: ActiveConfig,
}

impl AutoMlEmActive {
    /// Create a driver.
    pub fn new(config: ActiveConfig) -> Self {
        AutoMlEmActive { config }
    }

    /// Run Algorithm 1 over a feature pool. `x_pool` rows are the unlabeled
    /// candidate pairs (NaN cells allowed; a mean imputer fitted on the pool
    /// cleans them). The oracle supplies human labels on demand.
    pub fn run(&self, x_pool: &Matrix, oracle: &mut dyn Oracle) -> ActiveRunResult {
        let n = x_pool.nrows();
        let cfg = &self.config;
        assert!(cfg.init_size >= 2, "need at least 2 initial labels");
        assert!(n > cfg.init_size, "pool smaller than the initial sample");
        let (_, x) = SimpleImputer::fit_transform(ImputeStrategy::Mean, x_pool);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut unlabeled: Vec<usize> = (0..n).collect();
        unlabeled.shuffle(&mut rng);
        let mut labeled = LabeledSet::default();
        // Line 1-3: initial random sample labeled by the human.
        for _ in 0..cfg.init_size.min(n) {
            let idx = unlabeled.pop().expect("pool nonempty");
            let y = usize::from(oracle.label(idx));
            labeled.push(idx, y, true);
        }
        // α: positive rate of the initial training data (§IV Remark 2).
        let alpha =
            labeled.labels.iter().filter(|&&y| y == 1).count() as f64 / labeled.len().max(1) as f64;
        let mut iterations = Vec::new();
        for it in 0..cfg.iterations {
            if unlabeled.is_empty() {
                break;
            }
            let _iter_span = em_obs::span!("active.iteration");
            // Line 4/12: (re)train the model on the current labels.
            let xt = x.select_rows(&labeled.indices);
            let has_both = labeled.labels.contains(&0) && labeled.labels.contains(&1);
            if !has_both {
                // Degenerate: the initial sample caught a single class; ask
                // the human about random pairs until both classes appear.
                let idx = unlabeled.pop().expect("pool nonempty");
                let y = usize::from(oracle.label(idx));
                labeled.push(idx, y, true);
                continue;
            }
            let mut forest = RandomForestClassifier::new(ForestParams {
                seed: cfg.forest.seed.wrapping_add(it as u64),
                ..cfg.forest.clone()
            });
            forest.fit(&xt, &labeled.labels, 2, None);
            // Line 6: confidence of every unlabeled pair.
            let xu = x.select_rows(&unlabeled);
            let confidence = confidence_scores(&forest, &xu, cfg.strategy);
            let predictions = forest.predict(&xu);
            // Line 7-8: lowest-confidence pairs go to the human.
            let mut order: Vec<usize> = (0..unlabeled.len()).collect();
            order.sort_by(|&a, &b| {
                confidence[a]
                    .partial_cmp(&confidence[b])
                    .unwrap()
                    .then(unlabeled[a].cmp(&unlabeled[b]))
            });
            let ac_take = cfg.ac_batch.min(order.len());
            let ac_local: Vec<usize> = order[..ac_take].to_vec();
            let mean_ac_confidence = mean_of(&ac_local, &confidence);
            // Line 9: highest-confidence pairs get machine labels, with the
            // α class-ratio preserved among them.
            let st_candidates: Vec<usize> = order[ac_take..].to_vec();
            let st_local =
                self.pick_self_training(&st_candidates, &confidence, &predictions, alpha);
            let mean_st_confidence = mean_of(&st_local, &confidence);
            // Lines 10-11: commit the batches and shrink U.
            let mut remove: Vec<usize> = Vec::with_capacity(ac_local.len() + st_local.len());
            for &li in &ac_local {
                let idx = unlabeled[li];
                let y = usize::from(oracle.label(idx));
                labeled.push(idx, y, true);
                remove.push(li);
            }
            for &li in &st_local {
                let idx = unlabeled[li];
                labeled.push(idx, predictions[li], false);
                remove.push(li);
            }
            remove.sort_unstable_by(|a, b| b.cmp(a));
            for li in remove {
                unlabeled.swap_remove(li);
            }
            em_obs::event("active.query", || {
                vec![
                    ("iteration", em_rt::Json::from(it)),
                    ("batch", em_rt::Json::from(ac_local.len())),
                    ("mean_confidence", em_rt::Json::from(mean_ac_confidence)),
                ]
            });
            em_obs::event("active.selftrain", || {
                vec![
                    ("iteration", em_rt::Json::from(it)),
                    ("batch", em_rt::Json::from(st_local.len())),
                    ("mean_confidence", em_rt::Json::from(mean_st_confidence)),
                ]
            });
            iterations.push(IterationStats {
                iteration: it,
                human_labels: labeled.human_count(),
                machine_labels: labeled.machine_count(),
                mean_ac_confidence,
                mean_st_confidence,
            });
        }
        ActiveRunResult {
            labeled,
            iterations,
        }
    }

    /// Select the self-training batch from `candidates` (local indices,
    /// ascending by confidence): take the most confident predicted-positives
    /// and predicted-negatives in the α : (1-α) proportion.
    fn pick_self_training(
        &self,
        candidates: &[usize],
        confidence: &[f64],
        predictions: &[usize],
        alpha: f64,
    ) -> Vec<usize> {
        let st = self.config.st_batch;
        if st == 0 || candidates.is_empty() {
            return Vec::new();
        }
        if !self.config.preserve_class_ratio {
            let mut best: Vec<usize> = candidates.to_vec();
            best.sort_by(|&a, &b| confidence[b].partial_cmp(&confidence[a]).unwrap());
            best.truncate(st);
            return best;
        }
        let want_pos = ((alpha * st as f64).round() as usize).min(st);
        let want_neg = st - want_pos;
        let mut pos: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&li| predictions[li] == 1)
            .collect();
        let mut neg: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&li| predictions[li] == 0)
            .collect();
        pos.sort_by(|&a, &b| confidence[b].partial_cmp(&confidence[a]).unwrap());
        neg.sort_by(|&a, &b| confidence[b].partial_cmp(&confidence[a]).unwrap());
        let mut out: Vec<usize> = Vec::with_capacity(st);
        out.extend(pos.into_iter().take(want_pos));
        out.extend(neg.into_iter().take(want_neg));
        out
    }
}

/// Per-sample confidence under the chosen strategy (higher = more certain).
fn confidence_scores(
    forest: &RandomForestClassifier,
    x: &Matrix,
    strategy: QueryStrategy,
) -> Vec<f64> {
    match strategy {
        QueryStrategy::VoteFraction => forest.vote_fraction(x),
        QueryStrategy::ProbabilityMargin => {
            let p = forest.predict_proba(x);
            (0..p.nrows())
                .map(|r| (p.get(r, 1) - p.get(r, 0)).abs())
                .collect()
        }
        QueryStrategy::Entropy => {
            let p = forest.predict_proba(x);
            let k = p.ncols() as f64;
            (0..p.nrows())
                .map(|r| {
                    let mut h = 0.0;
                    for c in 0..p.ncols() {
                        let v = p.get(r, c);
                        if v > 0.0 {
                            h -= v * v.log2();
                        }
                    }
                    1.0 - h / k.log2()
                })
                .collect()
        }
    }
}

fn mean_of(local: &[usize], values: &[f64]) -> f64 {
    if local.is_empty() {
        return f64::NAN;
    }
    local.iter().map(|&i| values[i]).sum::<f64>() / local.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;

    /// Overlapping two-cluster pool with gold labels.
    fn pool(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 4 == 0; // 25% positives, like EM data
            let center = if c { 1.0 } else { 0.0 };
            rows.push(vec![
                center + rng.random_range(-0.45..0.45),
                center + rng.random_range(-0.45..0.45),
            ]);
            y.push(usize::from(c));
        }
        (Matrix::from_rows(&rows), y)
    }

    fn quick_config(st_batch: usize) -> ActiveConfig {
        ActiveConfig {
            init_size: 30,
            ac_batch: 5,
            st_batch,
            iterations: 5,
            forest: ForestParams {
                n_estimators: 15,
                ..ForestParams::default()
            },
            preserve_class_ratio: true,
            strategy: QueryStrategy::VoteFraction,
            seed: 0,
        }
    }

    #[test]
    fn human_label_count_is_init_plus_iterations_times_batch() {
        let (x, y) = pool(500, 0);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let result = AutoMlEmActive::new(quick_config(0)).run(&x, &mut oracle);
        assert_eq!(result.labeled.human_count(), 30 + 5 * 5);
        assert_eq!(oracle.queries(), 30 + 5 * 5);
        assert_eq!(result.labeled.machine_count(), 0);
    }

    #[test]
    fn self_training_adds_machine_labels_without_human_cost() {
        let (x, y) = pool(500, 1);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let result = AutoMlEmActive::new(quick_config(20)).run(&x, &mut oracle);
        assert_eq!(result.labeled.human_count(), 30 + 5 * 5);
        assert_eq!(oracle.queries(), 30 + 5 * 5, "self-training must be free");
        assert!(result.labeled.machine_count() > 0);
        assert!(result.labeled.machine_count() <= 5 * 20);
    }

    #[test]
    fn labeled_indices_are_unique() {
        let (x, y) = pool(400, 2);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let result = AutoMlEmActive::new(quick_config(30)).run(&x, &mut oracle);
        let mut idx = result.labeled.indices.clone();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), result.labeled.len());
    }

    #[test]
    fn ac_picks_low_confidence_st_picks_high_confidence() {
        let (x, y) = pool(600, 3);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let result = AutoMlEmActive::new(quick_config(40)).run(&x, &mut oracle);
        for stats in &result.iterations {
            if !stats.mean_st_confidence.is_nan() {
                assert!(
                    stats.mean_st_confidence >= stats.mean_ac_confidence,
                    "iteration {}: st {} < ac {}",
                    stats.iteration,
                    stats.mean_st_confidence,
                    stats.mean_ac_confidence
                );
            }
        }
    }

    #[test]
    fn machine_labels_are_mostly_correct_on_easy_data() {
        let (x, y) = pool(600, 4);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let result = AutoMlEmActive::new(quick_config(30)).run(&x, &mut oracle);
        let mut correct = 0;
        let mut total = 0;
        for ((idx, label), human) in result
            .labeled
            .indices
            .iter()
            .zip(&result.labeled.labels)
            .zip(&result.labeled.human)
        {
            if !human {
                total += 1;
                if *label == y[*idx] {
                    correct += 1;
                }
            }
        }
        assert!(total > 0);
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "machine-label accuracy {acc}");
    }

    #[test]
    fn class_ratio_is_roughly_preserved() {
        let (x, y) = pool(800, 5);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let cfg = ActiveConfig {
            init_size: 100,
            st_batch: 40,
            iterations: 5,
            ..quick_config(40)
        };
        let result = AutoMlEmActive::new(cfg).run(&x, &mut oracle);
        let machine_pos = result
            .labeled
            .labels
            .iter()
            .zip(&result.labeled.human)
            .filter(|(&l, &h)| !h && l == 1)
            .count();
        let machine_total = result.labeled.machine_count();
        let ratio = machine_pos as f64 / machine_total.max(1) as f64;
        // Pool is 25% positive; the preserved ratio should be in a broad
        // band around that (predictions may run short of one class).
        assert!(
            (0.05..=0.5).contains(&ratio),
            "machine positive rate {ratio}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let (x, y) = pool(300, 6);
        let mut o1 = GroundTruthOracle::from_classes(&y);
        let mut o2 = GroundTruthOracle::from_classes(&y);
        let a = AutoMlEmActive::new(quick_config(10)).run(&x, &mut o1);
        let b = AutoMlEmActive::new(quick_config(10)).run(&x, &mut o2);
        assert_eq!(a.labeled.indices, b.labeled.indices);
        assert_eq!(a.labeled.labels, b.labeled.labels);
    }

    #[test]
    fn all_query_strategies_run_and_pick_uncertain_pairs() {
        let (x, y) = pool(500, 8);
        for strategy in [
            QueryStrategy::VoteFraction,
            QueryStrategy::ProbabilityMargin,
            QueryStrategy::Entropy,
        ] {
            let mut oracle = GroundTruthOracle::from_classes(&y);
            let cfg = ActiveConfig {
                strategy,
                ..quick_config(20)
            };
            let result = AutoMlEmActive::new(cfg).run(&x, &mut oracle);
            assert_eq!(result.labeled.human_count(), 30 + 5 * 5, "{strategy:?}");
            for stats in &result.iterations {
                if !stats.mean_st_confidence.is_nan() {
                    assert!(
                        stats.mean_st_confidence >= stats.mean_ac_confidence,
                        "{strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn strategies_produce_different_query_orders() {
        // Heavily overlapping clusters: confidences vary continuously, so
        // the hard-vote and soft-probability orderings must diverge.
        let mut rng = StdRng::seed_from_u64(9);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..500 {
            let c = i % 4 == 0;
            let center = if c { 0.3 } else { 0.0 };
            rows.push(vec![
                center + rng.random_range(-0.5..0.5),
                center + rng.random_range(-0.5..0.5),
            ]);
            y.push(usize::from(c));
        }
        let x = Matrix::from_rows(&rows);
        // Fully grown trees have pure leaves, making soft probabilities a
        // monotone transform of hard votes (identical rankings); impure
        // leaves (min_samples_leaf > 1) are where the strategies diverge.
        let run = |strategy| {
            let mut oracle = GroundTruthOracle::from_classes(&y);
            let cfg = ActiveConfig {
                strategy,
                forest: ForestParams {
                    n_estimators: 15,
                    min_samples_leaf: 8,
                    ..ForestParams::default()
                },
                ..quick_config(0)
            };
            AutoMlEmActive::new(cfg)
                .run(&x, &mut oracle)
                .labeled
                .indices
        };
        let vf = run(QueryStrategy::VoteFraction);
        let pm = run(QueryStrategy::ProbabilityMargin);
        // The initial sample is identical; the queried tails should differ
        // between the hard-vote and soft-probability views.
        assert_eq!(vf[..30], pm[..30]);
        assert_ne!(vf, pm);
    }

    #[test]
    #[should_panic(expected = "pool smaller")]
    fn tiny_pool_rejected() {
        let (x, y) = pool(20, 7);
        let mut oracle = GroundTruthOracle::from_classes(&y);
        let _ = AutoMlEmActive::new(quick_config(0)).run(&x, &mut oracle);
    }
}
