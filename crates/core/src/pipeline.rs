//! The EM model pipeline (paper Figures 5 and 11): balancing → imputation →
//! rescaling → feature preprocessing → classifier, represented as plain data
//! so incumbents can be printed, ablated (Figure 12), and replayed.

use em_automl::Configuration;
use em_ml::decomp::{FeatureAgglomeration, Pca};
use em_ml::featsel::{
    select_percentile, select_rates, variance_threshold, FittedSelector, RateMode, ScoreFunc,
};
use em_ml::jsonio;
use em_ml::preprocess::{
    sample_weights, BalancingStrategy, FittedScaler, ImputeStrategy, ScalerKind, SimpleImputer,
};
use em_ml::{
    AdaBoostClassifier, AdaBoostParams, Classifier, Criterion, DecisionTree, ExtraTreesClassifier,
    ForestParams, GaussianNb, GaussianNbParams, GradientBoostingClassifier, GradientBoostingParams,
    KNeighborsClassifier, KnnParams, KnnWeights, LinearSvm, LinearSvmParams, LogisticRegression,
    LogisticRegressionParams, Matrix, MaxFeatures, RandomForestClassifier, TreeParams,
};
use em_rt::Json;

/// Feature-preprocessing component choice (paper Fig. 4 middle column).
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessorChoice {
    /// `no_preprocessing`.
    None,
    /// `SelectPercentile(score_func, percentile)` — Figure 3b's knob.
    SelectPercentile {
        /// Scoring function.
        score: ScoreFunc,
        /// Percentage of features kept (0-100).
        percentile: f64,
    },
    /// `SelectRates(score_func, mode, alpha)` — the Figure 5 pipeline.
    SelectRates {
        /// Scoring function.
        score: ScoreFunc,
        /// Error-rate control mode.
        mode: RateMode,
        /// Significance level.
        alpha: f64,
    },
    /// Drop near-constant features.
    VarianceThreshold {
        /// Variance cutoff.
        threshold: f64,
    },
    /// Project onto principal components.
    Pca {
        /// Fraction of input dimensions kept (0-1].
        components_fraction: f64,
    },
    /// Pool correlated features.
    FeatureAgglomeration {
        /// Fraction of input dimensions kept as clusters (0-1].
        clusters_fraction: f64,
    },
}

/// Classifier choice plus hyperparameters (paper Fig. 4 right column).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierChoice {
    /// Random forest (the AutoML-EM default model space, §III-C).
    RandomForest {
        /// Trees in the forest.
        n_estimators: usize,
        /// Split criterion.
        criterion: Criterion,
        /// Fraction of features per split (Figure 3a's knob).
        max_features: f64,
        /// Minimum samples to split.
        min_samples_split: usize,
        /// Minimum samples per leaf.
        min_samples_leaf: usize,
        /// Bootstrap resampling.
        bootstrap: bool,
    },
    /// Extra-trees.
    ExtraTrees {
        /// Trees in the ensemble.
        n_estimators: usize,
        /// Split criterion.
        criterion: Criterion,
        /// Fraction of features per split.
        max_features: f64,
        /// Minimum samples per leaf.
        min_samples_leaf: usize,
    },
    /// Single CART decision tree.
    DecisionTree {
        /// Split criterion.
        criterion: Criterion,
        /// Depth cap.
        max_depth: usize,
        /// Minimum samples to split.
        min_samples_split: usize,
        /// Minimum samples per leaf.
        min_samples_leaf: usize,
    },
    /// AdaBoost-SAMME.
    AdaBoost {
        /// Boosting rounds.
        n_estimators: usize,
        /// Stage shrinkage.
        learning_rate: f64,
        /// Weak-learner depth.
        max_depth: usize,
    },
    /// Gradient-boosted trees.
    GradientBoosting {
        /// Boosting rounds.
        n_estimators: usize,
        /// Shrinkage.
        learning_rate: f64,
        /// Tree depth.
        max_depth: usize,
        /// Minimum samples per leaf.
        min_samples_leaf: usize,
        /// Row subsampling per round.
        subsample: f64,
    },
    /// Logistic regression.
    LogisticRegression {
        /// L2 strength.
        alpha: f64,
    },
    /// Linear SVM (Pegasos).
    LinearSvm {
        /// Regularization λ.
        lambda: f64,
    },
    /// k-nearest neighbors.
    Knn {
        /// Neighbor count.
        k: usize,
        /// Vote weighting.
        weights: KnnWeights,
    },
    /// Gaussian naive Bayes.
    GaussianNb {
        /// Variance smoothing.
        var_smoothing: f64,
    },
}

/// A complete, declarative pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EmPipelineConfig {
    /// Class balancing (data preprocessing).
    pub balancing: BalancingStrategy,
    /// Missing-value imputation (data preprocessing; always on because EM
    /// feature vectors contain NaN by construction).
    pub imputation: ImputeStrategy,
    /// Rescaling (data preprocessing).
    pub rescaling: ScalerKind,
    /// Feature preprocessing.
    pub preprocessor: PreprocessorChoice,
    /// The model.
    pub classifier: ClassifierChoice,
    /// Seed forwarded to stochastic components.
    pub seed: u64,
}

impl EmPipelineConfig {
    /// The paper's "Magellan default" baseline: no balancing, mean
    /// imputation, no rescaling, no feature preprocessing, default random
    /// forest — what a user gets from Magellan without manual tuning.
    pub fn default_random_forest(seed: u64) -> Self {
        EmPipelineConfig {
            balancing: BalancingStrategy::None,
            imputation: ImputeStrategy::Mean,
            rescaling: ScalerKind::None,
            preprocessor: PreprocessorChoice::None,
            classifier: ClassifierChoice::RandomForest {
                n_estimators: 100,
                criterion: Criterion::Gini,
                max_features: 0.0, // 0 encodes sklearn's "sqrt" default
                min_samples_split: 2,
                min_samples_leaf: 1,
                bootstrap: true,
            },
            seed,
        }
    }

    /// Figure 12 ablation: disable the data-preprocessing module
    /// (balancing and rescaling off; imputation must stay or NaN would
    /// crash every model, mirroring auto-sklearn which always imputes).
    pub fn without_data_preprocessing(&self) -> Self {
        EmPipelineConfig {
            balancing: BalancingStrategy::None,
            rescaling: ScalerKind::None,
            ..self.clone()
        }
    }

    /// Figure 12 ablation: disable the feature-preprocessing module.
    pub fn without_feature_preprocessing(&self) -> Self {
        EmPipelineConfig {
            preprocessor: PreprocessorChoice::None,
            ..self.clone()
        }
    }

    /// Mean F1 over a stratified k-fold cross-validation — a more stable
    /// alternative to the paper's single hold-out for comparing pipelines on
    /// small datasets.
    pub fn cross_val_f1(&self, x: &Matrix, y: &[usize], k: usize, seed: u64) -> f64 {
        self.cross_val_f1_with_jobs(x, y, k, seed, 0)
    }

    /// [`cross_val_f1`] with an explicit `em-rt` job cap (0 = full pool).
    ///
    /// Folds are independent pool tasks; each fold's score lands in its own
    /// slot and the slots are summed in fold order, so the result is
    /// bit-identical to the serial loop for any `jobs`.
    pub fn cross_val_f1_with_jobs(
        &self,
        x: &Matrix,
        y: &[usize],
        k: usize,
        seed: u64,
        jobs: usize,
    ) -> f64 {
        let _span = em_obs::span!("pipeline.cross_val");
        let folds = em_ml::stratified_k_fold(y, k, seed);
        let mut scores = vec![0.0f64; folds.len()];
        {
            let writer = em_rt::SliceWriter::new(&mut scores);
            em_rt::parallel_for_chunked(folds.len(), jobs, 1, |f| {
                let (train_idx, test_idx) = &folds[f];
                let xt = x.select_rows(train_idx);
                let yt: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();
                let xs = x.select_rows(test_idx);
                let ys: Vec<usize> = test_idx.iter().map(|&i| y[i]).collect();
                let f1 = self.fit(&xt, &yt).f1(&xs, &ys);
                em_obs::event("cv.fold", || {
                    vec![
                        ("fold", em_rt::Json::from(f)),
                        ("f1", em_rt::Json::from(f1)),
                    ]
                });
                // Safety: each fold index is handed out exactly once, and
                // the one-element slots are pairwise disjoint.
                unsafe { writer.slice_mut(f, 1)[0] = f1 };
            });
        }
        scores.iter().sum::<f64>() / folds.len() as f64
    }

    /// Fit the pipeline on training data: impute → scale → select/project →
    /// balance → train. Returns the fitted pipeline.
    pub fn fit(&self, x: &Matrix, y: &[usize]) -> FittedEmPipeline {
        self.fit_weighted(x, y, None)
    }

    /// Fit with optional external per-sample weights (e.g. probabilistic
    /// label confidences from `em-weak`'s label model). External weights are
    /// multiplied into the balancing-derived weights, so class balancing and
    /// label confidence compose; `None` is exactly [`Self::fit`].
    pub fn fit_weighted(
        &self,
        x: &Matrix,
        y: &[usize],
        sample_weight: Option<&[f64]>,
    ) -> FittedEmPipeline {
        let _span = em_obs::span!("pipeline.fit");
        let n_classes = 2;
        let (imputer, x1) = {
            let _s = em_obs::span!("pipeline.impute");
            SimpleImputer::fit_transform(self.imputation, x)
        };
        let (scaler, x2) = {
            let _s = em_obs::span!("pipeline.scale");
            FittedScaler::fit_transform(self.rescaling, &x1)
        };
        let (transform, x3) = {
            let _s = em_obs::span!("pipeline.preprocess");
            fit_preprocessor(&self.preprocessor, &x2, y, n_classes)
        };
        let mut weights = sample_weights(self.balancing, y, n_classes);
        if let Some(w) = sample_weight {
            assert_eq!(w.len(), y.len(), "sample_weight must cover every row");
            for (wi, &ext) in weights.iter_mut().zip(w) {
                *wi *= ext;
            }
        }
        let mut model = build_classifier(&self.classifier, self.seed);
        {
            let _s = em_obs::span!("pipeline.classifier_fit");
            model.fit(&x3, y, n_classes, Some(&weights));
        }
        FittedEmPipeline {
            config: self.clone(),
            imputer,
            scaler,
            transform,
            model,
        }
    }
}

/// A fitted feature-preprocessing stage.
#[derive(Debug, Clone)]
pub enum FittedTransform {
    /// Identity.
    None,
    /// Column-subset selector.
    Select(FittedSelector),
    /// PCA projection.
    Pca(Pca),
    /// Feature pooling.
    Agglomeration(FeatureAgglomeration),
}

impl FittedTransform {
    fn apply(&self, x: &Matrix) -> Matrix {
        match self {
            FittedTransform::None => x.clone(),
            FittedTransform::Select(s) => s.transform(x),
            FittedTransform::Pca(p) => p.transform(x),
            FittedTransform::Agglomeration(a) => a.transform(x),
        }
    }

    /// Output dimensionality given `d` input features (diagnostics).
    pub fn output_width(&self, d: usize) -> usize {
        match self {
            FittedTransform::None => d,
            FittedTransform::Select(s) => s.selected().len(),
            FittedTransform::Pca(p) => p.n_components(),
            FittedTransform::Agglomeration(a) => a.n_clusters(),
        }
    }
}

fn fit_preprocessor(
    choice: &PreprocessorChoice,
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
) -> (FittedTransform, Matrix) {
    match choice {
        PreprocessorChoice::None => (FittedTransform::None, x.clone()),
        PreprocessorChoice::SelectPercentile { score, percentile } => {
            let sel = select_percentile(x, y, n_classes, *score, *percentile);
            let out = sel.transform(x);
            (FittedTransform::Select(sel), out)
        }
        PreprocessorChoice::SelectRates { score, mode, alpha } => {
            let sel = select_rates(x, y, n_classes, *score, *mode, *alpha);
            let out = sel.transform(x);
            (FittedTransform::Select(sel), out)
        }
        PreprocessorChoice::VarianceThreshold { threshold } => {
            let sel = variance_threshold(x, *threshold);
            let out = sel.transform(x);
            (FittedTransform::Select(sel), out)
        }
        PreprocessorChoice::Pca {
            components_fraction,
        } => {
            let k = ((x.ncols() as f64 * components_fraction).round() as usize).clamp(1, x.ncols());
            let pca = Pca::fit(x, k);
            let out = pca.transform(x);
            (FittedTransform::Pca(pca), out)
        }
        PreprocessorChoice::FeatureAgglomeration { clusters_fraction } => {
            let k = ((x.ncols() as f64 * clusters_fraction).round() as usize).clamp(1, x.ncols());
            let fa = FeatureAgglomeration::fit(x, k);
            let out = fa.transform(x);
            (FittedTransform::Agglomeration(fa), out)
        }
    }
}

fn build_classifier(choice: &ClassifierChoice, seed: u64) -> Box<dyn Classifier> {
    match choice {
        ClassifierChoice::RandomForest {
            n_estimators,
            criterion,
            max_features,
            min_samples_split,
            min_samples_leaf,
            bootstrap,
        } => Box::new(RandomForestClassifier::new(ForestParams {
            n_estimators: *n_estimators,
            criterion: *criterion,
            max_features: fraction_or_sqrt(*max_features),
            min_samples_split: *min_samples_split,
            min_samples_leaf: *min_samples_leaf,
            bootstrap: *bootstrap,
            seed,
            ..ForestParams::default()
        })),
        ClassifierChoice::ExtraTrees {
            n_estimators,
            criterion,
            max_features,
            min_samples_leaf,
        } => Box::new(ExtraTreesClassifier::new(ForestParams {
            n_estimators: *n_estimators,
            criterion: *criterion,
            max_features: fraction_or_sqrt(*max_features),
            min_samples_leaf: *min_samples_leaf,
            seed,
            ..ForestParams::default()
        })),
        ClassifierChoice::DecisionTree {
            criterion,
            max_depth,
            min_samples_split,
            min_samples_leaf,
        } => Box::new(SingleTreeClassifier::new(TreeParams {
            criterion: *criterion,
            max_depth: Some(*max_depth),
            min_samples_split: *min_samples_split,
            min_samples_leaf: *min_samples_leaf,
            seed,
            ..TreeParams::default()
        })),
        ClassifierChoice::AdaBoost {
            n_estimators,
            learning_rate,
            max_depth,
        } => Box::new(AdaBoostClassifier::new(AdaBoostParams {
            n_estimators: *n_estimators,
            learning_rate: *learning_rate,
            max_depth: *max_depth,
            seed,
            ..AdaBoostParams::default()
        })),
        ClassifierChoice::GradientBoosting {
            n_estimators,
            learning_rate,
            max_depth,
            min_samples_leaf,
            subsample,
        } => Box::new(GradientBoostingClassifier::new(GradientBoostingParams {
            n_estimators: *n_estimators,
            learning_rate: *learning_rate,
            max_depth: *max_depth,
            min_samples_leaf: *min_samples_leaf,
            subsample: *subsample,
            seed,
            ..GradientBoostingParams::default()
        })),
        ClassifierChoice::LogisticRegression { alpha } => {
            Box::new(LogisticRegression::new(LogisticRegressionParams {
                alpha: *alpha,
                ..LogisticRegressionParams::default()
            }))
        }
        ClassifierChoice::LinearSvm { lambda } => Box::new(LinearSvm::new(LinearSvmParams {
            lambda: *lambda,
            seed,
            ..LinearSvmParams::default()
        })),
        ClassifierChoice::Knn { k, weights } => Box::new(KNeighborsClassifier::new(KnnParams {
            k: *k,
            weights: *weights,
        })),
        ClassifierChoice::GaussianNb { var_smoothing } => {
            Box::new(GaussianNb::new(GaussianNbParams {
                var_smoothing: *var_smoothing,
            }))
        }
    }
}

/// A `max_features` of 0 encodes the sklearn "sqrt" default.
fn fraction_or_sqrt(f: f64) -> MaxFeatures {
    if f <= 0.0 {
        MaxFeatures::Sqrt
    } else {
        MaxFeatures::Fraction(f)
    }
}

/// Adapter making a single [`DecisionTree`] implement [`Classifier`].
#[derive(Debug, Clone)]
pub struct SingleTreeClassifier {
    params: TreeParams,
    tree: Option<DecisionTree>,
    n_classes: usize,
}

impl SingleTreeClassifier {
    /// Create an unfitted tree classifier.
    pub fn new(params: TreeParams) -> Self {
        SingleTreeClassifier {
            params,
            tree: None,
            n_classes: 0,
        }
    }
}

impl Classifier for SingleTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        self.n_classes = n_classes;
        self.tree = Some(DecisionTree::fit_classifier(
            x,
            y,
            n_classes,
            sample_weight,
            self.params.clone(),
        ));
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.tree
            .as_ref()
            .expect("fit before predicting")
            .predict_proba(x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.tree.as_ref().map(DecisionTree::feature_importances)
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl SingleTreeClassifier {
    /// Serialize the fitted tree classifier for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("params", self.params.to_json()),
            (
                "tree",
                match &self.tree {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
            ("n_classes", Json::from(self.n_classes)),
        ])
    }

    /// Inverse of [`SingleTreeClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let tree = match jsonio::field(j, "tree")? {
            Json::Null => None,
            t => Some(DecisionTree::from_json(t)?),
        };
        Ok(SingleTreeClassifier {
            params: TreeParams::from_json(jsonio::field(j, "params")?)?,
            tree,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

/// A fully fitted pipeline: transforms plus trained model.
pub struct FittedEmPipeline {
    /// The configuration that produced this pipeline.
    pub config: EmPipelineConfig,
    imputer: SimpleImputer,
    scaler: FittedScaler,
    transform: FittedTransform,
    model: Box<dyn Classifier>,
}

impl FittedEmPipeline {
    /// Transform raw features through the fitted preprocessing stages.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let x1 = self.imputer.transform(x);
        let x2 = self.scaler.transform(&x1);
        self.transform.apply(&x2)
    }

    /// Hard 0/1 predictions.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.model.predict(&self.transform(x))
    }

    /// Matching-probability per pair (class-1 probability).
    pub fn predict_match_proba(&self, x: &Matrix) -> Vec<f64> {
        let p = self.model.predict_proba(&self.transform(x));
        (0..p.nrows()).map(|r| p.get(r, 1)).collect()
    }

    /// Matching probability plus hard decision per pair, transforming `x`
    /// once. Decisions come from the model's own `predict` (not from
    /// thresholding the probability), so they are exactly
    /// [`Self::predict`]'s output — the serving path relies on that
    /// equality.
    pub fn predict_with_scores(&self, x: &Matrix) -> Vec<(f64, bool)> {
        let xt = self.transform(x);
        let proba = self.model.predict_proba(&xt);
        self.model
            .predict(&xt)
            .into_iter()
            .enumerate()
            .map(|(r, c)| (proba.get(r, 1), c == 1))
            .collect()
    }

    /// F1 on the positive class against gold labels.
    pub fn f1(&self, x: &Matrix, y: &[usize]) -> f64 {
        em_ml::f1_score(y, &self.predict(x))
    }

    /// Hard predictions at a custom decision threshold on the matching
    /// probability (the default `predict` uses 0.5 via argmax).
    pub fn predict_with_threshold(&self, x: &Matrix, threshold: f64) -> Vec<usize> {
        self.predict_match_proba(x)
            .into_iter()
            .map(|p| usize::from(p >= threshold))
            .collect()
    }

    /// Sweep candidate decision thresholds on a validation set and return
    /// `(best_threshold, best_f1)`. On EM's imbalanced data the F1-optimal
    /// threshold often sits below 0.5; this is a standard post-hoc
    /// calibration (opt-in — the paper's protocol, and this crate's
    /// defaults, use plain argmax).
    pub fn tune_threshold(&self, x_valid: &Matrix, y_valid: &[usize]) -> (f64, f64) {
        let probs = self.predict_match_proba(x_valid);
        // Candidate thresholds: midpoints between distinct sorted scores.
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        let mut best = (0.5, f64::NEG_INFINITY);
        let mut candidates = vec![0.5];
        candidates.extend(sorted.windows(2).map(|w| (w[0] + w[1]) / 2.0));
        for t in candidates {
            let pred: Vec<usize> = probs.iter().map(|&p| usize::from(p >= t)).collect();
            let f1 = em_ml::f1_score(y_valid, &pred);
            if f1 > best.1 {
                best = (t, f1);
            }
        }
        best
    }

    /// The fitted feature-preprocessing stage (diagnostics).
    pub fn fitted_transform(&self) -> &FittedTransform {
        &self.transform
    }

    /// The fitted model's native feature importances over its *input*
    /// features (post-transform), if it has any.
    pub fn model_feature_importances(&self) -> Option<Vec<f64>> {
        self.model.feature_importances()
    }
}

fn score_to_json(score: ScoreFunc) -> Json {
    Json::from(match score {
        ScoreFunc::FClassif => "f_classif",
        ScoreFunc::Chi2 => "chi2",
    })
}

fn score_from_json(j: &Json) -> Result<ScoreFunc, String> {
    match jsonio::as_str(j)? {
        "f_classif" => Ok(ScoreFunc::FClassif),
        "chi2" => Ok(ScoreFunc::Chi2),
        other => Err(format!("unknown score func {other:?}")),
    }
}

impl PreprocessorChoice {
    /// Serialize to the artifact encoding (a tagged object).
    pub fn to_json(&self) -> Json {
        match self {
            PreprocessorChoice::None => Json::obj([("choice", Json::from("none"))]),
            PreprocessorChoice::SelectPercentile { score, percentile } => Json::obj([
                ("choice", Json::from("select_percentile")),
                ("score", score_to_json(*score)),
                ("percentile", jsonio::num(*percentile)),
            ]),
            PreprocessorChoice::SelectRates { score, mode, alpha } => Json::obj([
                ("choice", Json::from("select_rates")),
                ("score", score_to_json(*score)),
                (
                    "mode",
                    Json::from(match mode {
                        RateMode::Fpr => "fpr",
                        RateMode::Fdr => "fdr",
                        RateMode::Fwe => "fwe",
                    }),
                ),
                ("alpha", jsonio::num(*alpha)),
            ]),
            PreprocessorChoice::VarianceThreshold { threshold } => Json::obj([
                ("choice", Json::from("variance_threshold")),
                ("threshold", jsonio::num(*threshold)),
            ]),
            PreprocessorChoice::Pca {
                components_fraction,
            } => Json::obj([
                ("choice", Json::from("pca")),
                ("components_fraction", jsonio::num(*components_fraction)),
            ]),
            PreprocessorChoice::FeatureAgglomeration { clusters_fraction } => Json::obj([
                ("choice", Json::from("feature_agglomeration")),
                ("clusters_fraction", jsonio::num(*clusters_fraction)),
            ]),
        }
    }

    /// Inverse of [`PreprocessorChoice::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        match jsonio::as_str(jsonio::field(j, "choice")?)? {
            "none" => Ok(PreprocessorChoice::None),
            "select_percentile" => Ok(PreprocessorChoice::SelectPercentile {
                score: score_from_json(jsonio::field(j, "score")?)?,
                percentile: jsonio::as_f64(jsonio::field(j, "percentile")?)?,
            }),
            "select_rates" => Ok(PreprocessorChoice::SelectRates {
                score: score_from_json(jsonio::field(j, "score")?)?,
                mode: match jsonio::as_str(jsonio::field(j, "mode")?)? {
                    "fpr" => RateMode::Fpr,
                    "fdr" => RateMode::Fdr,
                    "fwe" => RateMode::Fwe,
                    other => return Err(format!("unknown rate mode {other:?}")),
                },
                alpha: jsonio::as_f64(jsonio::field(j, "alpha")?)?,
            }),
            "variance_threshold" => Ok(PreprocessorChoice::VarianceThreshold {
                threshold: jsonio::as_f64(jsonio::field(j, "threshold")?)?,
            }),
            "pca" => Ok(PreprocessorChoice::Pca {
                components_fraction: jsonio::as_f64(jsonio::field(j, "components_fraction")?)?,
            }),
            "feature_agglomeration" => Ok(PreprocessorChoice::FeatureAgglomeration {
                clusters_fraction: jsonio::as_f64(jsonio::field(j, "clusters_fraction")?)?,
            }),
            other => Err(format!("unknown preprocessor choice {other:?}")),
        }
    }
}

impl ClassifierChoice {
    /// Serialize to the artifact encoding (a tagged object). The tag also
    /// selects which concrete model type `FittedEmPipeline::from_json`
    /// deserializes the stored weights into.
    pub fn to_json(&self) -> Json {
        match self {
            ClassifierChoice::RandomForest {
                n_estimators,
                criterion,
                max_features,
                min_samples_split,
                min_samples_leaf,
                bootstrap,
            } => Json::obj([
                ("choice", Json::from("random_forest")),
                ("n_estimators", Json::from(*n_estimators)),
                ("criterion", Json::from(criterion.as_str())),
                ("max_features", jsonio::num(*max_features)),
                ("min_samples_split", Json::from(*min_samples_split)),
                ("min_samples_leaf", Json::from(*min_samples_leaf)),
                ("bootstrap", Json::from(*bootstrap)),
            ]),
            ClassifierChoice::ExtraTrees {
                n_estimators,
                criterion,
                max_features,
                min_samples_leaf,
            } => Json::obj([
                ("choice", Json::from("extra_trees")),
                ("n_estimators", Json::from(*n_estimators)),
                ("criterion", Json::from(criterion.as_str())),
                ("max_features", jsonio::num(*max_features)),
                ("min_samples_leaf", Json::from(*min_samples_leaf)),
            ]),
            ClassifierChoice::DecisionTree {
                criterion,
                max_depth,
                min_samples_split,
                min_samples_leaf,
            } => Json::obj([
                ("choice", Json::from("decision_tree")),
                ("criterion", Json::from(criterion.as_str())),
                ("max_depth", Json::from(*max_depth)),
                ("min_samples_split", Json::from(*min_samples_split)),
                ("min_samples_leaf", Json::from(*min_samples_leaf)),
            ]),
            ClassifierChoice::AdaBoost {
                n_estimators,
                learning_rate,
                max_depth,
            } => Json::obj([
                ("choice", Json::from("adaboost")),
                ("n_estimators", Json::from(*n_estimators)),
                ("learning_rate", jsonio::num(*learning_rate)),
                ("max_depth", Json::from(*max_depth)),
            ]),
            ClassifierChoice::GradientBoosting {
                n_estimators,
                learning_rate,
                max_depth,
                min_samples_leaf,
                subsample,
            } => Json::obj([
                ("choice", Json::from("gradient_boosting")),
                ("n_estimators", Json::from(*n_estimators)),
                ("learning_rate", jsonio::num(*learning_rate)),
                ("max_depth", Json::from(*max_depth)),
                ("min_samples_leaf", Json::from(*min_samples_leaf)),
                ("subsample", jsonio::num(*subsample)),
            ]),
            ClassifierChoice::LogisticRegression { alpha } => Json::obj([
                ("choice", Json::from("logistic_regression")),
                ("alpha", jsonio::num(*alpha)),
            ]),
            ClassifierChoice::LinearSvm { lambda } => Json::obj([
                ("choice", Json::from("linear_svm")),
                ("lambda", jsonio::num(*lambda)),
            ]),
            ClassifierChoice::Knn { k, weights } => Json::obj([
                ("choice", Json::from("knn")),
                ("k", Json::from(*k)),
                (
                    "weights",
                    Json::from(match weights {
                        KnnWeights::Uniform => "uniform",
                        KnnWeights::Distance => "distance",
                    }),
                ),
            ]),
            ClassifierChoice::GaussianNb { var_smoothing } => Json::obj([
                ("choice", Json::from("gaussian_nb")),
                ("var_smoothing", jsonio::num(*var_smoothing)),
            ]),
        }
    }

    /// Inverse of [`ClassifierChoice::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let crit = |key: &str| -> Result<Criterion, String> {
            Criterion::parse(jsonio::as_str(jsonio::field(j, key)?)?)
        };
        match jsonio::as_str(jsonio::field(j, "choice")?)? {
            "random_forest" => Ok(ClassifierChoice::RandomForest {
                n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
                criterion: crit("criterion")?,
                max_features: jsonio::as_f64(jsonio::field(j, "max_features")?)?,
                min_samples_split: jsonio::as_usize(jsonio::field(j, "min_samples_split")?)?,
                min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
                bootstrap: jsonio::as_bool(jsonio::field(j, "bootstrap")?)?,
            }),
            "extra_trees" => Ok(ClassifierChoice::ExtraTrees {
                n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
                criterion: crit("criterion")?,
                max_features: jsonio::as_f64(jsonio::field(j, "max_features")?)?,
                min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
            }),
            "decision_tree" => Ok(ClassifierChoice::DecisionTree {
                criterion: crit("criterion")?,
                max_depth: jsonio::as_usize(jsonio::field(j, "max_depth")?)?,
                min_samples_split: jsonio::as_usize(jsonio::field(j, "min_samples_split")?)?,
                min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
            }),
            "adaboost" => Ok(ClassifierChoice::AdaBoost {
                n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
                learning_rate: jsonio::as_f64(jsonio::field(j, "learning_rate")?)?,
                max_depth: jsonio::as_usize(jsonio::field(j, "max_depth")?)?,
            }),
            "gradient_boosting" => Ok(ClassifierChoice::GradientBoosting {
                n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
                learning_rate: jsonio::as_f64(jsonio::field(j, "learning_rate")?)?,
                max_depth: jsonio::as_usize(jsonio::field(j, "max_depth")?)?,
                min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
                subsample: jsonio::as_f64(jsonio::field(j, "subsample")?)?,
            }),
            "logistic_regression" => Ok(ClassifierChoice::LogisticRegression {
                alpha: jsonio::as_f64(jsonio::field(j, "alpha")?)?,
            }),
            "linear_svm" => Ok(ClassifierChoice::LinearSvm {
                lambda: jsonio::as_f64(jsonio::field(j, "lambda")?)?,
            }),
            "knn" => Ok(ClassifierChoice::Knn {
                k: jsonio::as_usize(jsonio::field(j, "k")?)?,
                weights: match jsonio::as_str(jsonio::field(j, "weights")?)? {
                    "uniform" => KnnWeights::Uniform,
                    "distance" => KnnWeights::Distance,
                    other => return Err(format!("unknown knn weights {other:?}")),
                },
            }),
            "gaussian_nb" => Ok(ClassifierChoice::GaussianNb {
                var_smoothing: jsonio::as_f64(jsonio::field(j, "var_smoothing")?)?,
            }),
            other => Err(format!("unknown classifier choice {other:?}")),
        }
    }
}

impl EmPipelineConfig {
    /// Serialize the declarative configuration to the artifact encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "balancing",
                Json::from(match self.balancing {
                    BalancingStrategy::None => "none",
                    BalancingStrategy::Weighting => "weighting",
                }),
            ),
            ("imputation", self.imputation.to_json()),
            ("rescaling", self.rescaling.to_json()),
            ("preprocessor", self.preprocessor.to_json()),
            ("classifier", self.classifier.to_json()),
            ("seed", jsonio::u64_str(self.seed)),
        ])
    }

    /// Inverse of [`EmPipelineConfig::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(EmPipelineConfig {
            balancing: match jsonio::as_str(jsonio::field(j, "balancing")?)? {
                "none" => BalancingStrategy::None,
                "weighting" => BalancingStrategy::Weighting,
                other => return Err(format!("unknown balancing {other:?}")),
            },
            imputation: ImputeStrategy::from_json(jsonio::field(j, "imputation")?)?,
            rescaling: ScalerKind::from_json(jsonio::field(j, "rescaling")?)?,
            preprocessor: PreprocessorChoice::from_json(jsonio::field(j, "preprocessor")?)?,
            classifier: ClassifierChoice::from_json(jsonio::field(j, "classifier")?)?,
            seed: jsonio::as_u64(jsonio::field(j, "seed")?)?,
        })
    }
}

impl FittedTransform {
    /// Serialize the fitted stage to the artifact encoding.
    pub fn to_json(&self) -> Json {
        match self {
            FittedTransform::None => Json::obj([("kind", Json::from("none"))]),
            FittedTransform::Select(s) => {
                Json::obj([("kind", Json::from("select")), ("selector", s.to_json())])
            }
            FittedTransform::Pca(p) => {
                Json::obj([("kind", Json::from("pca")), ("pca", p.to_json())])
            }
            FittedTransform::Agglomeration(a) => Json::obj([
                ("kind", Json::from("agglomeration")),
                ("agglom", a.to_json()),
            ]),
        }
    }

    /// Inverse of [`FittedTransform::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        match jsonio::as_str(jsonio::field(j, "kind")?)? {
            "none" => Ok(FittedTransform::None),
            "select" => Ok(FittedTransform::Select(FittedSelector::from_json(
                jsonio::field(j, "selector")?,
            )?)),
            "pca" => Ok(FittedTransform::Pca(Pca::from_json(jsonio::field(
                j, "pca",
            )?)?)),
            "agglomeration" => Ok(FittedTransform::Agglomeration(
                FeatureAgglomeration::from_json(jsonio::field(j, "agglom")?)?,
            )),
            other => Err(format!("unknown transform kind {other:?}")),
        }
    }
}

/// Deserialize a fitted classifier, dispatching on the configuration's
/// classifier choice (the same 1:1 mapping [`build_classifier`] uses).
fn load_classifier(choice: &ClassifierChoice, j: &Json) -> Result<Box<dyn Classifier>, String> {
    Ok(match choice {
        ClassifierChoice::RandomForest { .. } => Box::new(RandomForestClassifier::from_json(j)?),
        ClassifierChoice::ExtraTrees { .. } => Box::new(ExtraTreesClassifier::from_json(j)?),
        ClassifierChoice::DecisionTree { .. } => Box::new(SingleTreeClassifier::from_json(j)?),
        ClassifierChoice::AdaBoost { .. } => Box::new(AdaBoostClassifier::from_json(j)?),
        ClassifierChoice::GradientBoosting { .. } => {
            Box::new(GradientBoostingClassifier::from_json(j)?)
        }
        ClassifierChoice::LogisticRegression { .. } => Box::new(LogisticRegression::from_json(j)?),
        ClassifierChoice::LinearSvm { .. } => Box::new(LinearSvm::from_json(j)?),
        ClassifierChoice::Knn { .. } => Box::new(KNeighborsClassifier::from_json(j)?),
        ClassifierChoice::GaussianNb { .. } => Box::new(GaussianNb::from_json(j)?),
    })
}

impl FittedEmPipeline {
    /// Serialize the complete fitted pipeline — configuration, fitted
    /// preprocessing stages, and model weights — for the `em-serve` model
    /// artifact. `from_json` reconstructs a pipeline whose `predict` is
    /// bit-identical to this one's.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.to_json()),
            ("imputer", self.imputer.to_json()),
            ("scaler", self.scaler.to_json()),
            ("transform", self.transform.to_json()),
            ("model", self.model.save_json()),
        ])
    }

    /// Inverse of [`FittedEmPipeline::to_json`]. The model weights are
    /// loaded into the concrete type named by the configuration's
    /// classifier choice.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let config = EmPipelineConfig::from_json(jsonio::field(j, "config")?)?;
        let model = load_classifier(&config.classifier, jsonio::field(j, "model")?)?;
        Ok(FittedEmPipeline {
            imputer: SimpleImputer::from_json(jsonio::field(j, "imputer")?)?,
            scaler: FittedScaler::from_json(jsonio::field(j, "scaler")?)?,
            transform: FittedTransform::from_json(jsonio::field(j, "transform")?)?,
            model,
            config,
        })
    }
}

/// Decode an `em-automl` [`Configuration`] (produced by the search space in
/// [`crate::space`]) into a pipeline configuration.
///
/// # Panics
/// On configurations that don't come from the AutoML-EM space — this is a
/// programming error, not user input.
pub fn decode_configuration(config: &Configuration, seed: u64) -> EmPipelineConfig {
    let balancing = match config.get_str("balancing:strategy").unwrap_or("none") {
        "weighting" => BalancingStrategy::Weighting,
        _ => BalancingStrategy::None,
    };
    let imputation = match config.get_str("imputation:strategy").unwrap_or("mean") {
        "median" => ImputeStrategy::Median,
        "most_frequent" => ImputeStrategy::MostFrequent,
        _ => ImputeStrategy::Mean,
    };
    let rescaling = match config.get_str("rescaling:__choice__").unwrap_or("none") {
        "standardize" => ScalerKind::Standard,
        "minmax" => ScalerKind::MinMax,
        "robust_scaler" => ScalerKind::Robust {
            q_min: config
                .get_float("rescaling:robust_scaler:q_min")
                .unwrap_or(0.25)
                * 100.0,
            q_max: config
                .get_float("rescaling:robust_scaler:q_max")
                .unwrap_or(0.75)
                * 100.0,
        },
        _ => ScalerKind::None,
    };
    let score_of = |s: Option<&str>| match s {
        Some("chi2") => ScoreFunc::Chi2,
        _ => ScoreFunc::FClassif,
    };
    let preprocessor = match config
        .get_str("preprocessor:__choice__")
        .unwrap_or("no_preprocessing")
    {
        "select_percentile_classification" => PreprocessorChoice::SelectPercentile {
            score: score_of(config.get_str("preprocessor:select_percentile:score_func")),
            percentile: config
                .get_float("preprocessor:select_percentile:percentile")
                .unwrap_or(50.0),
        },
        "select_rates" => PreprocessorChoice::SelectRates {
            score: score_of(config.get_str("preprocessor:select_rates:score_func")),
            mode: match config.get_str("preprocessor:select_rates:mode") {
                Some("fdr") => RateMode::Fdr,
                Some("fwe") => RateMode::Fwe,
                _ => RateMode::Fpr,
            },
            alpha: config
                .get_float("preprocessor:select_rates:alpha")
                .unwrap_or(0.1),
        },
        "variance_threshold" => PreprocessorChoice::VarianceThreshold {
            threshold: config
                .get_float("preprocessor:variance_threshold:threshold")
                .unwrap_or(0.0),
        },
        "pca" => PreprocessorChoice::Pca {
            components_fraction: config
                .get_float("preprocessor:pca:keep_fraction")
                .unwrap_or(0.9),
        },
        "feature_agglomeration" => PreprocessorChoice::FeatureAgglomeration {
            clusters_fraction: config
                .get_float("preprocessor:feature_agglomeration:cluster_fraction")
                .unwrap_or(0.5),
        },
        _ => PreprocessorChoice::None,
    };
    let criterion_of = |s: Option<&str>| match s {
        Some("entropy") => Criterion::Entropy,
        _ => Criterion::Gini,
    };
    let classifier = match config
        .get_str("classifier:__choice__")
        .expect("classifier choice missing")
    {
        "random_forest" => ClassifierChoice::RandomForest {
            n_estimators: 100,
            criterion: criterion_of(config.get_str("classifier:random_forest:criterion")),
            max_features: config
                .get_float("classifier:random_forest:max_features")
                .unwrap_or(0.5),
            min_samples_split: config
                .get_int("classifier:random_forest:min_samples_split")
                .unwrap_or(2) as usize,
            min_samples_leaf: config
                .get_int("classifier:random_forest:min_samples_leaf")
                .unwrap_or(1) as usize,
            bootstrap: config
                .get_str("classifier:random_forest:bootstrap")
                .unwrap_or("True")
                == "True",
        },
        "extra_trees" => ClassifierChoice::ExtraTrees {
            n_estimators: 100,
            criterion: criterion_of(config.get_str("classifier:extra_trees:criterion")),
            max_features: config
                .get_float("classifier:extra_trees:max_features")
                .unwrap_or(0.5),
            min_samples_leaf: config
                .get_int("classifier:extra_trees:min_samples_leaf")
                .unwrap_or(1) as usize,
        },
        "decision_tree" => ClassifierChoice::DecisionTree {
            criterion: criterion_of(config.get_str("classifier:decision_tree:criterion")),
            max_depth: config
                .get_int("classifier:decision_tree:max_depth")
                .unwrap_or(10) as usize,
            min_samples_split: config
                .get_int("classifier:decision_tree:min_samples_split")
                .unwrap_or(2) as usize,
            min_samples_leaf: config
                .get_int("classifier:decision_tree:min_samples_leaf")
                .unwrap_or(1) as usize,
        },
        "adaboost" => ClassifierChoice::AdaBoost {
            n_estimators: config
                .get_int("classifier:adaboost:n_estimators")
                .unwrap_or(50) as usize,
            learning_rate: config
                .get_float("classifier:adaboost:learning_rate")
                .unwrap_or(1.0),
            max_depth: config.get_int("classifier:adaboost:max_depth").unwrap_or(1) as usize,
        },
        "gradient_boosting" => ClassifierChoice::GradientBoosting {
            n_estimators: config
                .get_int("classifier:gradient_boosting:n_estimators")
                .unwrap_or(100) as usize,
            learning_rate: config
                .get_float("classifier:gradient_boosting:learning_rate")
                .unwrap_or(0.1),
            max_depth: config
                .get_int("classifier:gradient_boosting:max_depth")
                .unwrap_or(3) as usize,
            min_samples_leaf: config
                .get_int("classifier:gradient_boosting:min_samples_leaf")
                .unwrap_or(1) as usize,
            subsample: config
                .get_float("classifier:gradient_boosting:subsample")
                .unwrap_or(1.0),
        },
        "logistic_regression" => ClassifierChoice::LogisticRegression {
            alpha: config
                .get_float("classifier:logistic_regression:alpha")
                .unwrap_or(1e-4),
        },
        "linear_svm" => ClassifierChoice::LinearSvm {
            lambda: config
                .get_float("classifier:linear_svm:lambda")
                .unwrap_or(1e-3),
        },
        "k_nearest_neighbors" => ClassifierChoice::Knn {
            k: config
                .get_int("classifier:k_nearest_neighbors:k")
                .unwrap_or(5) as usize,
            weights: match config.get_str("classifier:k_nearest_neighbors:weights") {
                Some("distance") => KnnWeights::Distance,
                _ => KnnWeights::Uniform,
            },
        },
        "gaussian_nb" => ClassifierChoice::GaussianNb {
            var_smoothing: config
                .get_float("classifier:gaussian_nb:var_smoothing")
                .unwrap_or(1e-9),
        },
        other => panic!("unknown classifier choice {other}"),
    };
    EmPipelineConfig {
        balancing,
        imputation,
        rescaling,
        preprocessor,
        classifier,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let noise = ((i * 7) % 13) as f64 / 13.0;
            // informative, noisy, missing-prone, constant
            let missing = if i % 9 == 0 { f64::NAN } else { noise };
            rows.push(vec![c as f64 + 0.1 * noise, noise, missing, 1.0]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn default_pipeline_fits_and_predicts() {
        let (x, y) = toy_data();
        let p = EmPipelineConfig::default_random_forest(0).fit(&x, &y);
        assert!(p.f1(&x, &y) > 0.95);
        let probs = p.predict_match_proba(&x);
        assert!(probs.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn full_pipeline_with_every_stage() {
        let (x, y) = toy_data();
        let config = EmPipelineConfig {
            balancing: BalancingStrategy::Weighting,
            imputation: ImputeStrategy::Median,
            rescaling: ScalerKind::Robust {
                q_min: 25.0,
                q_max: 75.0,
            },
            preprocessor: PreprocessorChoice::SelectPercentile {
                score: ScoreFunc::FClassif,
                percentile: 60.0,
            },
            classifier: ClassifierChoice::RandomForest {
                n_estimators: 30,
                criterion: Criterion::Gini,
                max_features: 0.9,
                min_samples_split: 2,
                min_samples_leaf: 1,
                bootstrap: true,
            },
            seed: 1,
        };
        let p = config.fit(&x, &y);
        assert!(p.f1(&x, &y) > 0.9);
        // Feature preprocessing reduced the width.
        assert!(p.fitted_transform().output_width(4) < 4);
    }

    #[test]
    fn every_classifier_choice_trains() {
        let (x, y) = toy_data();
        let choices = vec![
            ClassifierChoice::RandomForest {
                n_estimators: 10,
                criterion: Criterion::Gini,
                max_features: 0.5,
                min_samples_split: 2,
                min_samples_leaf: 1,
                bootstrap: true,
            },
            ClassifierChoice::ExtraTrees {
                n_estimators: 10,
                criterion: Criterion::Entropy,
                max_features: 0.5,
                min_samples_leaf: 1,
            },
            ClassifierChoice::DecisionTree {
                criterion: Criterion::Gini,
                max_depth: 6,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
            ClassifierChoice::AdaBoost {
                n_estimators: 15,
                learning_rate: 1.0,
                max_depth: 1,
            },
            ClassifierChoice::GradientBoosting {
                n_estimators: 20,
                learning_rate: 0.2,
                max_depth: 3,
                min_samples_leaf: 1,
                subsample: 1.0,
            },
            ClassifierChoice::LogisticRegression { alpha: 1e-4 },
            ClassifierChoice::LinearSvm { lambda: 1e-3 },
            ClassifierChoice::Knn {
                k: 5,
                weights: KnnWeights::Uniform,
            },
            ClassifierChoice::GaussianNb {
                var_smoothing: 1e-9,
            },
        ];
        for c in choices {
            let config = EmPipelineConfig {
                classifier: c.clone(),
                ..EmPipelineConfig::default_random_forest(0)
            };
            let p = config.fit(&x, &y);
            let f1 = p.f1(&x, &y);
            assert!(f1 > 0.6, "{c:?} scored {f1}");
        }
    }

    #[test]
    fn cross_validation_scores_are_sane() {
        let (x, y) = toy_data();
        let config = EmPipelineConfig::default_random_forest(0);
        let cv = config.cross_val_f1(&x, &y, 5, 0);
        assert!((0.5..=1.0).contains(&cv), "cv F1 {cv}");
        // Deterministic.
        assert_eq!(cv, config.cross_val_f1(&x, &y, 5, 0));
    }

    #[test]
    fn ablations_strip_the_right_modules() {
        let config = EmPipelineConfig {
            balancing: BalancingStrategy::Weighting,
            rescaling: ScalerKind::Standard,
            preprocessor: PreprocessorChoice::VarianceThreshold { threshold: 0.0 },
            ..EmPipelineConfig::default_random_forest(0)
        };
        let no_dp = config.without_data_preprocessing();
        assert_eq!(no_dp.balancing, BalancingStrategy::None);
        assert_eq!(no_dp.rescaling, ScalerKind::None);
        assert_eq!(no_dp.preprocessor, config.preprocessor);
        let no_fp = config.without_feature_preprocessing();
        assert_eq!(no_fp.preprocessor, PreprocessorChoice::None);
        assert_eq!(no_fp.balancing, config.balancing);
    }

    #[test]
    fn threshold_tuning_never_hurts_on_the_tuning_set() {
        let (x, y) = toy_data();
        let p = EmPipelineConfig::default_random_forest(0).fit(&x, &y);
        let default_f1 = p.f1(&x, &y);
        let (threshold, tuned_f1) = p.tune_threshold(&x, &y);
        assert!(tuned_f1 >= default_f1 - 1e-12);
        assert!((0.0..=1.0).contains(&threshold));
        // predict_with_threshold at the tuned threshold reproduces tuned_f1.
        let again = em_ml::f1_score(&y, &p.predict_with_threshold(&x, threshold));
        assert_eq!(again, tuned_f1);
    }

    #[test]
    fn low_threshold_predicts_more_positives() {
        let (x, y) = toy_data();
        let p = EmPipelineConfig::default_random_forest(0).fit(&x, &y);
        let lo: usize = p.predict_with_threshold(&x, 0.1).iter().sum();
        let hi: usize = p.predict_with_threshold(&x, 0.9).iter().sum();
        assert!(lo >= hi);
    }

    #[test]
    fn pipeline_handles_nan_test_data() {
        let (x, y) = toy_data();
        let p = EmPipelineConfig::default_random_forest(0).fit(&x, &y);
        let test = Matrix::from_rows(&[vec![f64::NAN, 0.5, f64::NAN, 1.0]]);
        let pred = p.predict(&test);
        assert_eq!(pred.len(), 1);
    }

    #[test]
    fn decode_round_trip_from_figure5_style_config() {
        use em_automl::ParamValue;
        let config = Configuration::from_map([
            (
                "balancing:strategy".to_string(),
                ParamValue::Cat("weighting".into()),
            ),
            (
                "imputation:strategy".to_string(),
                ParamValue::Cat("mean".into()),
            ),
            (
                "rescaling:__choice__".to_string(),
                ParamValue::Cat("robust_scaler".into()),
            ),
            (
                "rescaling:robust_scaler:q_min".to_string(),
                ParamValue::Float(0.19454891546620004),
            ),
            (
                "rescaling:robust_scaler:q_max".to_string(),
                ParamValue::Float(0.9194022794180152),
            ),
            (
                "preprocessor:__choice__".to_string(),
                ParamValue::Cat("select_percentile_classification".into()),
            ),
            (
                "preprocessor:select_percentile:percentile".to_string(),
                ParamValue::Float(55.84285592896699),
            ),
            (
                "preprocessor:select_percentile:score_func".to_string(),
                ParamValue::Cat("f_classif".into()),
            ),
            (
                "classifier:__choice__".to_string(),
                ParamValue::Cat("random_forest".into()),
            ),
            (
                "classifier:random_forest:bootstrap".to_string(),
                ParamValue::Cat("True".into()),
            ),
            (
                "classifier:random_forest:criterion".to_string(),
                ParamValue::Cat("gini".into()),
            ),
            (
                "classifier:random_forest:max_features".to_string(),
                ParamValue::Float(0.9008519355763185),
            ),
            (
                "classifier:random_forest:min_samples_leaf".to_string(),
                ParamValue::Int(2),
            ),
            (
                "classifier:random_forest:min_samples_split".to_string(),
                ParamValue::Int(6),
            ),
        ]);
        let pc = decode_configuration(&config, 7);
        assert_eq!(pc.balancing, BalancingStrategy::Weighting);
        assert!(
            matches!(pc.rescaling, ScalerKind::Robust { q_min, .. } if (q_min - 19.45).abs() < 0.1)
        );
        assert!(matches!(
            pc.preprocessor,
            PreprocessorChoice::SelectPercentile { percentile, .. } if (percentile - 55.84).abs() < 0.1
        ));
        assert!(matches!(
            pc.classifier,
            ClassifierChoice::RandomForest {
                min_samples_split: 6,
                min_samples_leaf: 2,
                ..
            }
        ));
        assert_eq!(pc.seed, 7);
    }
}
