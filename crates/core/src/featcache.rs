//! Interned feature cache: precompute-once-probe-many feature generation.
//!
//! The Table-II scheme evaluates 16 string similarities per string attribute
//! per candidate pair, and the benchmark tables are full of repeated
//! attribute values (cities, years, venues) — the same `(value, value)`
//! similarity vector is recomputed across pairs, folds, and search trials.
//! [`FeatureCache`] removes that waste in two layers:
//!
//! 1. **Profiles** — each distinct attribute value (shared across both
//!    tables) is tokenized once into an [`em_text::TokenProfile`] whose
//!    token ids come from one cache-wide [`em_text::TokenInterner`].
//!    Drafting runs on the `em-rt` pool; interning is a serial pass in
//!    value-id order, so ids are identical at any `EM_THREADS`.
//! 2. **Memoization** — the per-attribute vector of string-similarity
//!    values is memoized under the key `(left value id) << 32 | right value
//!    id`. A batch [`FeatureCache::generate`] first walks the pairs
//!    serially to collect the *distinct missing* keys in first-appearance
//!    order, computes them in parallel (disjoint writes, per-worker
//!    [`em_text::SimScratch`]), inserts serially, then fills the output
//!    matrix in parallel by lookup — every phase is bit-identical for every
//!    thread count, and the memo survives across calls.
//!
//! Numeric and boolean features are cheap (no tokenization, no DP) and are
//! computed inline during the fill phase, exactly like the uncached path.
//!
//! The cache is on by default in [`crate::PreparedDataset::prepare`]; set
//! `EM_FEATCACHE=off` to force the uncached [`crate::FeatureGenerator`]
//! path (for A/B benchmarks — both paths produce bit-identical matrices).

use crate::featuregen::{compute_feature, FeatureGenerator, FeatureKind};
use em_ml::Matrix;
use em_table::{RecordPair, Table};
use em_text::{ProfileDraft, SimScratch, StringSimilarity, TokenInterner, TokenProfile};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Profiles built (one per distinct attribute value; traced runs only).
static PROFILE_BUILDS: em_obs::Counter = em_obs::Counter::new("featcache.profile_builds");
/// Memo lookups served from the cache (including repeats within a batch).
static MEMO_HITS: em_obs::Counter = em_obs::Counter::new("featcache.memo_hits");
/// Memo lookups that required computing a fresh similarity vector.
static MEMO_MISSES: em_obs::Counter = em_obs::Counter::new("featcache.memo_misses");
/// Distinct tokens interned across all caches (traced runs only).
static INTERNER_TOKENS: em_obs::Counter = em_obs::Counter::new("featcache.interner_tokens");
/// Memo entries evicted by the serving-path entry cap (see
/// [`FeatureCache::set_memo_cap`]; zero unless a cap is set).
static EVICTIONS: em_obs::Counter = em_obs::Counter::new("featcache.evictions");

thread_local! {
    /// Per-worker similarity scratch: the pool's threads are persistent, so
    /// DP buffers are allocated once per thread and reused forever.
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// Whether feature generation should go through the cache
/// (`EM_FEATCACHE=off|0|false` disables it; anything else, or unset, keeps
/// it on). Read per call so tests can flip the environment.
pub fn enabled() -> bool {
    std::env::var("EM_FEATCACHE").map_or(true, |v| !matches!(v.as_str(), "off" | "0" | "false"))
}

/// Memo key for a `(left value id, right value id)` pair.
fn memo_key(va: u32, vb: u32) -> u64 {
    (u64::from(va)) << 32 | u64::from(vb)
}

/// One memoized similarity vector, tagged with the epoch (batch ordinal) of
/// its last use so the serving-path cap can evict coarsely by age.
struct MemoEntry {
    /// Last [`FeatureCache::generate`] call that touched this entry.
    epoch: u64,
    /// One `f64` per planned similarity, in spec order.
    vals: Box<[f64]>,
}

/// Cached state for one string attribute: value-id maps for both tables,
/// one profile per distinct value, and the similarity-vector memo.
struct AttrCache {
    /// Index of this attribute in both schemas.
    attr_index: usize,
    /// The string similarities planned for this attribute, in spec order.
    sims: Vec<StringSimilarity>,
    /// Output matrix column of each entry in `sims`.
    cols: Vec<usize>,
    /// Distinct value -> dense id (shared across both tables). Retained so
    /// the left table can be rebound to fresh query batches when serving.
    value_ids: HashMap<String, u32>,
    /// Left-table row -> value id (`None` = null cell).
    a_rows: Vec<Option<u32>>,
    /// Right-table row -> value id.
    b_rows: Vec<Option<u32>>,
    /// Value id -> profile (ids shared across both tables).
    profiles: Vec<TokenProfile>,
    /// `(value id, value id)` -> similarity vector (one `f64` per sim).
    memo: HashMap<u64, MemoEntry>,
}

impl AttrCache {
    /// Ensure the memo holds every key the batch needs: serial collect of
    /// distinct missing keys (first-appearance order), parallel compute,
    /// serial insert. Entries touched by the batch (hit or inserted) are
    /// stamped with `epoch` so cap eviction never removes them mid-batch.
    fn fill_memo(&mut self, pairs: &[RecordPair], jobs: usize, epoch: u64) {
        let mut missing: Vec<u64> = Vec::new();
        let mut missing_set: HashSet<u64> = HashSet::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for p in pairs {
            let (Some(va), Some(vb)) = (self.a_rows[p.left], self.b_rows[p.right]) else {
                continue;
            };
            let key = memo_key(va, vb);
            if let Some(entry) = self.memo.get_mut(&key) {
                entry.epoch = epoch;
                hits += 1;
            } else if !missing_set.insert(key) {
                hits += 1;
            } else {
                misses += 1;
                missing.push(key);
            }
        }
        MEMO_HITS.add(hits);
        MEMO_MISSES.add(misses);
        if missing.is_empty() {
            return;
        }
        let k = self.sims.len();
        let mut flat = vec![0.0f64; missing.len() * k];
        let writer = em_rt::SliceWriter::new(flat.as_mut_slice());
        let jobs = if missing.len() < 64 { 1 } else { jobs };
        em_rt::parallel_for(missing.len(), jobs, |m| {
            // Safety: each missing-key index is handed out exactly once and
            // the row slices `[m * k, (m + 1) * k)` are pairwise disjoint.
            let row = unsafe { writer.slice_mut(m * k, k) };
            let key = missing[m];
            let pa = &self.profiles[(key >> 32) as usize];
            let pb = &self.profiles[(key & u64::from(u32::MAX)) as usize];
            SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                for (slot, sim) in row.iter_mut().zip(&self.sims) {
                    *slot = sim.apply_profiles(pa, pb, &mut scratch);
                }
            });
        });
        for (m, &key) in missing.iter().enumerate() {
            self.memo.insert(
                key,
                MemoEntry {
                    epoch,
                    vals: flat[m * k..(m + 1) * k].to_vec().into_boxed_slice(),
                },
            );
        }
    }
}

/// A feature generator bound to a table pair, with interned value profiles
/// and a per-attribute similarity memo. See the module docs for the design.
pub struct FeatureCache {
    generator: FeatureGenerator,
    attrs: Vec<AttrCache>,
    interner: TokenInterner,
    n_left: usize,
    n_right: usize,
    /// Entry cap for the similarity memo (`None` = unbounded; see
    /// [`Self::set_memo_cap`]).
    memo_cap: Option<usize>,
    /// Batch ordinal, bumped once per [`Self::generate`] call; stamps memo
    /// entries for coarse oldest-epoch eviction.
    epoch: u64,
}

impl FeatureCache {
    /// Build profiles for every string attribute of the table pair, on the
    /// shared pool ([`Self::with_jobs`] with the pool's thread count).
    pub fn new(generator: FeatureGenerator, a: &Table, b: &Table) -> Self {
        Self::with_jobs(generator, a, b, 0)
    }

    /// A serving-side cache: the right side is bound to `catalog` up front
    /// (every catalog value profiled once), the left side starts unbound and
    /// is rebound to each incoming query batch via [`Self::rebind_left`].
    /// Avoids materializing a throwaway empty query table.
    pub fn for_serving(generator: FeatureGenerator, catalog: &Table) -> Self {
        Self::build(generator, None, Some(catalog), 0)
    }

    /// A fully unbound cache: neither side is profiled up front. The
    /// store-backed serving path rebinds the left side to each query batch
    /// and the right side to each fetched catalog slice
    /// ([`Self::rebind_left`] / [`Self::rebind_right`]); profiles and memo
    /// entries accumulate across batches exactly as in the bound paths.
    pub fn unbound(generator: FeatureGenerator) -> Self {
        Self::build(generator, None, None, 0)
    }

    /// [`Self::new`] with an explicit worker cap (0 = the pool's
    /// [`em_rt::threads`] count). The parallel part (tokenizing drafts) is
    /// order-free; value ids and token ids come from serial passes, so the
    /// cache's internal state is identical for every `jobs` value.
    pub fn with_jobs(generator: FeatureGenerator, a: &Table, b: &Table, jobs: usize) -> Self {
        Self::build(generator, Some(a), Some(b), jobs)
    }

    /// Shared constructor: either side may start unbound (no rows mapped,
    /// no profiles built) and be bound later with the rebind methods.
    fn build(
        generator: FeatureGenerator,
        a: Option<&Table>,
        b: Option<&Table>,
        jobs: usize,
    ) -> Self {
        let _span = em_obs::span!("featcache.build");
        let mut interner = TokenInterner::new();
        // Group the planned string features by attribute, in spec order.
        let mut by_attr: BTreeMap<usize, (Vec<StringSimilarity>, Vec<usize>)> = BTreeMap::new();
        for (col, spec) in generator.specs().iter().enumerate() {
            if let FeatureKind::String(sim) = &spec.kind {
                let entry = by_attr.entry(spec.attr_index).or_default();
                entry.0.push(*sim);
                entry.1.push(col);
            }
        }
        let attrs = by_attr
            .into_iter()
            .map(|(attr_index, (sims, cols))| {
                // Serial: dedupe attribute values across both tables into
                // dense ids (first-appearance order).
                let mut value_ids: HashMap<String, u32> = HashMap::new();
                let mut values: Vec<String> = Vec::new();
                let mut map_rows = |t: Option<&Table>| -> Vec<Option<u32>> {
                    t.map_or_else(Vec::new, |t| {
                        t.records()
                            .map(|rec| {
                                rec.get(attr_index).to_display_string().map(|s| {
                                    if let Some(&id) = value_ids.get(&s) {
                                        id
                                    } else {
                                        let id = values.len() as u32;
                                        values.push(s.clone());
                                        value_ids.insert(s, id);
                                        id
                                    }
                                })
                            })
                            .collect()
                    })
                };
                let a_rows = map_rows(a);
                let b_rows = map_rows(b);
                // Parallel: tokenize each distinct value into a draft.
                let mut drafts: Vec<Option<ProfileDraft>> = vec![None; values.len()];
                let writer = em_rt::SliceWriter::new(drafts.as_mut_slice());
                let draft_jobs = if values.len() < 64 { 1 } else { jobs };
                em_rt::parallel_for(values.len(), draft_jobs, |v| {
                    // Safety: each value index is handed out exactly once.
                    let slot = unsafe { &mut writer.slice_mut(v, 1)[0] };
                    *slot = Some(ProfileDraft::new(&values[v]));
                });
                // Serial: intern in value-id order (deterministic ids).
                let profiles: Vec<TokenProfile> = drafts
                    .into_iter()
                    .map(|d| TokenProfile::from_draft(d.expect("draft built"), &mut interner))
                    .collect();
                PROFILE_BUILDS.add(profiles.len() as u64);
                AttrCache {
                    attr_index,
                    sims,
                    cols,
                    value_ids,
                    a_rows,
                    b_rows,
                    profiles,
                    memo: HashMap::new(),
                }
            })
            .collect();
        INTERNER_TOKENS.add(interner.len() as u64);
        FeatureCache {
            generator,
            attrs,
            interner,
            n_left: a.map_or(0, Table::len),
            n_right: b.map_or(0, Table::len),
            memo_cap: None,
            epoch: 0,
        }
    }

    /// Rebind the *left* side of the cache to a fresh table (the serving
    /// path: the right side is a fixed catalog, the left side is each
    /// incoming query batch). Previously-unseen values are profiled and
    /// interned in row order — a serial pass, so the cache state after a
    /// given sequence of batches is identical at any `EM_THREADS`. Existing
    /// profiles and memo entries stay valid because both are keyed by value
    /// ids, which never change once assigned.
    pub fn rebind_left(&mut self, a: &Table) {
        let _span = em_obs::span!("featcache.rebind_left");
        let mut new_profiles = 0u64;
        for ac in &mut self.attrs {
            ac.a_rows = Self::bind_rows(ac, &mut self.interner, a, &mut new_profiles);
        }
        PROFILE_BUILDS.add(new_profiles);
        self.n_left = a.len();
    }

    /// Rebind the *right* side of the cache to a fresh table — the
    /// store-backed serving path, where the right side is the per-batch
    /// slice of catalog rows gathered for the probe's candidates rather
    /// than the whole catalog. Same contract as [`Self::rebind_left`]:
    /// unseen values are profiled and interned in row order (serial, so
    /// cache state after a given batch sequence is thread-count
    /// invariant), and existing profiles/memo entries stay valid because
    /// both are keyed by value ids.
    pub fn rebind_right(&mut self, b: &Table) {
        let _span = em_obs::span!("featcache.rebind_right");
        let mut new_profiles = 0u64;
        for ac in &mut self.attrs {
            ac.b_rows = Self::bind_rows(ac, &mut self.interner, b, &mut new_profiles);
        }
        PROFILE_BUILDS.add(new_profiles);
        self.n_right = b.len();
    }

    /// Map `t`'s rows of `ac`'s attribute to value ids, profiling and
    /// interning previously-unseen values in row order.
    fn bind_rows(
        ac: &mut AttrCache,
        interner: &mut TokenInterner,
        t: &Table,
        new_profiles: &mut u64,
    ) -> Vec<Option<u32>> {
        t.records()
            .map(|rec| {
                rec.get(ac.attr_index).to_display_string().map(|s| {
                    if let Some(&id) = ac.value_ids.get(&s) {
                        id
                    } else {
                        let id = ac.profiles.len() as u32;
                        let draft = ProfileDraft::new(&s);
                        ac.profiles.push(TokenProfile::from_draft(draft, interner));
                        ac.value_ids.insert(s, id);
                        *new_profiles += 1;
                        id
                    }
                })
            })
            .collect()
    }

    /// Cap the total number of memoized similarity vectors (across all
    /// attributes). `None` (the default) means unbounded — the right choice
    /// for training and search, where the value universe is fixed. Serving
    /// paths that stream unbounded query values should set a cap; when the
    /// memo exceeds it after a batch, whole *epochs* (batch ordinals of last
    /// use) are evicted oldest-first until the cap holds, counting into
    /// `featcache.evictions`. Eviction is a serial pass, so cache state
    /// stays deterministic.
    pub fn set_memo_cap(&mut self, cap: Option<usize>) {
        self.memo_cap = cap;
    }

    /// Total memo entries evicted so far by the entry cap, process-wide
    /// (counts only while tracing is enabled, like every `em-obs` counter).
    pub fn evictions() -> u64 {
        EVICTIONS.value()
    }

    /// Evict whole epochs, oldest first, until the memo fits the cap. The
    /// current epoch is never evicted (its entries were just used or
    /// inserted by the in-progress batch).
    fn evict_to_cap(&mut self) {
        let Some(cap) = self.memo_cap else { return };
        let mut total: usize = self.attrs.iter().map(|ac| ac.memo.len()).sum();
        while total > cap {
            let oldest = self
                .attrs
                .iter()
                .flat_map(|ac| ac.memo.values())
                .map(|e| e.epoch)
                .filter(|&ep| ep < self.epoch)
                .min();
            let Some(oldest) = oldest else { break };
            let mut dropped = 0usize;
            for ac in &mut self.attrs {
                let before = ac.memo.len();
                ac.memo.retain(|_, e| e.epoch != oldest);
                dropped += before - ac.memo.len();
            }
            EVICTIONS.add(dropped as u64);
            total -= dropped;
        }
    }

    /// The generator this cache was built from.
    pub fn generator(&self) -> &FeatureGenerator {
        &self.generator
    }

    /// Distinct tokens interned across all attribute profiles.
    pub fn interned_tokens(&self) -> usize {
        self.interner.len()
    }

    /// Memoized `(value, value)` similarity vectors currently held.
    pub fn memo_len(&self) -> usize {
        self.attrs.iter().map(|ac| ac.memo.len()).sum()
    }

    /// Compute the feature matrix for a batch of pairs — bit-identical to
    /// [`FeatureGenerator::generate`] on the same tables, with repeated
    /// attribute-value pairs served from the memo. The memo persists across
    /// calls, so later batches (other folds, blocking candidates, the
    /// active-learning pool) reuse earlier work.
    pub fn generate(&mut self, a: &Table, b: &Table, pairs: &[RecordPair]) -> Matrix {
        self.generate_with_jobs(a, b, pairs, 0)
    }

    /// [`Self::generate`] with an explicit worker cap (0 = the pool's
    /// [`em_rt::threads`] count).
    pub fn generate_with_jobs(
        &mut self,
        a: &Table,
        b: &Table,
        pairs: &[RecordPair],
        jobs: usize,
    ) -> Matrix {
        let _span = em_obs::span!("featcache.generate");
        assert_eq!(a.len(), self.n_left, "left table changed since build");
        assert_eq!(b.len(), self.n_right, "right table changed since build");
        let n = pairs.len();
        let d = self.generator.n_features();
        let mut out = Matrix::zeros(n, d);
        if n == 0 || d == 0 {
            return out;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        for ac in &mut self.attrs {
            ac.fill_memo(pairs, jobs, epoch);
        }
        self.evict_to_cap();
        let attrs = &self.attrs;
        let specs = self.generator.specs();
        let writer = em_rt::SliceWriter::new(out.as_mut_slice());
        let jobs = if n < 64 { 1 } else { jobs };
        em_rt::parallel_for(n, jobs, |r| {
            // Safety: each row index is handed out exactly once, and row
            // slices `[r * d, (r + 1) * d)` are pairwise disjoint.
            let row = unsafe { writer.slice_mut(r * d, d) };
            let p = pairs[r];
            for ac in attrs {
                match (ac.a_rows[p.left], ac.b_rows[p.right]) {
                    (Some(va), Some(vb)) => {
                        let vec = &ac.memo[&memo_key(va, vb)].vals;
                        for (&c, &v) in ac.cols.iter().zip(vec.iter()) {
                            row[c] = v;
                        }
                    }
                    // Null on either side: NaN, like the uncached path.
                    _ => {
                        for &c in &ac.cols {
                            row[c] = f64::NAN;
                        }
                    }
                }
            }
            let ra = a.record(p.left);
            let rb = b.record(p.right);
            for (c, spec) in specs.iter().enumerate() {
                if !matches!(spec.kind, FeatureKind::String(_)) {
                    row[c] = compute_feature(
                        &spec.kind,
                        ra.get(spec.attr_index),
                        rb.get(spec.attr_index),
                    );
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featuregen::FeatureScheme;
    use em_table::parse_csv;

    fn bitwise_eq(a: &Matrix, b: &Matrix) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn cached_matches_uncached_on_benchmark() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(3, 0.25);
        for scheme in [FeatureScheme::Magellan, FeatureScheme::AutoMlEm] {
            let g = FeatureGenerator::plan_for_tables(scheme, &ds.table_a, &ds.table_b);
            let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
            let uncached = g.generate(&ds.table_a, &ds.table_b, &pairs);
            let mut cache = FeatureCache::new(g, &ds.table_a, &ds.table_b);
            let cached = cache.generate(&ds.table_a, &ds.table_b, &pairs);
            bitwise_eq(&uncached, &cached);
            assert!(cache.interned_tokens() > 0);
            assert!(cache.memo_len() > 0);
            // Second batch is served from the memo, still identical.
            let again = cache.generate(&ds.table_a, &ds.table_b, &pairs);
            bitwise_eq(&uncached, &again);
        }
    }

    #[test]
    fn nulls_and_mixed_types_match_uncached() {
        let a = parse_csv("name,price,stock\nwidget,10,true\n,12,false\nacme,NaN,true\n").unwrap();
        let b = parse_csv("name,price,stock\nwidget x,11,true\n,9,\nacme,3,false\n").unwrap();
        let g = FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &a, &b);
        let pairs: Vec<RecordPair> = (0..a.len())
            .flat_map(|i| (0..b.len()).map(move |j| RecordPair::new(i, j)))
            .collect();
        let uncached = g.generate(&a, &b, &pairs);
        let mut cache = FeatureCache::new(g, &a, &b);
        bitwise_eq(&uncached, &cache.generate(&a, &b, &pairs));
    }

    #[test]
    fn memo_persists_across_batches() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(5, 0.2);
        let g =
            FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
        let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
        let mut cache = FeatureCache::new(g, &ds.table_a, &ds.table_b);
        let _ = cache.generate(&ds.table_a, &ds.table_b, &pairs);
        let before = cache.memo_len();
        // Re-featurizing a subset adds no new memo entries.
        let _ = cache.generate(&ds.table_a, &ds.table_b, &pairs[..pairs.len() / 2]);
        assert_eq!(cache.memo_len(), before);
    }

    #[test]
    fn rebind_left_matches_uncached_on_fresh_batches() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(3, 0.25);
        let g =
            FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
        // Catalog = table_b; queries arrive as slices of table_a.
        let empty = Table::new(ds.table_a.schema().clone());
        let mut cache = FeatureCache::new(g.clone(), &empty, &ds.table_b);
        let half = ds.table_a.len() / 2;
        for (lo, hi) in [(0, half), (half, ds.table_a.len()), (0, half)] {
            let batch = ds.table_a.slice_rows(lo..hi);
            let pairs: Vec<RecordPair> = (0..batch.len())
                .flat_map(|i| (0..ds.table_b.len()).map(move |j| RecordPair::new(i, j)))
                .collect();
            cache.rebind_left(&batch);
            let cached = cache.generate(&batch, &ds.table_b, &pairs);
            let uncached = g.generate(&batch, &ds.table_b, &pairs);
            bitwise_eq(&uncached, &cached);
        }
    }

    #[test]
    fn unbound_cache_with_both_sides_rebound_matches_uncached() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(3, 0.25);
        let g =
            FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
        // The store-backed serving shape: queries are slices of table_a,
        // the "fetched catalog slice" is a varying slice of table_b.
        let mut cache = FeatureCache::unbound(g.clone());
        let half_a = ds.table_a.len() / 2;
        let half_b = ds.table_b.len() / 2;
        let windows = [
            (0, half_a, 0, half_b),
            (half_a, ds.table_a.len(), half_b, ds.table_b.len()),
            (0, half_a, 0, ds.table_b.len()),
        ];
        for (alo, ahi, blo, bhi) in windows {
            let batch = ds.table_a.slice_rows(alo..ahi);
            let slice = ds.table_b.slice_rows(blo..bhi);
            let pairs: Vec<RecordPair> = (0..batch.len())
                .flat_map(|i| (0..slice.len()).map(move |j| RecordPair::new(i, j)))
                .collect();
            cache.rebind_left(&batch);
            cache.rebind_right(&slice);
            let cached = cache.generate(&batch, &slice, &pairs);
            let uncached = g.generate(&batch, &slice, &pairs);
            bitwise_eq(&uncached, &cached);
        }
        // for_serving (right side bound up front) agrees with the
        // fully-rebound cache on a fresh query batch.
        let mut bound = FeatureCache::for_serving(g.clone(), &ds.table_b);
        let batch = ds.table_a.slice_rows(0..half_a);
        let pairs: Vec<RecordPair> = (0..batch.len())
            .flat_map(|i| (0..ds.table_b.len()).map(move |j| RecordPair::new(i, j)))
            .collect();
        bound.rebind_left(&batch);
        let got = bound.generate(&batch, &ds.table_b, &pairs);
        bitwise_eq(&g.generate(&batch, &ds.table_b, &pairs), &got);
    }

    #[test]
    fn memo_cap_evicts_old_epochs_and_stays_correct() {
        let ds = em_data::Benchmark::FodorsZagats.generate_scaled(4, 0.25);
        let g =
            FeatureGenerator::plan_for_tables(FeatureScheme::AutoMlEm, &ds.table_a, &ds.table_b);
        let pairs: Vec<RecordPair> = ds.pairs.iter().map(|p| p.pair).collect();
        let uncached = g.generate(&ds.table_a, &ds.table_b, &pairs);
        let mut cache = FeatureCache::new(g, &ds.table_a, &ds.table_b);
        let _ = cache.generate(&ds.table_a, &ds.table_b, &pairs);
        let full = cache.memo_len();
        assert!(full > 8, "test needs a non-trivial memo");
        // A cap below the working set forces eviction between batches, but
        // never of entries the in-progress batch needs — results stay exact.
        cache.set_memo_cap(Some(full / 2));
        let mid = pairs.len() / 2;
        let first = cache.generate(&ds.table_a, &ds.table_b, &pairs[..mid]);
        let second = cache.generate(&ds.table_a, &ds.table_b, &pairs[mid..]);
        for r in 0..pairs.len() {
            let got = if r < mid {
                first.row(r)
            } else {
                second.row(r - mid)
            };
            for (x, y) in got.iter().zip(uncached.row(r)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(
            cache.memo_len() <= full,
            "cap should prevent unbounded growth"
        );
    }

    #[test]
    fn enabled_reads_environment() {
        // Not a parallel-safe env mutation test; just the parse contract.
        assert!(enabled() || std::env::var("EM_FEATCACHE").is_ok());
    }
}
