//! The AutoML-EM driver (paper §III): wire the feature generator, the EM
//! pipeline space, and the `em-automl` search loop together — given labeled
//! record pairs, automatically find the best EM pipeline.

use crate::featuregen::{FeatureGenerator, FeatureScheme};
use crate::pipeline::{decode_configuration, EmPipelineConfig, FittedEmPipeline};
use crate::space::{build_space, SpaceOptions};
use em_automl::{
    run_search_async, run_search_with_initial, Budget, Configuration, RandomSearch,
    SearchAlgorithm, SearchHistory, SmacSearch, TpeSearch,
};
use em_data::EmDataset;
use em_ml::{f1_score, paper_split, Matrix, ThreeWaySplit};
use em_table::RecordPair;

/// Which search algorithm drives the pipeline search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchChoice {
    /// Uniform random search.
    Random,
    /// SMAC-style SMBO (the auto-sklearn default, used by the paper).
    Smac,
    /// Tree-structured Parzen estimator.
    Tpe,
}

impl SearchChoice {
    fn build(self) -> Box<dyn SearchAlgorithm> {
        match self {
            SearchChoice::Random => Box::new(RandomSearch),
            SearchChoice::Smac => Box::new(SmacSearch::default()),
            SearchChoice::Tpe => Box::new(TpeSearch::default()),
        }
    }
}

/// All the knobs of an AutoML-EM run.
#[derive(Debug, Clone)]
pub struct AutoMlEmOptions {
    /// Feature-generation scheme (Table I vs Table II).
    pub scheme: FeatureScheme,
    /// Search-space shape (model repertoire, module switches).
    pub space: SpaceOptions,
    /// Search algorithm.
    pub search: SearchChoice,
    /// Search budget.
    pub budget: Budget,
    /// Master seed (splits, search, model training).
    pub seed: u64,
    /// Candidate configurations evaluated concurrently per search step, on
    /// the async SMBO runner's dedicated channel-fed workers (which leaves
    /// the shared `em-rt` pool free for the forest fits inside each
    /// evaluation). `1` reproduces the strictly sequential suggest →
    /// evaluate loop; larger batches trade per-step feedback for wall-clock
    /// speed (still deterministic for a fixed seed and any thread count).
    pub candidate_batch: usize,
}

impl Default for AutoMlEmOptions {
    fn default() -> Self {
        AutoMlEmOptions {
            scheme: FeatureScheme::AutoMlEm,
            space: SpaceOptions::default(),
            search: SearchChoice::Smac,
            budget: Budget::Evaluations(48),
            seed: 0,
            candidate_batch: 1,
        }
    }
}

/// The outcome of an AutoML-EM run.
pub struct AutoMlEmResult {
    /// Full search history (for Figure 10 convergence curves).
    pub history: SearchHistory,
    /// The winning raw configuration (printable like Figure 11).
    pub best_configuration: Configuration,
    /// The winning pipeline, decoded.
    pub best_pipeline: EmPipelineConfig,
    /// Validation F1 of the incumbent.
    pub validation_f1: f64,
    /// The incumbent pipeline refit on train + validation data (standard
    /// holdout practice before scoring the test set).
    pub fitted: FittedEmPipeline,
}

/// The AutoML-EM system: feature generation + pipeline search.
#[derive(Debug, Clone, Default)]
pub struct AutoMlEm {
    /// Run options.
    pub options: AutoMlEmOptions,
}

impl AutoMlEm {
    /// Create a driver with the given options.
    pub fn new(options: AutoMlEmOptions) -> Self {
        AutoMlEm { options }
    }

    /// Search for the best pipeline on pre-generated feature matrices:
    /// evaluate candidates by training on `(x_train, y_train)` and scoring
    /// F1 on `(x_valid, y_valid)` (the paper's holdout validation, §V-A).
    pub fn fit(
        &self,
        x_train: &Matrix,
        y_train: &[usize],
        x_valid: &Matrix,
        y_valid: &[usize],
    ) -> AutoMlEmResult {
        self.fit_weighted(x_train, y_train, None, x_valid, y_valid, None)
    }

    /// [`Self::fit`] with optional per-sample confidence weights on the
    /// train and validation rows. This is the zero-hand-labels entry point:
    /// `em-weak` thresholds its label model's posteriors into hard labels
    /// and passes the posterior confidence as the weight, so candidate
    /// pipelines downweight pairs the labeling functions disagreed on.
    /// `None` weights reproduce `fit` exactly.
    pub fn fit_weighted(
        &self,
        x_train: &Matrix,
        y_train: &[usize],
        w_train: Option<&[f64]>,
        x_valid: &Matrix,
        y_valid: &[usize],
        w_valid: Option<&[f64]>,
    ) -> AutoMlEmResult {
        assert_eq!(x_train.nrows(), y_train.len(), "train length mismatch");
        assert_eq!(x_valid.nrows(), y_valid.len(), "valid length mismatch");
        let space = build_space(self.options.space);
        let seed = self.options.seed;
        let mut algo = self.options.search.build();
        let objective = |config: &Configuration| -> f64 {
            let pipeline = decode_configuration(config, seed);
            let fitted = pipeline.fit_weighted(x_train, y_train, w_train);
            fitted.f1(x_valid, y_valid)
        };
        // Warm start: the in-space default configuration is evaluated
        // first (auto-sklearn's meta-learning portfolio, reduced to the
        // sklearn defaults), so the surrogate model sees it immediately.
        let warm_start = [crate::space::default_configuration(self.options.space)];
        let history = if self.options.candidate_batch > 1 {
            run_search_async(
                &space,
                algo.as_mut(),
                &objective,
                self.options.budget,
                seed,
                &warm_start,
                self.options.candidate_batch,
            )
        } else {
            run_search_with_initial(
                &space,
                algo.as_mut(),
                &mut { objective },
                self.options.budget,
                seed,
                &warm_start,
            )
        };
        let incumbent = history
            .incumbent()
            .expect("search budget must allow at least one evaluation");
        let mut best_configuration = incumbent.config.clone();
        let mut validation_f1 = incumbent.score;
        let mut best_pipeline = decode_configuration(&best_configuration, seed);
        // Warm-start guarantee (auto-sklearn seeds its search with default
        // configurations via meta-learning): the returned model is never
        // worse on validation than the out-of-the-box random forest.
        let default_pipeline = EmPipelineConfig::default_random_forest(seed);
        let default_valid_f1 = default_pipeline
            .fit_weighted(x_train, y_train, w_train)
            .f1(x_valid, y_valid);
        if default_valid_f1 > validation_f1 {
            validation_f1 = default_valid_f1;
            best_pipeline = default_pipeline;
            best_configuration = Configuration::default();
        }
        // Refit on train + validation for final test-set scoring.
        let x_all = x_train.vstack(x_valid);
        let mut y_all = y_train.to_vec();
        y_all.extend_from_slice(y_valid);
        let w_all = match (w_train, w_valid) {
            (None, None) => None,
            _ => {
                let mut w = w_train.map_or_else(|| vec![1.0; y_train.len()], <[f64]>::to_vec);
                match w_valid {
                    Some(wv) => w.extend_from_slice(wv),
                    None => w.extend(std::iter::repeat_n(1.0, y_valid.len())),
                }
                Some(w)
            }
        };
        let fitted = best_pipeline.fit_weighted(&x_all, &y_all, w_all.as_deref());
        AutoMlEmResult {
            history,
            best_configuration,
            best_pipeline,
            validation_f1,
            fitted,
        }
    }
}

/// A benchmark dataset converted to feature vectors with the paper's
/// 64/16/20 train/validation/test split.
pub struct PreparedDataset {
    /// Dataset name.
    pub name: String,
    /// Feature matrix over all candidate pairs (row i = pair i).
    pub features: Matrix,
    /// Gold labels (0/1) in pair order.
    pub labels: Vec<usize>,
    /// Stratified three-way split over pair indices.
    pub split: ThreeWaySplit,
    /// The feature generator used (for names/diagnostics).
    pub generator: FeatureGenerator,
}

impl PreparedDataset {
    /// Generate features and split a benchmark dataset.
    pub fn prepare(dataset: &EmDataset, scheme: FeatureScheme, seed: u64) -> Self {
        let generator =
            FeatureGenerator::plan_for_tables(scheme, &dataset.table_a, &dataset.table_b);
        let pairs: Vec<RecordPair> = dataset.pairs.iter().map(|p| p.pair).collect();
        let features = if crate::featcache::enabled() {
            let mut cache = generator.cached(&dataset.table_a, &dataset.table_b);
            cache.generate(&dataset.table_a, &dataset.table_b, &pairs)
        } else {
            generator.generate(&dataset.table_a, &dataset.table_b, &pairs)
        };
        let labels = dataset.labels();
        let split = paper_split(&labels, seed);
        PreparedDataset {
            name: dataset.name.clone(),
            features,
            labels,
            split,
            generator,
        }
    }

    fn subset(&self, idx: &[usize]) -> (Matrix, Vec<usize>) {
        (
            self.features.select_rows(idx),
            idx.iter().map(|&i| self.labels[i]).collect(),
        )
    }

    /// Training portion (~64%).
    pub fn train(&self) -> (Matrix, Vec<usize>) {
        self.subset(&self.split.train)
    }

    /// Validation portion (~16%).
    pub fn valid(&self) -> (Matrix, Vec<usize>) {
        self.subset(&self.split.valid)
    }

    /// Test portion (~20%).
    pub fn test(&self) -> (Matrix, Vec<usize>) {
        self.subset(&self.split.test)
    }

    /// Run AutoML-EM end to end on this dataset and report
    /// `(validation F1, test F1, result)`.
    pub fn run_automl(&self, options: AutoMlEmOptions) -> (f64, f64, AutoMlEmResult) {
        let (xt, yt) = self.train();
        let (xv, yv) = self.valid();
        let (xs, ys) = self.test();
        let result = AutoMlEm::new(options).fit(&xt, &yt, &xv, &yv);
        let test_f1 = f1_score(&ys, &result.fitted.predict(&xs));
        (result.validation_f1, test_f1, result)
    }

    /// Baseline: fit a fixed pipeline on train(+valid) and report test F1 —
    /// the "human with defaults" Magellan baseline of Table IV.
    pub fn run_fixed_pipeline(&self, config: &EmPipelineConfig) -> f64 {
        let (xt, yt) = self.train();
        let (xv, yv) = self.valid();
        let (xs, ys) = self.test();
        let x_all = xt.vstack(&xv);
        let mut y_all = yt;
        y_all.extend_from_slice(&yv);
        let fitted = config.fit(&x_all, &y_all);
        f1_score(&ys, &fitted.predict(&xs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::Benchmark;

    fn quick_options(budget: usize) -> AutoMlEmOptions {
        AutoMlEmOptions {
            budget: Budget::Evaluations(budget),
            ..AutoMlEmOptions::default()
        }
    }

    #[test]
    fn end_to_end_on_small_benchmark() {
        let ds = Benchmark::FodorsZagats.generate_scaled(0, 0.35);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 0);
        let (vf1, tf1, result) = prep.run_automl(quick_options(6));
        assert!(vf1 > 0.5, "validation F1 {vf1}");
        assert!(tf1 > 0.5, "test F1 {tf1}");
        assert_eq!(result.history.len(), 6);
        // The incumbent prints in Figure-11 style.
        let dump = result.best_configuration.to_string();
        assert!(dump.contains("classifier:__choice__"));
    }

    #[test]
    fn automl_beats_or_matches_default_rf_on_validation() {
        let ds = Benchmark::ItunesAmazon.generate_scaled(1, 0.5);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 1);
        let (vf1, _, _) = prep.run_automl(quick_options(8));
        // Validation score of the search incumbent can't be worse than a
        // mediocre floor on this easy dataset.
        assert!(vf1 > 0.6, "validation F1 {vf1}");
    }

    #[test]
    fn prepared_split_partitions_pairs() {
        let ds = Benchmark::BeerAdvoRateBeer.generate_scaled(2, 1.0);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::Magellan, 2);
        let n = prep.labels.len();
        let mut all: Vec<usize> = prep
            .split
            .train
            .iter()
            .chain(&prep.split.valid)
            .chain(&prep.split.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(prep.features.nrows(), n);
        assert_eq!(prep.features.ncols(), prep.generator.n_features());
    }

    #[test]
    fn fixed_pipeline_baseline_runs() {
        let ds = Benchmark::FodorsZagats.generate_scaled(3, 0.3);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::Magellan, 3);
        let f1 = prep.run_fixed_pipeline(&EmPipelineConfig::default_random_forest(3));
        assert!(f1 > 0.4, "baseline F1 {f1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = Benchmark::FodorsZagats.generate_scaled(4, 0.25);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 4);
        let (v1, t1, _) = prep.run_automl(quick_options(4));
        let (v2, t2, _) = prep.run_automl(quick_options(4));
        assert_eq!(v1, v2);
        assert_eq!(t1, t2);
    }
}
