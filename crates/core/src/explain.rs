//! Model explanation for EM pipelines — the paper's §VII future-work
//! direction ("leverage recent ML explanation tools to help data scientists
//! understand a complex EM model").
//!
//! Two complementary views are provided:
//!
//! * **Impurity importances** — the forest's native mean-decrease-in-impurity
//!   scores, mapped back through the pipeline's feature-selection stage to
//!   the named similarity features (`name_jaccard_space`, …). Fast, but only
//!   defined for tree models and index-preserving transforms.
//! * **Permutation importances** — model-agnostic (LIME/SHAP-spirit): the
//!   drop in F1 when one raw feature column is shuffled. Works for every
//!   classifier and every transform, at the cost of re-scoring.

use crate::pipeline::{FittedEmPipeline, FittedTransform};
use em_ml::{f1_score, Matrix};
use em_rt::SliceRandom;
use em_rt::StdRng;
use std::fmt;

/// Named, sorted feature-importance scores.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportanceReport {
    /// `(feature name, importance)`, sorted descending by importance.
    pub entries: Vec<(String, f64)>,
}

impl FeatureImportanceReport {
    fn from_scores(names: &[String], scores: Vec<f64>) -> Self {
        assert_eq!(names.len(), scores.len(), "name/score length mismatch");
        let mut entries: Vec<(String, f64)> = names.iter().cloned().zip(scores).collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        FeatureImportanceReport { entries }
    }

    /// The `k` most important features.
    pub fn top(&self, k: usize) -> &[(String, f64)] {
        &self.entries[..k.min(self.entries.len())]
    }
}

impl fmt::Display for FeatureImportanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, score) in &self.entries {
            writeln!(f, "{score:>8.4}  {name}")?;
        }
        Ok(())
    }
}

impl FittedEmPipeline {
    /// Native impurity importances mapped to the original feature names.
    ///
    /// Returns `None` when the classifier has no native importances (linear
    /// models, k-NN, NB) or when the feature-preprocessing stage does not
    /// preserve feature identity (PCA, feature agglomeration) — use
    /// [`FittedEmPipeline::permutation_importances`] there instead.
    pub fn impurity_importances(
        &self,
        feature_names: &[String],
    ) -> Option<FeatureImportanceReport> {
        let model_scores = self.model_feature_importances()?;
        match self.fitted_transform() {
            FittedTransform::None => Some(FeatureImportanceReport::from_scores(
                feature_names,
                model_scores,
            )),
            FittedTransform::Select(sel) => {
                let mut scores = vec![0.0; feature_names.len()];
                for (model_ix, &orig_ix) in sel.selected().iter().enumerate() {
                    scores[orig_ix] = model_scores[model_ix];
                }
                Some(FeatureImportanceReport::from_scores(feature_names, scores))
            }
            FittedTransform::Pca(_) | FittedTransform::Agglomeration(_) => None,
        }
    }

    /// Permutation importances on raw (pre-pipeline) features: for each
    /// column, shuffle it `repeats` times and average the F1 drop against
    /// the unshuffled baseline. Negative drops clamp to zero.
    pub fn permutation_importances(
        &self,
        x: &Matrix,
        y: &[usize],
        feature_names: &[String],
        repeats: usize,
        seed: u64,
    ) -> FeatureImportanceReport {
        self.permutation_importances_with_jobs(x, y, feature_names, repeats, seed, 0)
    }

    /// [`permutation_importances`] with an explicit `em-rt` job cap
    /// (0 = full pool).
    ///
    /// Columns are independent pool tasks. Each column shuffles with its own
    /// `derive_seed(seed, col)` RNG stream, so the permutations — and the
    /// report — depend only on `(seed, col)`, never on thread count or
    /// scheduling order.
    pub fn permutation_importances_with_jobs(
        &self,
        x: &Matrix,
        y: &[usize],
        feature_names: &[String],
        repeats: usize,
        seed: u64,
        jobs: usize,
    ) -> FeatureImportanceReport {
        assert_eq!(x.ncols(), feature_names.len(), "name/column mismatch");
        assert!(repeats > 0, "repeats must be positive");
        let baseline = f1_score(y, &self.predict(x));
        let n = x.nrows();
        let mut scores = vec![0.0f64; x.ncols()];
        {
            let writer = em_rt::SliceWriter::new(&mut scores);
            em_rt::parallel_for_chunked(x.ncols(), jobs, 1, |col| {
                let mut rng = StdRng::seed_from_u64(em_rt::derive_seed(seed, col as u64));
                let mut drop_sum = 0.0;
                for _ in 0..repeats {
                    let mut perm: Vec<usize> = (0..n).collect();
                    perm.shuffle(&mut rng);
                    let mut shuffled = x.clone();
                    for (r, &src) in perm.iter().enumerate() {
                        shuffled.set(r, col, x.get(src, col));
                    }
                    let f1 = f1_score(y, &self.predict(&shuffled));
                    drop_sum += baseline - f1;
                }
                // Safety: each column index is handed out exactly once, and
                // the one-element slots are pairwise disjoint.
                unsafe { writer.slice_mut(col, 1)[0] = (drop_sum / repeats as f64).max(0.0) };
            });
        }
        FeatureImportanceReport::from_scores(feature_names, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featuregen::{FeatureGenerator, FeatureScheme};
    use crate::pipeline::EmPipelineConfig;
    use crate::PreparedDataset;
    use em_data::Benchmark;

    fn fitted_on_restaurants() -> (FittedEmPipeline, PreparedDataset) {
        let ds = Benchmark::FodorsZagats.generate_scaled(0, 0.4);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 0);
        let (xt, yt) = prep.train();
        let fitted = EmPipelineConfig::default_random_forest(0).fit(&xt, &yt);
        (fitted, prep)
    }

    #[test]
    fn impurity_report_covers_all_features_and_sums_to_one() {
        let (fitted, prep) = fitted_on_restaurants();
        let names = prep.generator.feature_names();
        let report = fitted
            .impurity_importances(&names)
            .expect("RF has importances");
        assert_eq!(report.entries.len(), names.len());
        let total: f64 = report.entries.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in report.entries.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn name_similarities_matter_for_restaurant_matching() {
        let (fitted, prep) = fitted_on_restaurants();
        let names = prep.generator.feature_names();
        let report = fitted.impurity_importances(&names).unwrap();
        // Some name- or address-based similarity should rank in the top 5.
        let top: Vec<&str> = report.top(5).iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            top.iter()
                .any(|n| n.starts_with("name_") || n.starts_with("address_")),
            "top-5 was {top:?}"
        );
    }

    #[test]
    fn selector_mapping_zeroes_dropped_features() {
        use crate::pipeline::PreprocessorChoice;
        use em_ml::featsel::ScoreFunc;
        let ds = Benchmark::FodorsZagats.generate_scaled(1, 0.4);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 1);
        let (xt, yt) = prep.train();
        let config = EmPipelineConfig {
            preprocessor: PreprocessorChoice::SelectPercentile {
                score: ScoreFunc::FClassif,
                percentile: 30.0,
            },
            ..EmPipelineConfig::default_random_forest(1)
        };
        let fitted = config.fit(&xt, &yt);
        let names = prep.generator.feature_names();
        let report = fitted.impurity_importances(&names).unwrap();
        let zeros = report.entries.iter().filter(|(_, s)| *s == 0.0).count();
        // ~70% of features were dropped, so most entries are exactly zero.
        assert!(zeros >= names.len() / 2, "{zeros} zero entries");
    }

    #[test]
    fn pca_pipeline_returns_none_for_impurity_importances() {
        use crate::pipeline::PreprocessorChoice;
        let ds = Benchmark::FodorsZagats.generate_scaled(2, 0.3);
        let prep = PreparedDataset::prepare(&ds, FeatureScheme::AutoMlEm, 2);
        let (xt, yt) = prep.train();
        let config = EmPipelineConfig {
            preprocessor: PreprocessorChoice::Pca {
                components_fraction: 0.8,
            },
            ..EmPipelineConfig::default_random_forest(2)
        };
        let fitted = config.fit(&xt, &yt);
        assert!(fitted
            .impurity_importances(&prep.generator.feature_names())
            .is_none());
    }

    #[test]
    fn permutation_importance_flags_the_only_signal_feature() {
        // Column 0 carries the class; column 1 is noise. With a single
        // informative feature, shuffling it must crater F1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let noise = ((i * 7) % 13) as f64 / 13.0;
            rows.push(vec![c as f64 + 0.1 * noise, noise]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let fitted = EmPipelineConfig::default_random_forest(0).fit(&x, &y);
        let names = vec!["signal".to_string(), "noise".to_string()];
        let report = fitted.permutation_importances(&x, &y, &names, 3, 0);
        assert_eq!(report.entries[0].0, "signal");
        assert!(report.entries[0].1 > 0.2, "{:?}", report.entries);
        assert!(report.entries.iter().all(|(_, s)| *s >= 0.0));
    }

    #[test]
    fn permutation_importance_runs_on_real_pipelines() {
        // On a redundant 84-feature space the drops may all be ~0 (the
        // forest routes around any single shuffled column); the report must
        // still be complete and non-negative.
        let (fitted, prep) = fitted_on_restaurants();
        let names = prep.generator.feature_names();
        let (xv, yv) = prep.valid();
        let report = fitted.permutation_importances(&xv, &yv, &names, 1, 0);
        assert_eq!(report.entries.len(), names.len());
        assert!(report.entries.iter().all(|(_, s)| *s >= 0.0));
    }

    #[test]
    fn report_display_is_readable() {
        let report = FeatureImportanceReport::from_scores(
            &["b".to_string(), "a".to_string()],
            vec![0.25, 0.75],
        );
        let text = report.to_string();
        let first_line = text.lines().next().unwrap();
        assert!(first_line.contains('a') && first_line.contains("0.75"));
    }

    #[test]
    fn works_for_magellan_scheme_names_too() {
        let ds = Benchmark::AbtBuy.generate_scaled(3, 0.05);
        let gen =
            FeatureGenerator::plan_for_tables(FeatureScheme::Magellan, &ds.table_a, &ds.table_b);
        assert!(gen.feature_names().iter().all(|n| n.contains('_')));
    }
}
