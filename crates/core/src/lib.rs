//! # automl-em — Automating Entity Matching Model Development
//!
//! A from-scratch Rust reproduction of the ICDE 2021 paper "Automating
//! Entity Matching Model Development" (Wang, Zheng, Wang, Pei): automated
//! development of the *matching-phase* model of an entity-matching system.
//!
//! The crate contributes three layers on top of the `em-text` / `em-table` /
//! `em-ml` / `em-automl` substrates:
//!
//! 1. **Feature generation** ([`featuregen`]) — Magellan's type-dependent
//!    rules (paper Table I) and AutoML-EM's exhaustive rules (Table II)
//!    turning record pairs into numeric similarity vectors.
//! 2. **AutoML-EM** ([`AutoMlEm`]) — pipeline search over balancing →
//!    imputation → rescaling → feature preprocessing → classifier +
//!    hyperparameters (Figures 4/5/11), driven by SMAC/TPE/random search.
//! 3. **AutoML-EM-Active** ([`AutoMlEmActive`]) — Algorithm 1: hybrid
//!    active learning (low tree-agreement pairs → human) and self-training
//!    (high-agreement pairs → free machine labels, class-ratio preserved).
//!
//! ## Quickstart
//!
//! ```
//! use automl_em::{AutoMlEmOptions, FeatureScheme, PreparedDataset};
//! use em_automl::Budget;
//! use em_data::Benchmark;
//!
//! // A scaled-down synthetic stand-in for the Fodors-Zagats benchmark.
//! let dataset = Benchmark::FodorsZagats.generate_scaled(7, 0.25);
//! let prepared = PreparedDataset::prepare(&dataset, FeatureScheme::AutoMlEm, 7);
//! let options = AutoMlEmOptions { budget: Budget::Evaluations(4), ..Default::default() };
//! let (valid_f1, test_f1, result) = prepared.run_automl(options);
//! assert!(valid_f1 > 0.0 && test_f1 > 0.0);
//! println!("{}", result.best_configuration); // Figure-11 style dump
//! ```

pub mod active;
pub mod automl_em;
pub mod explain;
pub mod featcache;
pub mod featuregen;
pub mod oracle;
pub mod pipeline;
pub mod space;

pub use active::{
    ActiveConfig, ActiveRunResult, AutoMlEmActive, IterationStats, LabeledSet, QueryStrategy,
};
pub use automl_em::{AutoMlEm, AutoMlEmOptions, AutoMlEmResult, PreparedDataset, SearchChoice};
pub use explain::FeatureImportanceReport;
pub use featcache::FeatureCache;
pub use featuregen::{
    all_string_similarities, magellan_string_similarities, numeric_similarities, FeatureGenerator,
    FeatureKind, FeatureScheme, FeatureSpec,
};
pub use oracle::{GroundTruthOracle, NoisyOracle, Oracle};
pub use pipeline::{
    decode_configuration, ClassifierChoice, EmPipelineConfig, FittedEmPipeline, FittedTransform,
    PreprocessorChoice,
};
pub use space::{build_space, default_configuration, ModelSpace, SpaceOptions};
