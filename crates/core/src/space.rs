//! The AutoML-EM search space (paper Figures 4/5): data preprocessing,
//! feature preprocessing, model selection, and per-model hyperparameters as
//! a conditional [`ConfigSpace`]. The model-space switch implements §III-C:
//! random-forest-only (the AutoML-EM default) versus all models
//! (the "all-model" baseline of Figure 10).

use em_automl::{ConfigSpace, Domain};

/// Which classifiers participate in model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpace {
    /// Only random forest (paper §III-C: "we only include the random forest
    /// in the model repository").
    RandomForestOnly,
    /// The full auto-sklearn-style model repository.
    AllModels,
}

/// Options controlling which modules the space contains — the switches the
/// Figure 9 (feature-processing-only search) and Figure 12 (ablation)
/// experiments flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceOptions {
    /// Classifier repertoire.
    pub model_space: ModelSpace,
    /// Include balancing + rescaling choices (data preprocessing).
    pub data_preprocessing: bool,
    /// Include the feature-preprocessor choice.
    pub feature_preprocessing: bool,
    /// Include per-model hyperparameters (off = defaults only).
    pub hyperparameters: bool,
}

impl Default for SpaceOptions {
    fn default() -> Self {
        SpaceOptions {
            model_space: ModelSpace::RandomForestOnly,
            data_preprocessing: true,
            feature_preprocessing: true,
            hyperparameters: true,
        }
    }
}

/// Build the AutoML-EM configuration space.
pub fn build_space(options: SpaceOptions) -> ConfigSpace {
    let mut s = ConfigSpace::new();
    // --- Data preprocessing ---
    if options.data_preprocessing {
        s.add(
            "balancing:strategy",
            Domain::Categorical(vec!["none".into(), "weighting".into()]),
        );
        s.add(
            "imputation:strategy",
            Domain::Categorical(vec!["mean".into(), "median".into(), "most_frequent".into()]),
        );
        s.add(
            "rescaling:__choice__",
            Domain::Categorical(vec![
                "none".into(),
                "standardize".into(),
                "minmax".into(),
                "robust_scaler".into(),
            ]),
        );
        s.add_conditional(
            "rescaling:robust_scaler:q_min",
            Domain::Float {
                lo: 0.001,
                hi: 0.3,
                log: false,
            },
            "rescaling:__choice__",
            ["robust_scaler"],
        );
        s.add_conditional(
            "rescaling:robust_scaler:q_max",
            Domain::Float {
                lo: 0.7,
                hi: 0.999,
                log: false,
            },
            "rescaling:__choice__",
            ["robust_scaler"],
        );
    } else {
        s.add(
            "imputation:strategy",
            Domain::Categorical(vec!["mean".into(), "median".into(), "most_frequent".into()]),
        );
    }
    // --- Feature preprocessing ---
    if options.feature_preprocessing {
        s.add(
            "preprocessor:__choice__",
            Domain::Categorical(vec![
                "no_preprocessing".into(),
                "select_percentile_classification".into(),
                "select_rates".into(),
                "variance_threshold".into(),
                "pca".into(),
                "feature_agglomeration".into(),
            ]),
        );
        s.add_conditional(
            "preprocessor:select_percentile:percentile",
            Domain::Float {
                lo: 1.0,
                hi: 99.0,
                log: false,
            },
            "preprocessor:__choice__",
            ["select_percentile_classification"],
        );
        s.add_conditional(
            "preprocessor:select_percentile:score_func",
            Domain::Categorical(vec!["f_classif".into(), "chi2".into()]),
            "preprocessor:__choice__",
            ["select_percentile_classification"],
        );
        s.add_conditional(
            "preprocessor:select_rates:alpha",
            Domain::Float {
                lo: 0.01,
                hi: 0.5,
                log: false,
            },
            "preprocessor:__choice__",
            ["select_rates"],
        );
        s.add_conditional(
            "preprocessor:select_rates:mode",
            Domain::Categorical(vec!["fpr".into(), "fdr".into(), "fwe".into()]),
            "preprocessor:__choice__",
            ["select_rates"],
        );
        s.add_conditional(
            "preprocessor:select_rates:score_func",
            Domain::Categorical(vec!["f_classif".into(), "chi2".into()]),
            "preprocessor:__choice__",
            ["select_rates"],
        );
        s.add_conditional(
            "preprocessor:variance_threshold:threshold",
            Domain::Float {
                lo: 0.0,
                hi: 0.05,
                log: false,
            },
            "preprocessor:__choice__",
            ["variance_threshold"],
        );
        s.add_conditional(
            "preprocessor:pca:keep_fraction",
            Domain::Float {
                lo: 0.5,
                hi: 0.999,
                log: false,
            },
            "preprocessor:__choice__",
            ["pca"],
        );
        s.add_conditional(
            "preprocessor:feature_agglomeration:cluster_fraction",
            Domain::Float {
                lo: 0.1,
                hi: 0.9,
                log: false,
            },
            "preprocessor:__choice__",
            ["feature_agglomeration"],
        );
    }
    // --- Model selection ---
    let classifiers: Vec<String> = match options.model_space {
        ModelSpace::RandomForestOnly => vec!["random_forest".into()],
        ModelSpace::AllModels => vec![
            "random_forest".into(),
            "extra_trees".into(),
            "decision_tree".into(),
            "adaboost".into(),
            "gradient_boosting".into(),
            "logistic_regression".into(),
            "linear_svm".into(),
            "k_nearest_neighbors".into(),
            "gaussian_nb".into(),
        ],
    };
    s.add("classifier:__choice__", Domain::Categorical(classifiers));
    if !options.hyperparameters {
        return s;
    }
    // --- Hyperparameters (ranges mirror auto-sklearn / paper Fig. 11) ---
    s.add_conditional(
        "classifier:random_forest:criterion",
        Domain::Categorical(vec!["gini".into(), "entropy".into()]),
        "classifier:__choice__",
        ["random_forest"],
    );
    s.add_conditional(
        "classifier:random_forest:max_features",
        Domain::Float {
            lo: 0.05,
            hi: 1.0,
            log: false,
        },
        "classifier:__choice__",
        ["random_forest"],
    );
    s.add_conditional(
        "classifier:random_forest:min_samples_split",
        Domain::Int {
            lo: 2,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["random_forest"],
    );
    s.add_conditional(
        "classifier:random_forest:min_samples_leaf",
        Domain::Int {
            lo: 1,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["random_forest"],
    );
    s.add_conditional(
        "classifier:random_forest:bootstrap",
        Domain::Categorical(vec!["True".into(), "False".into()]),
        "classifier:__choice__",
        ["random_forest"],
    );
    if options.model_space == ModelSpace::RandomForestOnly {
        return s;
    }
    s.add_conditional(
        "classifier:extra_trees:criterion",
        Domain::Categorical(vec!["gini".into(), "entropy".into()]),
        "classifier:__choice__",
        ["extra_trees"],
    );
    s.add_conditional(
        "classifier:extra_trees:max_features",
        Domain::Float {
            lo: 0.05,
            hi: 1.0,
            log: false,
        },
        "classifier:__choice__",
        ["extra_trees"],
    );
    s.add_conditional(
        "classifier:extra_trees:min_samples_leaf",
        Domain::Int {
            lo: 1,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["extra_trees"],
    );
    s.add_conditional(
        "classifier:decision_tree:criterion",
        Domain::Categorical(vec!["gini".into(), "entropy".into()]),
        "classifier:__choice__",
        ["decision_tree"],
    );
    s.add_conditional(
        "classifier:decision_tree:max_depth",
        Domain::Int {
            lo: 1,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["decision_tree"],
    );
    s.add_conditional(
        "classifier:decision_tree:min_samples_split",
        Domain::Int {
            lo: 2,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["decision_tree"],
    );
    s.add_conditional(
        "classifier:decision_tree:min_samples_leaf",
        Domain::Int {
            lo: 1,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["decision_tree"],
    );
    s.add_conditional(
        "classifier:adaboost:n_estimators",
        Domain::Int {
            lo: 20,
            hi: 200,
            log: true,
        },
        "classifier:__choice__",
        ["adaboost"],
    );
    s.add_conditional(
        "classifier:adaboost:learning_rate",
        Domain::Float {
            lo: 0.01,
            hi: 2.0,
            log: true,
        },
        "classifier:__choice__",
        ["adaboost"],
    );
    s.add_conditional(
        "classifier:adaboost:max_depth",
        Domain::Int {
            lo: 1,
            hi: 10,
            log: false,
        },
        "classifier:__choice__",
        ["adaboost"],
    );
    s.add_conditional(
        "classifier:gradient_boosting:n_estimators",
        Domain::Int {
            lo: 30,
            hi: 300,
            log: true,
        },
        "classifier:__choice__",
        ["gradient_boosting"],
    );
    s.add_conditional(
        "classifier:gradient_boosting:learning_rate",
        Domain::Float {
            lo: 0.01,
            hi: 1.0,
            log: true,
        },
        "classifier:__choice__",
        ["gradient_boosting"],
    );
    s.add_conditional(
        "classifier:gradient_boosting:max_depth",
        Domain::Int {
            lo: 1,
            hi: 8,
            log: false,
        },
        "classifier:__choice__",
        ["gradient_boosting"],
    );
    s.add_conditional(
        "classifier:gradient_boosting:min_samples_leaf",
        Domain::Int {
            lo: 1,
            hi: 20,
            log: false,
        },
        "classifier:__choice__",
        ["gradient_boosting"],
    );
    s.add_conditional(
        "classifier:gradient_boosting:subsample",
        Domain::Float {
            lo: 0.5,
            hi: 1.0,
            log: false,
        },
        "classifier:__choice__",
        ["gradient_boosting"],
    );
    s.add_conditional(
        "classifier:logistic_regression:alpha",
        Domain::Float {
            lo: 1e-7,
            hi: 1e-1,
            log: true,
        },
        "classifier:__choice__",
        ["logistic_regression"],
    );
    s.add_conditional(
        "classifier:linear_svm:lambda",
        Domain::Float {
            lo: 1e-6,
            hi: 1e-1,
            log: true,
        },
        "classifier:__choice__",
        ["linear_svm"],
    );
    s.add_conditional(
        "classifier:k_nearest_neighbors:k",
        Domain::Int {
            lo: 1,
            hi: 50,
            log: true,
        },
        "classifier:__choice__",
        ["k_nearest_neighbors"],
    );
    s.add_conditional(
        "classifier:k_nearest_neighbors:weights",
        Domain::Categorical(vec!["uniform".into(), "distance".into()]),
        "classifier:__choice__",
        ["k_nearest_neighbors"],
    );
    s.add_conditional(
        "classifier:gaussian_nb:var_smoothing",
        Domain::Float {
            lo: 1e-12,
            hi: 1e-6,
            log: true,
        },
        "classifier:__choice__",
        ["gaussian_nb"],
    );
    s
}

/// An in-space "sensible default" configuration used to warm-start the
/// search (auto-sklearn seeds its SMAC run with meta-learned defaults; with
/// no meta-data available, the sklearn defaults are the portfolio): no
/// balancing, mean imputation, no rescaling, no feature preprocessing, and
/// a random forest close to sklearn's defaults.
pub fn default_configuration(options: SpaceOptions) -> em_automl::Configuration {
    use em_automl::ParamValue;
    let mut values: Vec<(String, ParamValue)> = Vec::new();
    values.push(("imputation:strategy".into(), ParamValue::Cat("mean".into())));
    if options.data_preprocessing {
        values.push(("balancing:strategy".into(), ParamValue::Cat("none".into())));
        values.push((
            "rescaling:__choice__".into(),
            ParamValue::Cat("none".into()),
        ));
    }
    if options.feature_preprocessing {
        values.push((
            "preprocessor:__choice__".into(),
            ParamValue::Cat("no_preprocessing".into()),
        ));
    }
    values.push((
        "classifier:__choice__".into(),
        ParamValue::Cat("random_forest".into()),
    ));
    if options.hyperparameters {
        values.push((
            "classifier:random_forest:criterion".into(),
            ParamValue::Cat("gini".into()),
        ));
        // sklearn's default is sqrt(d); the space encodes max_features as a
        // fraction, and sqrt(d)/d ≈ 0.1-0.2 at EM dimensionalities.
        values.push((
            "classifier:random_forest:max_features".into(),
            ParamValue::Float(0.15),
        ));
        values.push((
            "classifier:random_forest:min_samples_split".into(),
            ParamValue::Int(2),
        ));
        values.push((
            "classifier:random_forest:min_samples_leaf".into(),
            ParamValue::Int(1),
        ));
        values.push((
            "classifier:random_forest:bootstrap".into(),
            ParamValue::Cat("True".into()),
        ));
    }
    em_automl::Configuration::from_map(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::decode_configuration;
    use em_rt::StdRng;

    #[test]
    fn rf_only_space_always_selects_random_forest() {
        let space = build_space(SpaceOptions::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            assert_eq!(c.get_str("classifier:__choice__"), Some("random_forest"));
        }
    }

    #[test]
    fn all_model_space_reaches_every_classifier() {
        let space = build_space(SpaceOptions {
            model_space: ModelSpace::AllModels,
            ..SpaceOptions::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let c = space.sample(&mut rng);
            seen.insert(c.get_str("classifier:__choice__").unwrap().to_owned());
        }
        assert_eq!(seen.len(), 9, "saw only {seen:?}");
    }

    #[test]
    fn all_samples_decode_into_pipelines() {
        for options in [
            SpaceOptions::default(),
            SpaceOptions {
                model_space: ModelSpace::AllModels,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                data_preprocessing: false,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                feature_preprocessing: false,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                hyperparameters: false,
                ..SpaceOptions::default()
            },
        ] {
            let space = build_space(options);
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..100 {
                let c = space.sample(&mut rng);
                space.validate(&c).unwrap();
                // Decoding must never panic on a valid sample.
                let _ = decode_configuration(&c, 0);
            }
        }
    }

    #[test]
    fn dp_off_space_has_no_balancing_or_rescaling() {
        let space = build_space(SpaceOptions {
            data_preprocessing: false,
            ..SpaceOptions::default()
        });
        assert!(space.get("balancing:strategy").is_none());
        assert!(space.get("rescaling:__choice__").is_none());
        // Imputation must survive: EM vectors always contain NaN.
        assert!(space.get("imputation:strategy").is_some());
    }

    #[test]
    fn fp_off_space_has_no_preprocessor() {
        let space = build_space(SpaceOptions {
            feature_preprocessing: false,
            ..SpaceOptions::default()
        });
        assert!(space.get("preprocessor:__choice__").is_none());
    }

    #[test]
    fn default_configuration_is_valid_in_every_space_variant() {
        for options in [
            SpaceOptions::default(),
            SpaceOptions {
                model_space: ModelSpace::AllModels,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                data_preprocessing: false,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                feature_preprocessing: false,
                ..SpaceOptions::default()
            },
            SpaceOptions {
                hyperparameters: false,
                ..SpaceOptions::default()
            },
        ] {
            let space = build_space(options);
            let config = default_configuration(options);
            space
                .validate(&config)
                .unwrap_or_else(|e| panic!("{options:?}: {e}"));
        }
    }

    #[test]
    fn search_space_size_grows_with_all_models() {
        let rf = build_space(SpaceOptions::default());
        let all = build_space(SpaceOptions {
            model_space: ModelSpace::AllModels,
            ..SpaceOptions::default()
        });
        assert!(all.len() > rf.len() + 10);
    }
}
