//! Labeling oracles: the "human" in the active-learning loop. The paper's
//! experiments (and ours) simulate the human with gold labels while charging
//! each query against the labeling budget.

/// A labeling oracle answers match/non-match queries about pool items.
pub trait Oracle {
    /// Label pool item `index` (`true` = matching). Each call counts as one
    /// human label.
    fn label(&mut self, index: usize) -> bool;

    /// Number of labels issued so far.
    fn queries(&self) -> usize;
}

/// Oracle backed by gold labels (the standard active-learning evaluation
/// setup).
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    labels: Vec<bool>,
    queries: usize,
}

impl GroundTruthOracle {
    /// Wrap a gold-label vector.
    pub fn new(labels: Vec<bool>) -> Self {
        GroundTruthOracle { labels, queries: 0 }
    }

    /// Convenience constructor from 0/1 class labels.
    pub fn from_classes(y: &[usize]) -> Self {
        Self::new(y.iter().map(|&c| c == 1).collect())
    }
}

impl Oracle for GroundTruthOracle {
    fn label(&mut self, index: usize) -> bool {
        self.queries += 1;
        self.labels[index]
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

/// Oracle that flips each gold label with a fixed probability — for studying
/// robustness to annotator error (an extension beyond the paper).
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    truth: Vec<bool>,
    flip_probability: f64,
    queries: usize,
    rng_state: u64,
}

impl NoisyOracle {
    /// Wrap gold labels with a per-query flip probability.
    pub fn new(truth: Vec<bool>, flip_probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&flip_probability));
        NoisyOracle {
            truth,
            flip_probability,
            queries: 0,
            rng_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// xorshift64* — a tiny deterministic stream independent of `rand`.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Oracle for NoisyOracle {
    fn label(&mut self, index: usize) -> bool {
        self.queries += 1;
        let truth = self.truth[index];
        if self.next_unit() < self.flip_probability {
            !truth
        } else {
            truth
        }
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_counts_queries() {
        let mut o = GroundTruthOracle::from_classes(&[1, 0, 1]);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn noisy_oracle_zero_flip_is_exact() {
        let truth = vec![true, false, true, false];
        let mut o = NoisyOracle::new(truth.clone(), 0.0, 7);
        for (i, &t) in truth.iter().enumerate() {
            assert_eq!(o.label(i), t);
        }
    }

    #[test]
    fn noisy_oracle_full_flip_inverts() {
        let truth = vec![true, false];
        let mut o = NoisyOracle::new(truth.clone(), 1.0, 7);
        assert!(!o.label(0));
        assert!(o.label(1));
    }

    #[test]
    fn noisy_oracle_flip_rate_is_approximate() {
        let truth = vec![true; 2000];
        let mut o = NoisyOracle::new(truth, 0.3, 11);
        let flipped = (0..2000).filter(|&i| !o.label(i)).count();
        let rate = flipped as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }
}
