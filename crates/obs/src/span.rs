//! Hierarchical spans with per-thread shard buffers.
//!
//! A [`SpanGuard`] stamps a monotonic begin time on construction and pushes
//! a finished record on drop into the *current thread's* shard — an
//! `Arc<Mutex<Vec<SpanRec>>>` that only this thread ever locks on the hot
//! path (the global registry holds the other reference, touched only at
//! flush time and on the rare shard overflow drain). Parent/child nesting
//! is tracked with a thread-local cell holding the innermost open span id.
//!
//! Span ids are allocated from a global counter and are observational only:
//! nothing reads them back into computation, so their (scheduling-
//! dependent) allocation order cannot perturb determinism.

use crate::write_record;
use em_rt::stats::now_ns;
use em_rt::Json;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Records buffered per thread before an eager drain to the sink. Bounds
/// memory for span-heavy runs without a flush call.
const SHARD_DRAIN_LEN: usize = 4096;

struct SpanRec {
    name: &'static str,
    id: u64,
    parent: u64,
    t0: u64,
    t1: u64,
}

type Shard = Arc<Mutex<Vec<SpanRec>>>;

struct ThreadEntry {
    tid: u64,
    name: String,
    shard: Shard,
}

static REGISTRY: Mutex<Vec<ThreadEntry>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// 0 is reserved as "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: (u64, Shard) = register_thread();
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

fn register_thread() -> (u64, Shard) {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let shard: Shard = Arc::new(Mutex::new(Vec::new()));
    let name = std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_string();
    REGISTRY.lock().unwrap().push(ThreadEntry {
        tid,
        name,
        shard: Arc::clone(&shard),
    });
    (tid, shard)
}

/// Stable small integer identifying the calling thread in trace records
/// (`"kind":"thread"` records map it to the thread's name at flush).
pub fn thread_id() -> u64 {
    LOCAL.with(|(tid, _)| *tid)
}

/// RAII span: times `[begin, drop)` and records nesting. Construct through
/// the [`span!`](crate::span!) macro.
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    prev: u64,
    t0: u64,
    active: bool,
}

impl SpanGuard {
    /// Open a span (inactive and free when tracing is off).
    pub fn begin(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                name,
                id: 0,
                prev: 0,
                t0: 0,
                active: false,
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_PARENT.with(|c| c.replace(id));
        SpanGuard {
            name,
            id,
            prev,
            t0: now_ns(),
            active: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let t1 = now_ns();
        CURRENT_PARENT.with(|c| c.set(self.prev));
        LOCAL.with(|(tid, shard)| {
            let mut buf = shard.lock().unwrap();
            buf.push(SpanRec {
                name: self.name,
                id: self.id,
                parent: self.prev,
                t0: self.t0,
                t1,
            });
            if buf.len() >= SHARD_DRAIN_LEN {
                let drained: Vec<SpanRec> = buf.drain(..).collect();
                drop(buf);
                write_span_records(*tid, &drained);
            }
        });
    }
}

fn write_span_records(tid: u64, records: &[SpanRec]) {
    for r in records {
        write_record(&Json::obj([
            ("kind", Json::from("span")),
            ("name", Json::from(r.name)),
            ("id", Json::from(r.id)),
            ("parent", Json::from(r.parent)),
            ("t0", Json::from(r.t0)),
            ("t1", Json::from(r.t1)),
            ("thread", Json::from(tid)),
        ]));
    }
}

/// Drain every thread's shard into the sink, preceded by `thread` records
/// mapping ids to names. Called from [`flush`](crate::flush).
pub(crate) fn flush_shards() {
    let registry = REGISTRY.lock().unwrap();
    for entry in registry.iter() {
        write_record(&Json::obj([
            ("kind", Json::from("thread")),
            ("id", Json::from(entry.tid)),
            ("name", Json::from(entry.name.as_str())),
        ]));
        let drained: Vec<SpanRec> = entry.shard.lock().unwrap().drain(..).collect();
        write_span_records(entry.tid, &drained);
    }
}
