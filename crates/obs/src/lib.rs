//! `em-obs` — zero-dependency observability for the AutoML-EM workspace.
//!
//! The paper's story (Figures 8–10) is about *where time and quality go*
//! during pipeline search; this crate makes the reproduction tell that story
//! itself. Three primitives, in the spirit of `em-rt`:
//!
//! * [`span!`] — hierarchical spans with monotonic timing. A span is an RAII
//!   guard; finished spans land in a per-thread shard buffer (one
//!   uncontended mutex per thread, drained in bulk), so the hot paths of a
//!   search never serialize on a global lock.
//! * [`Counter`] / [`Histogram`] — domain metrics (candidate pairs emitted,
//!   surrogate refits, …) as `static` items with fixed log2-scale buckets,
//!   registered lazily on first touch.
//! * [`event`] — a structured, low-frequency event log: search-trajectory
//!   events (suggestion, eval start/finish, incumbent updates, per-fold F1),
//!   active-learning loop events, pool lifecycle. Events serialize
//!   immediately as JSONL through `em-rt`'s [`Json`] value.
//!
//! The sink is chosen by `EM_TRACE`: a file path, `stderr`, or `off`
//! (default). When off, every instrumentation site costs one relaxed atomic
//! load and allocates nothing. [`flush`] drains the span shards, metric
//! registries, and the runtime's own counters (`em_rt::stats`) into the
//! sink, closing the trace with `pool` / `channel` / `meta` summary records
//! that `obs_report` (in `em-bench`) renders into per-stage and
//! pool-utilization tables.
//!
//! Determinism contract: tracing *observes* execution and never feeds back
//! into it — timestamps, ids, and counts are recorded but no code path
//! branches on them — so enabling `EM_TRACE` cannot change any computed
//! bit. `crates/core/tests/determinism.rs` enforces this.

use em_rt::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

pub mod live;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{Counter, Histogram};
pub use span::SpanGuard;

/// Where trace records go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMode {
    /// No tracing; every instrumentation site is a single atomic check.
    Off,
    /// JSONL records to standard error, interleaved with normal logging.
    Stderr,
    /// JSONL records to the given file (truncated on open).
    File(String),
}

enum SinkTarget {
    Stderr,
    File(BufWriter<File>),
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static SINK: Mutex<Option<SinkTarget>> = Mutex::new(None);

/// Whether tracing is active. Inlined to a relaxed load after the one-time
/// `EM_TRACE` environment lookup.
#[inline]
pub fn enabled() -> bool {
    if !ENV_INIT.is_completed() {
        init_from_env();
    }
    ENABLED.load(Ordering::Relaxed)
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let mode = match std::env::var("EM_TRACE") {
            Err(_) => TraceMode::Off,
            Ok(v) => match v.trim() {
                "" | "off" | "0" => TraceMode::Off,
                "stderr" => TraceMode::Stderr,
                path => TraceMode::File(path.to_string()),
            },
        };
        apply_mode(mode);
    });
}

/// Select the trace sink programmatically, overriding (and pre-empting) the
/// `EM_TRACE` environment lookup. Used by tests and embedding applications;
/// most binaries just set the environment variable.
pub fn set_mode(mode: TraceMode) {
    // Consume the one-shot env init so it can never override this choice.
    ENV_INIT.call_once(|| {});
    apply_mode(mode);
}

fn apply_mode(mode: TraceMode) {
    let mut sink = SINK.lock().unwrap();
    if let Some(SinkTarget::File(w)) = sink.as_mut() {
        let _ = w.flush();
    }
    *sink = match &mode {
        TraceMode::Off => None,
        TraceMode::Stderr => Some(SinkTarget::Stderr),
        TraceMode::File(path) if std::path::Path::new(path).is_dir() => {
            eprintln!("em-obs: EM_TRACE path {path} is a directory, not a file; tracing disabled");
            None
        }
        TraceMode::File(path) => match File::create(path) {
            Ok(f) => Some(SinkTarget::File(BufWriter::new(f))),
            Err(e) => {
                eprintln!("em-obs: cannot open trace file {path}: {e}; tracing disabled");
                None
            }
        },
    };
    let on = sink.is_some();
    drop(sink);
    ENABLED.store(on, Ordering::Relaxed);
    // The runtime collects its own counters (queue wait, busy time, channel
    // traffic) whenever a sink is active; `flush` snapshots them. Live
    // telemetry pollers read the same counters, so the switch stays on while
    // either layer is active.
    em_rt::stats::set_enabled(on || live::enabled());
}

/// Serialize one record to the active sink. No-op when tracing is off.
pub(crate) fn write_record(record: &Json) {
    let line = record.render();
    let mut sink = SINK.lock().unwrap();
    match sink.as_mut() {
        None => {}
        Some(SinkTarget::Stderr) => eprintln!("{line}"),
        Some(SinkTarget::File(w)) => {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// Log a structured event. The field closure is only evaluated when tracing
/// is enabled, so call sites stay allocation-free in the default
/// configuration:
///
/// ```
/// em_obs::event("search.incumbent", || vec![("score", em_rt::Json::from(0.93))]);
/// ```
///
/// Events are for low-frequency trajectory points (one per trial, fold, or
/// loop iteration); per-item hot paths should use spans or counters.
pub fn event<F>(name: &'static str, fields: F)
where
    F: FnOnce() -> Vec<(&'static str, Json)>,
{
    if !enabled() {
        return;
    }
    let mut obj: Vec<(String, Json)> = vec![
        ("kind".to_string(), Json::from("event")),
        ("event".to_string(), Json::from(name)),
        ("t".to_string(), Json::from(em_rt::stats::now_ns())),
        ("thread".to_string(), Json::from(span::thread_id())),
    ];
    for (k, v) in fields() {
        obj.push((k.to_string(), v));
    }
    write_record(&Json::Obj(obj));
}

/// Drain every buffer into the sink: span shards, counter/histogram
/// registries, the runtime's pool/channel statistics, and a closing `meta`
/// record. Binaries call this once before exit; it is idempotent and cheap
/// when tracing is off.
pub fn flush() {
    if !enabled() {
        return;
    }
    span::flush_shards();
    metrics::flush();
    let (pool, channel) = em_rt::stats::snapshot_json();
    write_record(&prepend_kind("pool", pool));
    write_record(&prepend_kind("channel", channel));
    write_record(&Json::obj([
        ("kind", Json::from("meta")),
        ("t", Json::from(em_rt::stats::now_ns())),
        ("threads", Json::from(em_rt::threads())),
        (
            "available_parallelism",
            Json::from(std::thread::available_parallelism().map_or(1, |p| p.get())),
        ),
    ]));
    let mut sink = SINK.lock().unwrap();
    if let Some(SinkTarget::File(w)) = sink.as_mut() {
        let _ = w.flush();
    }
}

fn prepend_kind(kind: &str, obj: Json) -> Json {
    let mut fields = vec![("kind".to_string(), Json::from(kind))];
    if let Json::Obj(rest) = obj {
        fields.extend(rest);
    }
    Json::Obj(fields)
}

/// Open a named span covering the enclosing scope:
///
/// ```
/// let _span = em_obs::span!("forest.fit");
/// ```
///
/// The guard records `[begin, drop)` with monotonic timestamps and the
/// current thread's innermost open span as its parent. When tracing is off
/// the expansion is a single atomic check.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name)
    };
}
