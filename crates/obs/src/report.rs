//! Trace aggregation: turn a JSONL trace back into the tables a human
//! wants — per-stage time breakdown and pool utilization. The `obs_report`
//! binary in `em-bench` is a thin CLI over [`parse_trace`] +
//! [`render_report`]; the logic lives here so it can be unit-tested.

use em_rt::Json;
use std::collections::HashMap;

/// Parse a JSONL trace (one record per line; blank lines ignored).
pub fn parse_trace(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| Json::parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Human-readable nanosecond duration.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn num(rec: &Json, key: &str) -> f64 {
    rec.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn kind(rec: &Json) -> &str {
    rec.get("kind").and_then(Json::as_str).unwrap_or("")
}

#[derive(Default)]
struct StageAgg {
    calls: u64,
    total_ns: f64,
    self_ns: f64,
}

/// Aggregate span records into per-stage rows, sorted by self time
/// descending. Self time = a span's duration minus its direct children's
/// durations (reconstructed from parent ids); totals overlap because spans
/// nest. Returns `(span_wall_ns, rows)`.
fn aggregate_stages(records: &[Json]) -> (f64, Vec<(&str, StageAgg)>) {
    let spans: Vec<&Json> = records.iter().filter(|r| kind(r) == "span").collect();
    let wall_ns = {
        let t0 = spans
            .iter()
            .map(|s| num(s, "t0"))
            .fold(f64::INFINITY, f64::min);
        let t1 = spans.iter().map(|s| num(s, "t1")).fold(0.0, f64::max);
        (t1 - t0).max(0.0)
    };
    let mut child_ns: HashMap<u64, f64> = HashMap::new();
    for s in &spans {
        let parent = num(s, "parent") as u64;
        if parent != 0 {
            *child_ns.entry(parent).or_default() += num(s, "t1") - num(s, "t0");
        }
    }
    let mut stages: HashMap<&str, StageAgg> = HashMap::new();
    for s in &spans {
        let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
        let dur = num(s, "t1") - num(s, "t0");
        let own = (dur - child_ns.get(&(num(s, "id") as u64)).copied().unwrap_or(0.0)).max(0.0);
        let agg = stages.entry(name).or_default();
        agg.calls += 1;
        agg.total_ns += dur;
        agg.self_ns += own;
    }
    let mut rows: Vec<(&str, StageAgg)> = stages.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.total_cmp(&a.1.self_ns));
    (wall_ns, rows)
}

/// Render a full text report from parsed trace records: per-stage time
/// breakdown (total and self time, spans nest), pool utilization
/// (busy/idle per worker, queue-wait quantiles), channel traffic, event
/// counts, and metric values.
pub fn render_report(records: &[Json]) -> String {
    let mut out = String::new();

    // ---- header: meta ------------------------------------------------------
    if let Some(meta) = records.iter().rev().find(|r| kind(r) == "meta") {
        out.push_str(&format!(
            "trace: {} records | threads={} available_parallelism={}\n\n",
            records.len(),
            num(meta, "threads"),
            num(meta, "available_parallelism"),
        ));
    } else {
        out.push_str(&format!("trace: {} records\n\n", records.len()));
    }

    // ---- per-stage breakdown ----------------------------------------------
    let (wall_ns, rows) = aggregate_stages(records);
    if rows.is_empty() {
        out.push_str("no span records (was the trace flushed?)\n");
    } else {
        out.push_str(&format!(
            "== per-stage time breakdown (span wall {} ) ==\n",
            fmt_ns(wall_ns)
        ));
        out.push_str(&format!(
            "{:<32} {:>7} {:>12} {:>12} {:>12} {:>7}\n",
            "stage", "calls", "total", "mean", "self", "self%"
        ));
        for (name, agg) in rows {
            let pct = if wall_ns > 0.0 {
                100.0 * agg.self_ns / wall_ns
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<32} {:>7} {:>12} {:>12} {:>12} {:>6.1}%\n",
                name,
                agg.calls,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.total_ns / agg.calls as f64),
                fmt_ns(agg.self_ns),
                pct
            ));
        }
    }

    // ---- pool utilization --------------------------------------------------
    if let Some(pool) = records.iter().rev().find(|r| kind(r) == "pool") {
        out.push_str(&format!(
            "\n== pool utilization ==\nworkers={} jobs={} inline_sections={} chunks_claimed={}\n",
            num(pool, "workers"),
            num(pool, "jobs"),
            num(pool, "inline_sections"),
            num(pool, "chunks_claimed"),
        ));
        if let Some(qw) = pool.get("queue_wait_ns") {
            out.push_str(&format!(
                "queue wait: n={} p50={} p99={}\n",
                num(qw, "count"),
                fmt_ns(num(qw, "p50")),
                fmt_ns(num(qw, "p99")),
            ));
        }
        if let Some(busy) = pool.get("busy").and_then(Json::as_arr) {
            if !busy.is_empty() && wall_ns > 0.0 {
                out.push_str(&format!(
                    "{:<12} {:>12} {:>7} {:>12}\n",
                    "thread", "busy", "busy%", "idle"
                ));
                for b in busy {
                    let ns = num(b, "busy_ns");
                    out.push_str(&format!(
                        "{:<12} {:>12} {:>6.1}% {:>12}\n",
                        b.get("thread").and_then(Json::as_str).unwrap_or("?"),
                        fmt_ns(ns),
                        100.0 * ns / wall_ns,
                        fmt_ns((wall_ns - ns).max(0.0)),
                    ));
                }
            }
        }
    }

    // ---- channel traffic ---------------------------------------------------
    if let Some(ch) = records.iter().rev().find(|r| kind(r) == "channel") {
        let sends = num(ch, "sends");
        if sends > 0.0 {
            out.push_str(&format!(
                "\n== channel traffic ==\nsends={} recvs={}",
                sends,
                num(ch, "recvs")
            ));
            if let Some(rw) = ch.get("recv_wait_ns") {
                out.push_str(&format!(
                    " | recv blocked: n={} p50={} p99={}",
                    num(rw, "count"),
                    fmt_ns(num(rw, "p50")),
                    fmt_ns(num(rw, "p99")),
                ));
            }
            out.push('\n');
        }
    }

    // ---- events ------------------------------------------------------------
    let mut event_counts: HashMap<&str, u64> = HashMap::new();
    for r in records {
        if kind(r) == "event" {
            *event_counts
                .entry(r.get("event").and_then(Json::as_str).unwrap_or("?"))
                .or_default() += 1;
        }
    }
    if !event_counts.is_empty() {
        out.push_str("\n== events ==\n");
        let mut rows: Vec<(&str, u64)> = event_counts.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        for (name, n) in rows {
            out.push_str(&format!("{name:<32} {n:>7}\n"));
        }
        // The incumbent trajectory, if the trace carries one.
        let incumbents: Vec<&Json> = records
            .iter()
            .filter(|r| {
                kind(r) == "event"
                    && r.get("event").and_then(Json::as_str) == Some("search.incumbent")
            })
            .collect();
        if let Some(last) = incumbents.last() {
            out.push_str(&format!(
                "search: {} incumbent update(s), best score {:.6} at trial {}\n",
                incumbents.len(),
                num(last, "score"),
                num(last, "trial"),
            ));
        }
    }

    // ---- feature cache -----------------------------------------------------
    // Counters are cumulative process statics and may be flushed more than
    // once; the largest observed value is the final one.
    let counter_val = |name: &str| -> Option<f64> {
        records
            .iter()
            .filter(|r| kind(r) == "counter" && r.get("name").and_then(Json::as_str) == Some(name))
            .map(|r| num(r, "value"))
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    };
    if let (Some(hits), Some(misses)) = (
        counter_val("featcache.memo_hits"),
        counter_val("featcache.memo_misses"),
    ) {
        out.push_str("\n== feature cache ==\n");
        out.push_str(&format!(
            "profiles built={} interned tokens={}\n",
            counter_val("featcache.profile_builds").unwrap_or(0.0),
            counter_val("featcache.interner_tokens").unwrap_or(0.0),
        ));
        let total = hits + misses;
        let rate = if total > 0.0 {
            100.0 * hits / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "memo lookups={total} hits={hits} misses={misses} hit rate={rate:.1}%\n"
        ));
        if let Some(evicted) = counter_val("featcache.evictions") {
            out.push_str(&format!("memo entries evicted={evicted}\n"));
        }
    }

    // ---- serving index -----------------------------------------------------
    if let Some(upserts) = counter_val("serve.index_upserts") {
        out.push_str("\n== serving index ==\n");
        out.push_str(&format!(
            "upserts={upserts} removals={} compactions={} stale recounts={}\n",
            counter_val("serve.index_removals").unwrap_or(0.0),
            counter_val("serve.index_compactions").unwrap_or(0.0),
            counter_val("serve.index_stale_recounts").unwrap_or(0.0),
        ));
        out.push_str(&format!(
            "probe: shard probes={} pruned tokens={} capped queries={}\n",
            counter_val("serve.index_shard_probes").unwrap_or(0.0),
            counter_val("serve.index_pruned_tokens").unwrap_or(0.0),
            counter_val("serve.index_capped_queries").unwrap_or(0.0),
        ));
        if let Some(appends) = counter_val("serve.store_appends") {
            out.push_str(&format!(
                "store: wal appends={appends} snapshots={} replayed={} torn tails={}\n",
                counter_val("serve.store_snapshots").unwrap_or(0.0),
                counter_val("serve.store_replayed").unwrap_or(0.0),
                counter_val("serve.store_torn_tails").unwrap_or(0.0),
            ));
        }
        if let Some(fetches) = counter_val("serve.catalog_fetches") {
            let hits = counter_val("serve.cache_hits").unwrap_or(0.0);
            let misses = counter_val("serve.cache_misses").unwrap_or(0.0);
            let looked = hits + misses;
            let rate = if looked > 0.0 {
                100.0 * hits / looked
            } else {
                0.0
            };
            out.push_str(&format!(
                "catalog: fetches={fetches} rows read={} hot-cache hits={hits}/{looked} ({rate:.1}%)\n",
                counter_val("serve.catalog_rows_read").unwrap_or(0.0),
            ));
        }
    }

    // ---- weak supervision --------------------------------------------------
    if let Some(pairs) = counter_val("weak.pairs_labeled") {
        out.push_str("\n== weak supervision ==\n");
        let covered = counter_val("weak.pairs_covered").unwrap_or(0.0);
        let conflicted = counter_val("weak.pairs_conflicted").unwrap_or(0.0);
        let pct = |part: f64| {
            if pairs > 0.0 {
                100.0 * part / pairs
            } else {
                0.0
            }
        };
        out.push_str(&format!(
            "pairs labeled={pairs} votes={} covered={covered} ({:.1}%) conflicted={conflicted} ({:.1}%)\n",
            counter_val("weak.lf_votes").unwrap_or(0.0),
            pct(covered),
            pct(conflicted),
        ));
        if let Some(fits) = counter_val("weak.label_model_fits") {
            out.push_str(&format!(
                "label model: fits={fits} EM iterations={}\n",
                counter_val("weak.label_model_iters").unwrap_or(0.0),
            ));
        }
        // Per-LF table from the `weak.lf` events (last record per LF name
        // wins — re-runs overwrite earlier stats, like counters do).
        let mut lf_rows: Vec<(&str, &Json)> = Vec::new();
        for r in records {
            if kind(r) == "event" && r.get("event").and_then(Json::as_str) == Some("weak.lf") {
                let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
                match lf_rows.iter_mut().find(|(n, _)| *n == name) {
                    Some(row) => row.1 = r,
                    None => lf_rows.push((name, r)),
                }
            }
        }
        if !lf_rows.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>10} {:>10}\n",
                "labeling function", "votes", "coverage", "accuracy", "propensity"
            ));
            for (name, r) in lf_rows {
                out.push_str(&format!(
                    "{name:<28} {:>8} {:>9.1}% {:>10.3} {:>10.3}\n",
                    num(r, "votes"),
                    100.0 * num(r, "coverage"),
                    num(r, "accuracy"),
                    num(r, "propensity"),
                ));
            }
        }
    }

    // ---- metrics -----------------------------------------------------------
    let counters: Vec<&Json> = records.iter().filter(|r| kind(r) == "counter").collect();
    let hists: Vec<&Json> = records.iter().filter(|r| kind(r) == "hist").collect();
    if !counters.is_empty() || !hists.is_empty() {
        out.push_str("\n== metrics ==\n");
        for c in counters {
            out.push_str(&format!(
                "{:<32} {:>12}\n",
                c.get("name").and_then(Json::as_str).unwrap_or("?"),
                num(c, "value"),
            ));
        }
        for h in hists {
            out.push_str(&format!(
                "{:<32} n={} p50={} p99={}",
                h.get("name").and_then(Json::as_str).unwrap_or("?"),
                num(h, "count"),
                num(h, "p50"),
                num(h, "p99"),
            ));
            // Exact observed range, when the trace carries it (older traces
            // predate min/max tracking).
            if h.get("min").and_then(Json::as_f64).is_some() {
                out.push_str(&format!(" min={} max={}", num(h, "min"), num(h, "max")));
            }
            out.push('\n');
        }
    }
    out
}

/// Machine-readable counterpart of [`render_report`]: aggregate the same
/// trace into one JSON object (per-stage self time, pool utilization with
/// busy fractions, channel traffic, event counts, search trajectory,
/// counter/histogram values) so CI and benches can diff summaries instead of
/// scraping the text tables. Counters keep the max across repeated flushes;
/// histograms keep the last record per name.
pub fn render_json(records: &[Json]) -> Json {
    let (wall_ns, rows) = aggregate_stages(records);
    let mut obj: Vec<(String, Json)> = vec![("records".to_string(), Json::from(records.len()))];
    if let Some(meta) = records.iter().rev().find(|r| kind(r) == "meta") {
        obj.push(("threads".to_string(), Json::from(num(meta, "threads"))));
        obj.push((
            "available_parallelism".to_string(),
            Json::from(num(meta, "available_parallelism")),
        ));
    }
    obj.push(("span_wall_ns".to_string(), Json::from(wall_ns)));
    obj.push((
        "stages".to_string(),
        Json::arr(rows.into_iter().map(|(name, agg)| {
            Json::obj([
                ("name", Json::from(name)),
                ("calls", Json::from(agg.calls)),
                ("total_ns", Json::from(agg.total_ns)),
                ("mean_ns", Json::from(agg.total_ns / agg.calls as f64)),
                ("self_ns", Json::from(agg.self_ns)),
                (
                    "self_frac",
                    Json::from(if wall_ns > 0.0 {
                        agg.self_ns / wall_ns
                    } else {
                        0.0
                    }),
                ),
            ])
        })),
    ));

    if let Some(Json::Obj(fields)) = records.iter().rev().find(|r| kind(r) == "pool") {
        let mut pool: Vec<(String, Json)> = Vec::new();
        for (k, v) in fields {
            if k == "kind" {
                continue;
            }
            if k == "busy" {
                if let Json::Arr(entries) = v {
                    // Attach the utilization fraction next to each thread's
                    // busy time (the text report's busy% column).
                    let arr = entries.iter().map(|b| {
                        let mut f = match b {
                            Json::Obj(f) => f.clone(),
                            _ => Vec::new(),
                        };
                        if wall_ns > 0.0 {
                            f.push((
                                "busy_frac".to_string(),
                                Json::from(num(b, "busy_ns") / wall_ns),
                            ));
                        }
                        Json::Obj(f)
                    });
                    pool.push(("busy".to_string(), Json::arr(arr)));
                    continue;
                }
            }
            pool.push((k.clone(), v.clone()));
        }
        obj.push(("pool".to_string(), Json::Obj(pool)));
    }
    if let Some(Json::Obj(fields)) = records.iter().rev().find(|r| kind(r) == "channel") {
        let ch: Vec<(String, Json)> = fields
            .iter()
            .filter(|(k, _)| k != "kind")
            .cloned()
            .collect();
        obj.push(("channel".to_string(), Json::Obj(ch)));
    }

    let mut event_counts: HashMap<&str, u64> = HashMap::new();
    for r in records {
        if kind(r) == "event" {
            *event_counts
                .entry(r.get("event").and_then(Json::as_str).unwrap_or("?"))
                .or_default() += 1;
        }
    }
    if !event_counts.is_empty() {
        let mut names: Vec<(&str, u64)> = event_counts.into_iter().collect();
        names.sort();
        obj.push((
            "events".to_string(),
            Json::Obj(
                names
                    .into_iter()
                    .map(|(n, c)| (n.to_string(), Json::from(c)))
                    .collect(),
            ),
        ));
    }
    let incumbents: Vec<&Json> = records
        .iter()
        .filter(|r| {
            kind(r) == "event" && r.get("event").and_then(Json::as_str) == Some("search.incumbent")
        })
        .collect();
    if let Some(last) = incumbents.last() {
        obj.push((
            "search".to_string(),
            Json::obj([
                ("incumbent_updates", Json::from(incumbents.len())),
                ("best_score", Json::from(num(last, "score"))),
                ("best_trial", Json::from(num(last, "trial"))),
            ]),
        ));
    }

    let mut counter_max: HashMap<&str, f64> = HashMap::new();
    for r in records {
        if kind(r) == "counter" {
            let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
            let v = num(r, "value");
            let e = counter_max.entry(name).or_insert(v);
            *e = e.max(v);
        }
    }
    if !counter_max.is_empty() {
        let mut rows: Vec<(&str, f64)> = counter_max.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        obj.push((
            "counters".to_string(),
            Json::Obj(
                rows.into_iter()
                    .map(|(n, v)| (n.to_string(), Json::from(v)))
                    .collect(),
            ),
        ));
    }
    // Weak supervision: per-LF stats from the `weak.lf` events (last record
    // per LF name wins, mirroring the text report's table).
    let mut lf_rows: Vec<(&str, &Json)> = Vec::new();
    for r in records {
        if kind(r) == "event" && r.get("event").and_then(Json::as_str) == Some("weak.lf") {
            let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
            match lf_rows.iter_mut().find(|(n, _)| *n == name) {
                Some(row) => row.1 = r,
                None => lf_rows.push((name, r)),
            }
        }
    }
    if !lf_rows.is_empty() {
        obj.push((
            "weak_lfs".to_string(),
            Json::arr(lf_rows.into_iter().map(|(name, r)| {
                Json::obj([
                    ("name", Json::from(name)),
                    ("votes", Json::from(num(r, "votes"))),
                    ("coverage", Json::from(num(r, "coverage"))),
                    ("accuracy", Json::from(num(r, "accuracy"))),
                    ("propensity", Json::from(num(r, "propensity"))),
                ])
            })),
        ));
    }
    let mut hist_last: HashMap<&str, &Json> = HashMap::new();
    for r in records {
        if kind(r) == "hist" {
            hist_last.insert(r.get("name").and_then(Json::as_str).unwrap_or("?"), r);
        }
    }
    if !hist_last.is_empty() {
        let mut rows: Vec<(&str, &Json)> = hist_last.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        obj.push((
            "histograms".to_string(),
            Json::arr(rows.into_iter().map(|(name, h)| {
                let field = |k: &str| h.get(k).cloned().unwrap_or(Json::Null);
                Json::obj([
                    ("name", Json::from(name)),
                    ("count", field("count")),
                    ("p50", field("p50")),
                    ("p99", field("p99")),
                    ("min", field("min")),
                    ("max", field("max")),
                ])
            })),
        ));
    }
    Json::Obj(obj)
}

/// Convert parsed trace records into Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto "JSON Array Format"): spans become complete
/// (`ph:"X"`) events, trace events become instants (`ph:"i"`), and `thread`
/// records become `thread_name` metadata. Timestamps are microseconds, as
/// the format requires; summary records (`pool`, `channel`, `meta`,
/// counters, histograms) have no timeline position and are skipped.
pub fn chrome_trace(records: &[Json]) -> String {
    let mut events: Vec<Json> = Vec::new();
    for r in records {
        match kind(r) {
            "thread" => {
                let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
                events.push(Json::obj([
                    ("ph", Json::from("M")),
                    ("name", Json::from("thread_name")),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(num(r, "id"))),
                    ("args", Json::obj([("name", Json::from(name))])),
                ]));
            }
            "span" => {
                let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
                events.push(Json::obj([
                    ("ph", Json::from("X")),
                    ("name", Json::from(name)),
                    ("cat", Json::from("span")),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(num(r, "thread"))),
                    ("ts", Json::from(num(r, "t0") / 1e3)),
                    ("dur", Json::from((num(r, "t1") - num(r, "t0")) / 1e3)),
                ]));
            }
            "event" => {
                let name = r.get("event").and_then(Json::as_str).unwrap_or("?");
                // Carry every extra field along as args for the trace UI.
                let mut args: Vec<(String, Json)> = Vec::new();
                if let Json::Obj(fields) = r {
                    for (k, v) in fields {
                        if !matches!(k.as_str(), "kind" | "event" | "t" | "thread") {
                            args.push((k.clone(), v.clone()));
                        }
                    }
                }
                events.push(Json::obj([
                    ("ph", Json::from("i")),
                    ("name", Json::from(name)),
                    ("cat", Json::from("event")),
                    ("s", Json::from("t")),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(num(r, "thread"))),
                    ("ts", Json::from(num(r, "t") / 1e3)),
                    ("args", Json::Obj(args)),
                ]));
            }
            _ => {}
        }
    }
    Json::obj([("traceEvents", Json::arr(events))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> String {
        [
            r#"{"kind":"thread","id":0,"name":"main"}"#,
            r#"{"kind":"span","name":"pipeline.fit","id":1,"parent":0,"t0":0,"t1":1000,"thread":0}"#,
            r#"{"kind":"span","name":"forest.fit","id":2,"parent":1,"t0":100,"t1":900,"thread":0}"#,
            r#"{"kind":"span","name":"forest.fit","id":3,"parent":0,"t0":1000,"t1":1400,"thread":0}"#,
            r#"{"kind":"event","event":"search.incumbent","t":950,"thread":0,"trial":3,"score":0.875}"#,
            r#"{"kind":"counter","name":"blocking.pairs_emitted","value":1234}"#,
            r#"{"kind":"counter","name":"featcache.profile_builds","value":500}"#,
            r#"{"kind":"counter","name":"featcache.interner_tokens","value":2048}"#,
            r#"{"kind":"counter","name":"featcache.memo_hits","value":300}"#,
            r#"{"kind":"counter","name":"featcache.memo_hits","value":900}"#,
            r#"{"kind":"counter","name":"featcache.memo_misses","value":100}"#,
            r#"{"kind":"counter","name":"serve.index_upserts","value":600}"#,
            r#"{"kind":"counter","name":"serve.index_compactions","value":4}"#,
            r#"{"kind":"counter","name":"serve.index_shard_probes","value":96}"#,
            r#"{"kind":"counter","name":"serve.store_appends","value":240}"#,
            r#"{"kind":"counter","name":"serve.store_torn_tails","value":1}"#,
            r#"{"kind":"pool","jobs":7,"inline_sections":2,"chunks_claimed":40,"workers":3,"queue_wait_ns":{"count":21,"buckets":[],"p50":512,"p99":4096},"busy":[{"thread":"worker-0","busy_ns":700}]}"#,
            r#"{"kind":"channel","sends":16,"recvs":16,"recv_wait_ns":{"count":4,"buckets":[],"p50":1024,"p99":8192}}"#,
            r#"{"kind":"meta","t":1500,"threads":4,"available_parallelism":8}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_jsonl_and_reports_line_numbers_on_errors() {
        let records = parse_trace(&trace()).unwrap();
        assert_eq!(records.len(), 19);
        let err = parse_trace("{\"ok\":1}\n\nnot json").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn report_aggregates_stages_with_self_time() {
        let records = parse_trace(&trace()).unwrap();
        let report = render_report(&records);
        // forest.fit: two calls, total 1200, all self time.
        assert!(report.contains("forest.fit"), "{report}");
        // pipeline.fit: 1000 total but only 200 self (forest.fit nested).
        let pipeline_row = report
            .lines()
            .find(|l| l.starts_with("pipeline.fit"))
            .expect("pipeline row");
        assert!(pipeline_row.contains("200 ns"), "{pipeline_row}");
        assert!(report.contains("== pool utilization =="), "{report}");
        assert!(
            report.contains("workers=7") || report.contains("workers=3"),
            "{report}"
        );
        assert!(report.contains("search: 1 incumbent update(s)"), "{report}");
        assert!(report.contains("blocking.pairs_emitted"), "{report}");
        assert!(report.contains("sends=16"), "{report}");
        // Feature-cache section: repeated flushes keep the max (900, not
        // 300 or 1200), and the hit rate is computed from hits/misses.
        assert!(report.contains("== feature cache =="), "{report}");
        assert!(
            report.contains("profiles built=500 interned tokens=2048"),
            "{report}"
        );
        assert!(
            report.contains("memo lookups=1000 hits=900 misses=100 hit rate=90.0%"),
            "{report}"
        );
        // Serving-index section: write-path, probe, and store lines.
        assert!(report.contains("== serving index =="), "{report}");
        assert!(
            report.contains("upserts=600 removals=0 compactions=4 stale recounts=0"),
            "{report}"
        );
        assert!(
            report.contains("probe: shard probes=96 pruned tokens=0 capped queries=0"),
            "{report}"
        );
        assert!(
            report.contains("store: wal appends=240 snapshots=0 replayed=0 torn tails=1"),
            "{report}"
        );
    }

    #[test]
    fn json_summary_mirrors_the_text_report() {
        let records = parse_trace(&trace()).unwrap();
        let j = render_json(&records);
        assert_eq!(j.get("records").and_then(Json::as_f64), Some(19.0));
        assert_eq!(j.get("threads").and_then(Json::as_f64), Some(4.0));
        assert_eq!(j.get("span_wall_ns").and_then(Json::as_f64), Some(1400.0));
        let stages = j.get("stages").and_then(Json::as_arr).expect("stages");
        let pipeline = stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("pipeline.fit"))
            .expect("pipeline.fit stage");
        assert_eq!(pipeline.get("self_ns").and_then(Json::as_f64), Some(200.0));
        // Counters keep the max across repeated flushes (900, not 300).
        let counters = j.get("counters").expect("counters");
        assert_eq!(
            counters.get("featcache.memo_hits").and_then(Json::as_f64),
            Some(900.0)
        );
        let pool = j.get("pool").expect("pool");
        assert_eq!(pool.get("jobs").and_then(Json::as_f64), Some(7.0));
        let busy = pool.get("busy").and_then(Json::as_arr).expect("busy");
        let frac = busy[0]
            .get("busy_frac")
            .and_then(Json::as_f64)
            .expect("frac");
        assert!((frac - 700.0 / 1400.0).abs() < 1e-12, "{frac}");
        let search = j.get("search").expect("search");
        assert_eq!(search.get("best_trial").and_then(Json::as_f64), Some(3.0));
        // The summary round-trips through the JSON parser.
        Json::parse(&j.render()).expect("valid json");
    }

    #[test]
    fn weak_supervision_section_renders_lf_table() {
        let trace = [
            r#"{"kind":"counter","name":"weak.pairs_labeled","value":200}"#,
            r#"{"kind":"counter","name":"weak.lf_votes","value":340}"#,
            r#"{"kind":"counter","name":"weak.pairs_covered","value":180}"#,
            r#"{"kind":"counter","name":"weak.pairs_conflicted","value":20}"#,
            r#"{"kind":"counter","name":"weak.label_model_fits","value":1}"#,
            r#"{"kind":"counter","name":"weak.label_model_iters","value":12}"#,
            r#"{"kind":"event","event":"weak.lf","t":10,"thread":0,"name":"name_sim_high","votes":150,"positive":150,"coverage":0.75,"accuracy":0.5,"propensity":0.75}"#,
            r#"{"kind":"event","event":"weak.lf","t":20,"thread":0,"name":"name_sim_high","votes":150,"positive":150,"coverage":0.75,"accuracy":0.91,"propensity":0.75}"#,
            r#"{"kind":"event","event":"weak.lf","t":30,"thread":0,"name":"city_equal","votes":190,"positive":60,"coverage":0.95,"accuracy":0.62,"propensity":0.95}"#,
        ]
        .join("\n");
        let records = parse_trace(&trace).unwrap();
        let report = render_report(&records);
        assert!(report.contains("== weak supervision =="), "{report}");
        assert!(
            report
                .contains("pairs labeled=200 votes=340 covered=180 (90.0%) conflicted=20 (10.0%)"),
            "{report}"
        );
        assert!(
            report.contains("label model: fits=1 EM iterations=12"),
            "{report}"
        );
        // Last record per LF name wins: the re-fit accuracy (0.910)
        // replaces the first flush's 0.500.
        assert!(report.contains("name_sim_high"), "{report}");
        assert!(report.contains("0.910"), "{report}");
        assert!(!report.contains("0.500"), "{report}");

        let j = render_json(&records);
        let lfs = j.get("weak_lfs").and_then(Json::as_arr).expect("weak_lfs");
        assert_eq!(lfs.len(), 2);
        assert_eq!(
            lfs[0].get("name").and_then(Json::as_str),
            Some("name_sim_high")
        );
        assert_eq!(lfs[0].get("accuracy").and_then(Json::as_f64), Some(0.91));
        assert_eq!(lfs[1].get("coverage").and_then(Json::as_f64), Some(0.95));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 us");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.20 s");
    }
}
