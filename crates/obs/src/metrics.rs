//! Domain counters and histograms as `static` items.
//!
//! Declaration is `const` so a metric costs nothing until first touched
//! while tracing is active, at which point it registers itself into the
//! global flush list:
//!
//! ```
//! static PAIRS_EMITTED: em_obs::Counter = em_obs::Counter::new("blocking.pairs_emitted");
//! PAIRS_EMITTED.add(42);
//! ```
//!
//! Updates are relaxed atomics behind the crate-wide enabled check; while
//! tracing is off nothing moves, so a metric's value describes exactly the
//! traced window.

use crate::write_record;
use em_rt::stats::LogHistogram;
use em_rt::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declare a counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` (no-op while tracing is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 (no-op while tracing is off).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named log2-bucket histogram (see [`em_rt::stats::LogHistogram`]) that
/// additionally tracks the exact observed min/max, so reported quantiles
/// clamp to the true value range instead of a log2 bucket bound (a
/// small-sample p99 of three ~1ms batches reads ~1ms, not the 2^n bucket
/// boundary above it).
pub struct Histogram {
    name: &'static str,
    inner: LogHistogram,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Declare a histogram (usable in `static` position).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            inner: LogHistogram::new(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Count one observation of `v` (no-op while tracing is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS.lock().unwrap().push(self);
        }
        self.inner.record(v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Exact observed `(min, max)`, `None` while empty.
    pub fn observed_range(&self) -> Option<(u64, u64)> {
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        (min <= max).then_some((min, max))
    }

    /// Approximate quantile (log2 bucket upper bound, clamped to the exact
    /// observed range — so when the tail shares one bucket, p99 reads the
    /// true max instead of the next power of two), `None` while empty. Lets
    /// harnesses (e.g. `bench_serve`) read p50/p99 without a flush cycle.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let lower = self.inner.quantile(q)?;
        let upper = if lower == 0 {
            0
        } else {
            lower.saturating_mul(2)
        };
        let (min, max) = self.observed_range()?;
        Some(upper.clamp(min, max))
    }
}

/// Serialize every registered metric. Called from [`flush`](crate::flush).
pub(crate) fn flush() {
    for c in COUNTERS.lock().unwrap().iter() {
        write_record(&Json::obj([
            ("kind", Json::from("counter")),
            ("name", Json::from(c.name)),
            ("value", Json::from(c.value())),
        ]));
    }
    for h in HISTOGRAMS.lock().unwrap().iter() {
        let range = h.observed_range();
        write_record(&Json::obj([
            ("kind", Json::from("hist")),
            ("name", Json::from(h.name)),
            ("count", Json::from(h.inner.count())),
            ("p50", h.quantile(0.50).map_or(Json::Null, Json::from)),
            ("p99", h.quantile(0.99).map_or(Json::Null, Json::from)),
            ("min", range.map_or(Json::Null, |(lo, _)| Json::from(lo))),
            ("max", range.map_or(Json::Null, |(_, hi)| Json::from(hi))),
            (
                "buckets",
                Json::arr(h.inner.nonzero_buckets().into_iter().map(|(lower, n)| {
                    Json::obj([("ge", Json::from(lower)), ("n", Json::from(n))])
                })),
            ),
        ]));
    }
}
