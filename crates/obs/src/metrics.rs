//! Domain counters and histograms as `static` items.
//!
//! Declaration is `const` so a metric costs nothing until first touched
//! while tracing is active, at which point it registers itself into the
//! global flush list:
//!
//! ```
//! static PAIRS_EMITTED: em_obs::Counter = em_obs::Counter::new("blocking.pairs_emitted");
//! PAIRS_EMITTED.add(42);
//! ```
//!
//! Updates are relaxed atomics behind the crate-wide enabled check; while
//! tracing is off nothing moves, so a metric's value describes exactly the
//! traced window.

use crate::write_record;
use em_rt::stats::LogHistogram;
use em_rt::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named monotonic counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declare a counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` (no-op while tracing is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 (no-op while tracing is off).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named log2-bucket histogram (see [`em_rt::stats::LogHistogram`]).
pub struct Histogram {
    name: &'static str,
    inner: LogHistogram,
    registered: AtomicBool,
}

impl Histogram {
    /// Declare a histogram (usable in `static` position).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            inner: LogHistogram::new(),
            registered: AtomicBool::new(false),
        }
    }

    /// Count one observation of `v` (no-op while tracing is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS.lock().unwrap().push(self);
        }
        self.inner.record(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Approximate quantile (bucket upper bound), `None` while empty. Lets
    /// harnesses (e.g. `bench_serve`) read p50/p99 without a flush cycle.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.inner.quantile(q)
    }
}

/// Serialize every registered metric. Called from [`flush`](crate::flush).
pub(crate) fn flush() {
    for c in COUNTERS.lock().unwrap().iter() {
        write_record(&Json::obj([
            ("kind", Json::from("counter")),
            ("name", Json::from(c.name)),
            ("value", Json::from(c.value())),
        ]));
    }
    for h in HISTOGRAMS.lock().unwrap().iter() {
        write_record(&Json::obj([
            ("kind", Json::from("hist")),
            ("name", Json::from(h.name)),
            ("count", Json::from(h.inner.count())),
            ("p50", h.inner.quantile(0.50).map_or(Json::Null, Json::from)),
            ("p99", h.inner.quantile(0.99).map_or(Json::Null, Json::from)),
            (
                "buckets",
                Json::arr(h.inner.nonzero_buckets().into_iter().map(|(lower, n)| {
                    Json::obj([("ge", Json::from(lower)), ("n", Json::from(n))])
                })),
            ),
        ]));
    }
}
