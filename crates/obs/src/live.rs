//! Live telemetry: rolling-window metrics, sampled request logs, and a
//! process-wide health registry — the read-while-it-runs counterpart to the
//! post-hoc trace in the crate root.
//!
//! The trace layer ([`Counter`](crate::Counter) / [`Histogram`](crate::Histogram))
//! accumulates from process start and flushes once at exit; a long-running
//! server instead wants "what happened in the last minute". Every windowed
//! metric here owns a ring of [`RING_LEN`] time slices, each a log2-bucket
//! histogram stamped with its slice epoch (`now_ns / slice_ns` off the shared
//! monotonic timebase in `em_rt::stats`). Recording rotates the ring lazily:
//! the slot for the current epoch is cleared the first time a new epoch
//! touches it, so there is no background sweeper thread and an idle metric
//! costs nothing. Snapshots merge the slices whose epochs fall inside the
//! requested [`Window`] (10s / 1m / 5m with the default 5-second slice), so a
//! reported rate or quantile describes a trailing window with one-slice
//! resolution.
//!
//! Everything is gated on [`enabled`], flipped when a metrics endpoint starts
//! (`EM_METRICS`): while off, every instrumentation site is one relaxed
//! atomic load. The determinism contract of the trace layer carries over
//! unchanged — live telemetry *observes* execution and never feeds back into
//! it, so enabling it cannot change any computed bit
//! (`crates/serve/tests/serve_stream.rs` enforces this).
//!
//! [`RequestLog`] adds request-scoped visibility: a seeded deterministic
//! sampler (keyed on `em_rt::derive_seed(seed, request_id)`, so the *same*
//! requests are sampled in every run at every thread count) keeps a bounded
//! ring of fully-annotated recent requests, and a bounded slow-query log
//! retains the K worst requests seen so far. [`set_health`] lets serving
//! components publish invariant-check results for the `/healthz` endpoint.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default width of one ring slice: 5 seconds.
pub const DEFAULT_SLICE_NS: u64 = 5_000_000_000;
/// Slices per ring: 64 x 5s = 320s of history, enough to cover the 5-minute
/// window with headroom.
pub const RING_LEN: usize = 64;
const BUCKETS: usize = 65;

static LIVE: AtomicBool = AtomicBool::new(false);

/// Turn live telemetry collection on or off. Also re-derives the runtime
/// stats switch, which must be on when *either* tracing or live telemetry is
/// active (the poller reads pool busy-time from `em_rt::stats`).
pub fn set_enabled(on: bool) {
    LIVE.store(on, Ordering::Relaxed);
    em_rt::stats::set_enabled(on || crate::enabled());
}

/// Whether live telemetry is active. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    LIVE.load(Ordering::Relaxed)
}

/// A trailing window over the slice ring. Durations assume the default
/// 5-second slice; a metric built with a custom `slice_ns` (tests) keeps the
/// same slice *counts*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Last 2 slices (10 seconds).
    TenSec,
    /// Last 12 slices (1 minute).
    OneMin,
    /// Last 60 slices (5 minutes).
    FiveMin,
}

impl Window {
    /// All windows, shortest first — the order `/metrics` renders them in.
    pub const ALL: [Window; 3] = [Window::TenSec, Window::OneMin, Window::FiveMin];

    /// Number of ring slices this window spans.
    pub fn slices(self) -> u64 {
        match self {
            Window::TenSec => 2,
            Window::OneMin => 12,
            Window::FiveMin => 60,
        }
    }

    /// Metric-key suffix (`serve.batch_ns.5m.p99`).
    pub fn label(self) -> &'static str {
        match self {
            Window::TenSec => "10s",
            Window::OneMin => "1m",
            Window::FiveMin => "5m",
        }
    }
}

/// Snapshot of one metric over one trailing window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    pub window: Window,
    /// Window span in seconds (slice width x slice count).
    pub window_secs: f64,
    /// Observations that fell inside the window.
    pub count: u64,
    /// `count / window_secs`.
    pub rate_per_sec: f64,
    /// Sum of observed values inside the window (counters: equals `count`).
    pub sum: u64,
    /// Exact min/max observed inside the window, `None` while empty.
    pub min: Option<u64>,
    pub max: Option<u64>,
    /// Log2-bucket quantiles clamped to the exact observed `[min, max]`
    /// range, `None` while empty (counters: always `None`).
    pub p50: Option<u64>,
    pub p99: Option<u64>,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Nearest-rank quantile over merged log2 buckets: the bucket upper bound
/// clamped to the exact observed `[min, max]` — the same rule as
/// [`crate::Histogram::quantile`], so windowed and post-hoc quantiles over
/// the same data agree exactly.
fn merged_quantile(
    buckets: &[u64; BUCKETS],
    total: u64,
    q: f64,
    min: u64,
    max: u64,
) -> Option<u64> {
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            let upper = if i == 0 {
                0
            } else if i >= 64 {
                u64::MAX
            } else {
                1u64 << i
            };
            return Some(upper.clamp(min, max));
        }
    }
    None
}

#[derive(Clone)]
struct Slice {
    /// Which epoch this slot currently holds; `u64::MAX` = never written.
    epoch: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u32; BUCKETS],
}

const EMPTY_SLICE: Slice = Slice {
    epoch: u64::MAX,
    count: 0,
    sum: 0,
    min: u64::MAX,
    max: 0,
    buckets: [0; BUCKETS],
};

struct Ring {
    slices: Vec<Slice>,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            slices: vec![EMPTY_SLICE; RING_LEN],
        }
    }

    /// The slot for `epoch`, cleared first if it still holds an older epoch.
    /// This lazy rotation is the only way slices are ever reset.
    fn slot(&mut self, epoch: u64) -> &mut Slice {
        let s = &mut self.slices[(epoch % RING_LEN as u64) as usize];
        if s.epoch != epoch {
            *s = EMPTY_SLICE;
            s.epoch = epoch;
        }
        s
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A named histogram with both cumulative totals and trailing-window
/// quantiles. Declare as a `static`; like the trace-layer metrics it costs
/// nothing (and allocates nothing) until first recorded into while live
/// telemetry is enabled.
pub struct WindowedHistogram {
    name: &'static str,
    slice_ns: u64,
    total_count: AtomicU64,
    total_sum: AtomicU64,
    registered: AtomicBool,
    ring: Mutex<Option<Box<Ring>>>,
}

impl WindowedHistogram {
    /// Declare with the default 5-second slice (usable in `static` position).
    pub const fn new(name: &'static str) -> WindowedHistogram {
        WindowedHistogram::with_slice_ns(name, DEFAULT_SLICE_NS)
    }

    /// Declare with a custom slice width — tests use millisecond slices to
    /// exercise rotation without waiting out wall-clock windows.
    pub const fn with_slice_ns(name: &'static str, slice_ns: u64) -> WindowedHistogram {
        WindowedHistogram {
            name,
            slice_ns,
            total_count: AtomicU64::new(0),
            total_sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            ring: Mutex::new(None),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&METRICS).push(Metric::Histogram(self));
        }
    }

    /// Count one observation of `v` at the current time (no-op while live
    /// telemetry is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.record_at(em_rt::stats::now_ns(), v);
    }

    /// Count a batch of observations under one lock acquisition (no-op while
    /// live telemetry is off). Hot paths that observe per-item values (e.g.
    /// per-pair match scores) use this to avoid a lock round-trip per item.
    pub fn record_all<I: IntoIterator<Item = u64>>(&'static self, values: I) {
        if !enabled() {
            return;
        }
        self.register();
        let epoch = em_rt::stats::now_ns() / self.slice_ns;
        let mut guard = lock(&self.ring);
        let ring = guard.get_or_insert_with(|| Box::new(Ring::new()));
        let s = ring.slot(epoch);
        let (mut n, mut sum) = (0u64, 0u64);
        for v in values {
            n += 1;
            sum += v;
            s.count += 1;
            s.sum += v;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            s.buckets[bucket_index(v)] += 1;
        }
        drop(guard);
        self.total_count.fetch_add(n, Ordering::Relaxed);
        self.total_sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Record at an explicit timestamp. Driver/test hook: not gated on
    /// [`enabled`] and does not self-register, so tests can drive synthetic
    /// time deterministically.
    pub fn record_at(&self, now_ns: u64, v: u64) {
        let epoch = now_ns / self.slice_ns;
        {
            let mut guard = lock(&self.ring);
            let ring = guard.get_or_insert_with(|| Box::new(Ring::new()));
            let s = ring.slot(epoch);
            s.count += 1;
            s.sum += v;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            s.buckets[bucket_index(v)] += 1;
        }
        self.total_count.fetch_add(1, Ordering::Relaxed);
        self.total_sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Cumulative observation count since process start.
    pub fn total_count(&self) -> u64 {
        self.total_count.load(Ordering::Relaxed)
    }

    /// Cumulative sum of observed values since process start.
    pub fn total_sum(&self) -> u64 {
        self.total_sum.load(Ordering::Relaxed)
    }

    /// Trailing-window snapshot at the current time.
    pub fn stats(&self, window: Window) -> WindowStats {
        self.stats_at(em_rt::stats::now_ns(), window)
    }

    /// Trailing-window snapshot at an explicit timestamp (test hook).
    pub fn stats_at(&self, now_ns: u64, window: Window) -> WindowStats {
        let epoch = now_ns / self.slice_ns;
        let n = window.slices().min(RING_LEN as u64);
        let lo = epoch.saturating_sub(n - 1);
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut buckets = [0u64; BUCKETS];
        if let Some(ring) = lock(&self.ring).as_ref() {
            for s in &ring.slices {
                if s.epoch >= lo && s.epoch <= epoch {
                    count += s.count;
                    sum += s.sum;
                    min = min.min(s.min);
                    max = max.max(s.max);
                    for (acc, b) in buckets.iter_mut().zip(s.buckets.iter()) {
                        *acc += *b as u64;
                    }
                }
            }
        }
        let window_secs = (n * self.slice_ns) as f64 / 1e9;
        WindowStats {
            window,
            window_secs,
            count,
            rate_per_sec: count as f64 / window_secs,
            sum,
            min: (count > 0).then_some(min),
            max: (count > 0).then_some(max),
            p50: merged_quantile(&buckets, count, 0.50, min, max),
            p99: merged_quantile(&buckets, count, 0.99, min, max),
        }
    }
}

/// A named monotonic counter with trailing-window rates. Declare as a
/// `static`.
pub struct WindowedCounter {
    name: &'static str,
    slice_ns: u64,
    total: AtomicU64,
    registered: AtomicBool,
    ring: Mutex<Option<Box<Ring>>>,
}

impl WindowedCounter {
    /// Declare with the default 5-second slice (usable in `static` position).
    pub const fn new(name: &'static str) -> WindowedCounter {
        WindowedCounter::with_slice_ns(name, DEFAULT_SLICE_NS)
    }

    /// Declare with a custom slice width (test hook).
    pub const fn with_slice_ns(name: &'static str, slice_ns: u64) -> WindowedCounter {
        WindowedCounter {
            name,
            slice_ns,
            total: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            ring: Mutex::new(None),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` at the current time (no-op while live telemetry is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&METRICS).push(Metric::Counter(self));
        }
        self.add_at(em_rt::stats::now_ns(), n);
    }

    /// Add 1 (no-op while live telemetry is off).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Add at an explicit timestamp. Driver/test hook: ungated, unregistered.
    pub fn add_at(&self, now_ns: u64, n: u64) {
        let epoch = now_ns / self.slice_ns;
        {
            let mut guard = lock(&self.ring);
            let ring = guard.get_or_insert_with(|| Box::new(Ring::new()));
            let s = ring.slot(epoch);
            s.count += n;
            s.sum += n;
        }
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Cumulative total since process start.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Trailing-window count + rate at the current time.
    pub fn stats(&self, window: Window) -> WindowStats {
        self.stats_at(em_rt::stats::now_ns(), window)
    }

    /// Trailing-window count + rate at an explicit timestamp (test hook).
    pub fn stats_at(&self, now_ns: u64, window: Window) -> WindowStats {
        let epoch = now_ns / self.slice_ns;
        let n = window.slices().min(RING_LEN as u64);
        let lo = epoch.saturating_sub(n - 1);
        let mut count = 0u64;
        if let Some(ring) = lock(&self.ring).as_ref() {
            for s in &ring.slices {
                if s.epoch >= lo && s.epoch <= epoch {
                    count += s.count;
                }
            }
        }
        let window_secs = (n * self.slice_ns) as f64 / 1e9;
        WindowStats {
            window,
            window_secs,
            count,
            rate_per_sec: count as f64 / window_secs,
            sum: count,
            min: None,
            max: None,
            p50: None,
            p99: None,
        }
    }
}

/// A named last-value gauge (RSS, index size, stale debt, …). Declare as a
/// `static`.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// Declare a gauge (usable in `static` position).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Replace the value (no-op while live telemetry is off).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&METRICS).push(Metric::Gauge(self));
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Last value set.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(&'static WindowedCounter),
    Histogram(&'static WindowedHistogram),
    Gauge(&'static Gauge),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Histogram(h) => h.name,
            Metric::Gauge(g) => g.name,
        }
    }
}

static METRICS: Mutex<Vec<Metric>> = Mutex::new(Vec::new());
static REQUEST_LOGS: Mutex<Vec<&'static RequestLog>> = Mutex::new(Vec::new());

/// Render every registered metric as `key value` text lines (the `/metrics`
/// payload), sorted by key. Histograms emit cumulative totals plus
/// count/rate/p50/p99/min/max per trailing window; quantile lines are omitted
/// while a window is empty.
pub fn render_metrics() -> String {
    render_metrics_at(em_rt::stats::now_ns())
}

/// [`render_metrics`] at an explicit timestamp (test hook).
pub fn render_metrics_at(now_ns: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("em.uptime_secs {:.1}\n", now_ns as f64 / 1e9));
    let guard = lock(&METRICS);
    let mut order: Vec<usize> = (0..guard.len()).collect();
    order.sort_by_key(|&i| guard[i].name());
    for i in order {
        match &guard[i] {
            Metric::Gauge(g) => out.push_str(&format!("{} {}\n", g.name, g.value())),
            Metric::Counter(c) => {
                out.push_str(&format!("{}.total {}\n", c.name, c.total()));
                for w in Window::ALL {
                    let s = c.stats_at(now_ns, w);
                    let l = w.label();
                    out.push_str(&format!("{}.{l}.count {}\n", c.name, s.count));
                    out.push_str(&format!(
                        "{}.{l}.rate_per_s {:.3}\n",
                        c.name, s.rate_per_sec
                    ));
                }
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("{}.total.count {}\n", h.name, h.total_count()));
                out.push_str(&format!("{}.total.sum {}\n", h.name, h.total_sum()));
                for w in Window::ALL {
                    let s = h.stats_at(now_ns, w);
                    let l = w.label();
                    out.push_str(&format!("{}.{l}.count {}\n", h.name, s.count));
                    out.push_str(&format!(
                        "{}.{l}.rate_per_s {:.3}\n",
                        h.name, s.rate_per_sec
                    ));
                    for (stat, v) in [
                        ("p50", s.p50),
                        ("p99", s.p99),
                        ("min", s.min),
                        ("max", s.max),
                    ] {
                        if let Some(v) = v {
                            out.push_str(&format!("{}.{l}.{stat} {v}\n", h.name));
                        }
                    }
                }
            }
        }
    }
    out
}

/// One request's record in a [`RequestLog`]: identity, latency, and a small
/// set of named effect counts (candidate pairs, pruned tokens, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    pub id: u64,
    pub latency_ns: u64,
    pub fields: Vec<(&'static str, u64)>,
}

struct LogInner {
    /// K worst requests by latency, descending.
    slow: Vec<RequestRecord>,
    /// Most recent sampled requests, oldest first.
    sampled: VecDeque<RequestRecord>,
}

/// Bounded request-scoped log: a deterministic 1-in-N sampler plus a K-worst
/// slow-query log. Declare as a `static`.
pub struct RequestLog {
    name: &'static str,
    seed: u64,
    sample_every: u64,
    slow_k: usize,
    sampled_cap: usize,
    registered: AtomicBool,
    inner: Mutex<LogInner>,
}

impl RequestLog {
    /// Declare a request log (usable in `static` position): sample 1 in
    /// `sample_every` requests (keep the latest 32), retain the `slow_k`
    /// worst by latency.
    pub const fn new(
        name: &'static str,
        seed: u64,
        sample_every: u64,
        slow_k: usize,
    ) -> RequestLog {
        RequestLog {
            name,
            seed,
            sample_every,
            slow_k,
            sampled_cap: 32,
            registered: AtomicBool::new(false),
            inner: Mutex::new(LogInner {
                slow: Vec::new(),
                sampled: VecDeque::new(),
            }),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether request `id` is in the sample. Pure in `(seed, id)` — the same
    /// requests are sampled in every run at every thread count, so sampled
    /// trace events stay reproducible.
    pub fn is_sampled(&self, id: u64) -> bool {
        self.sample_every <= 1
            || em_rt::derive_seed(self.seed, id).is_multiple_of(self.sample_every)
    }

    /// Record one request; returns whether it was sampled. No-op (returning
    /// `false`) while live telemetry is off.
    pub fn record(&'static self, rec: RequestRecord) -> bool {
        if !enabled() {
            return false;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REQUEST_LOGS).push(self);
        }
        let sampled = self.is_sampled(rec.id);
        let mut inner = lock(&self.inner);
        let pos = inner
            .slow
            .partition_point(|r| r.latency_ns >= rec.latency_ns);
        if pos < self.slow_k {
            let k = self.slow_k;
            inner.slow.insert(pos, rec.clone());
            inner.slow.truncate(k);
        }
        if sampled {
            inner.sampled.push_back(rec);
            if inner.sampled.len() > self.sampled_cap {
                inner.sampled.pop_front();
            }
        }
        sampled
    }

    /// The K worst requests by latency, descending.
    pub fn slow(&self) -> Vec<RequestRecord> {
        lock(&self.inner).slow.clone()
    }

    /// The most recent sampled requests, oldest first.
    pub fn sampled_recent(&self) -> Vec<RequestRecord> {
        lock(&self.inner).sampled.iter().cloned().collect()
    }
}

/// Render every registered request log (the `/slow` payload): the slow-query
/// table first, then the sampled ring.
pub fn render_slow() -> String {
    let logs = lock(&REQUEST_LOGS);
    if logs.is_empty() {
        return "no request logs registered\n".to_string();
    }
    let mut order: Vec<usize> = (0..logs.len()).collect();
    order.sort_by_key(|&i| logs[i].name);
    let mut out = String::new();
    let fmt_rec = |out: &mut String, r: &RequestRecord| {
        out.push_str(&format!("id={} latency_ns={}", r.id, r.latency_ns));
        for (k, v) in &r.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    };
    for i in order {
        let log = logs[i];
        out.push_str(&format!("== {}: {} slowest ==\n", log.name, log.slow_k));
        for r in log.slow() {
            fmt_rec(&mut out, &r);
        }
        out.push_str(&format!(
            "== {}: sampled 1-in-{} (most recent last) ==\n",
            log.name, log.sample_every
        ));
        for r in log.sampled_recent() {
            fmt_rec(&mut out, &r);
        }
    }
    out
}

/// One component's latest health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEntry {
    pub component: String,
    pub ok: bool,
    pub detail: String,
    /// Timebase nanoseconds at report time.
    pub t_ns: u64,
}

static HEALTH: Mutex<Vec<HealthEntry>> = Mutex::new(Vec::new());

/// Publish a component's health (`Ok(detail)` / `Err(reason)`), replacing its
/// previous report. Not gated on [`enabled`] — invariant checks run anyway,
/// and `/healthz` should reflect the latest result even if it predates the
/// endpoint.
pub fn set_health(component: &str, status: Result<String, String>) {
    let (ok, detail) = match status {
        Ok(d) => (true, d),
        Err(d) => (false, d),
    };
    let entry = HealthEntry {
        component: component.to_string(),
        ok,
        detail,
        t_ns: em_rt::stats::now_ns(),
    };
    let mut h = lock(&HEALTH);
    match h.iter_mut().find(|e| e.component == component) {
        Some(e) => *e = entry,
        None => h.push(entry),
    }
}

/// Whether every reported component is healthy (vacuously true when nothing
/// has reported).
pub fn health_ok() -> bool {
    lock(&HEALTH).iter().all(|e| e.ok)
}

/// All current health reports, sorted by component.
pub fn health() -> Vec<HealthEntry> {
    let mut v = lock(&HEALTH).clone();
    v.sort_by(|a, b| a.component.cmp(&b.component));
    v
}

/// Drop every health report (test hook — health state is process-global).
pub fn clear_health() {
    lock(&HEALTH).clear();
}

/// Render the `/healthz` payload: overall verdict plus one line per
/// component.
pub fn render_health() -> (bool, String) {
    let entries = health();
    if entries.is_empty() {
        return (true, "ok (no components reported)\n".to_string());
    }
    let ok = entries.iter().all(|e| e.ok);
    let mut out = String::new();
    out.push_str(if ok { "ok\n" } else { "FAIL\n" });
    for e in entries {
        out.push_str(&format!(
            "{} {} {}\n",
            e.component,
            if e.ok { "ok" } else { "FAIL" },
            e.detail
        ));
    }
    (ok, out)
}
