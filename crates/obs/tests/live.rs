//! Live-telemetry tests: window rotation and count conservation (including
//! an 8-thread hammer across rotations), sampler determinism, the slow-query
//! log bound, min/max-clamped quantiles, and the text renderers. Tests that
//! flip the global live switch or touch the health registry serialize on a
//! mutex.

use em_obs::live::{self, RequestLog, RequestRecord, Window, WindowedCounter, WindowedHistogram};
use std::sync::{Mutex, MutexGuard};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// 1ms slices so a test can sweep many epochs with synthetic timestamps.
const SLICE: u64 = 1_000_000;

#[test]
fn windowed_histogram_rotates_and_windows_slices() {
    static H: WindowedHistogram = WindowedHistogram::with_slice_ns("test.rotate", SLICE);
    // Epoch 0: two fast observations; epoch 1: one slow one.
    H.record_at(0, 100);
    H.record_at(SLICE / 2, 200);
    H.record_at(SLICE, 4000);

    // At epoch 1, the 10s window (2 slices) sees all three.
    let s = H.stats_at(SLICE, Window::TenSec);
    assert_eq!(s.count, 3);
    assert_eq!(s.sum, 4300);
    assert_eq!(s.min, Some(100));
    assert_eq!(s.max, Some(4000));
    // p50 = 2nd of [100, 200, 4000] -> bucket [128,256) -> upper bound 256.
    assert_eq!(s.p50, Some(256));
    // p99 lands in the [2048,4096) bucket; the upper bound clamps to the
    // exact max instead of reading 4096.
    assert_eq!(s.p99, Some(4000));
    // When the tail shares one bucket, clamping pins the quantile to the
    // true max (the small-sample p99 fix from BENCH_serve.json).
    static NARROW: WindowedHistogram = WindowedHistogram::with_slice_ns("test.narrow", SLICE);
    NARROW.record_at(0, 1_100_000);
    NARROW.record_at(0, 1_150_000);
    let n = NARROW.stats_at(0, Window::TenSec);
    assert_eq!(n.p99, Some(1_150_000));
    assert!((s.rate_per_sec - 3.0 / s.window_secs).abs() < 1e-9);

    // At epoch 2, the 2-slice window has rotated past epoch 0.
    let s = H.stats_at(2 * SLICE, Window::TenSec);
    assert_eq!(s.count, 1);
    assert_eq!((s.min, s.max), (Some(4000), Some(4000)));
    // The 1m window (12 slices) still covers everything.
    assert_eq!(H.stats_at(2 * SLICE, Window::OneMin).count, 3);
    // Far in the future every window is empty, but the cumulative totals
    // survive.
    let s = H.stats_at(1000 * SLICE, Window::FiveMin);
    assert_eq!(s.count, 0);
    assert_eq!((s.p50, s.min), (None, None));
    assert_eq!(H.total_count(), 3);
    assert_eq!(H.total_sum(), 4300);
}

#[test]
fn ring_slot_reuse_discards_expired_epochs() {
    static H: WindowedHistogram = WindowedHistogram::with_slice_ns("test.reuse", SLICE);
    // Epoch 0 and epoch RING_LEN map to the same ring slot; writing the
    // later epoch must evict the earlier one, not merge with it.
    H.record_at(0, 10);
    let wrapped = live::RING_LEN as u64 * SLICE;
    H.record_at(wrapped, 20);
    let s = H.stats_at(wrapped, Window::FiveMin);
    assert_eq!(s.count, 1);
    assert_eq!(s.min, Some(20));
    assert_eq!(H.total_count(), 2);
}

#[test]
fn concurrent_hammer_conserves_counts_across_rotations() {
    static H: WindowedHistogram = WindowedHistogram::with_slice_ns("test.hammer", SLICE);
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    // Each thread records across epochs 0..40 (interleaved with the other
    // threads' rotations of the same slots) while a reader snapshots
    // concurrently. 40 epochs < RING_LEN, so at the end nothing has fallen
    // off the ring and conservation must be exact.
    const EPOCHS: u64 = 40;
    let t_of = |i: u64| (i % EPOCHS) * SLICE + (i % 7) * (SLICE / 7);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    H.record_at(t_of(i), t * PER_THREAD + i);
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..100 {
                let s = H.stats_at((EPOCHS - 1) * SLICE, Window::FiveMin);
                assert!(s.count <= THREADS * PER_THREAD);
            }
        });
    });
    assert_eq!(H.total_count(), THREADS * PER_THREAD);
    // The 5m window (60 slices) covers all 40 epochs: every record is still
    // in the ring.
    let s = H.stats_at((EPOCHS - 1) * SLICE, Window::FiveMin);
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.min, Some(0));
    assert_eq!(s.max, Some(THREADS * PER_THREAD - 1));
}

#[test]
fn windowed_counter_counts_and_rates() {
    static C: WindowedCounter = WindowedCounter::with_slice_ns("test.counter", SLICE);
    C.add_at(0, 5);
    C.add_at(SLICE, 7);
    assert_eq!(C.total(), 12);
    let s = C.stats_at(SLICE, Window::TenSec);
    assert_eq!(s.count, 12);
    assert!((s.rate_per_sec - 12.0 / s.window_secs).abs() < 1e-9);
    // One slice later the epoch-0 increment leaves the 2-slice window.
    assert_eq!(C.stats_at(2 * SLICE, Window::TenSec).count, 7);
}

#[test]
fn sampler_is_deterministic_and_sparse() {
    let log = RequestLog::new("test.sampler", 0xD1CE, 16, 4);
    let first: Vec<bool> = (0..4096).map(|id| log.is_sampled(id)).collect();
    let second: Vec<bool> = (0..4096).map(|id| log.is_sampled(id)).collect();
    assert_eq!(first, second);
    let kept = first.iter().filter(|&&s| s).count();
    // Expected 256 of 4096; the hash should land within a loose band.
    assert!((128..=512).contains(&kept), "kept {kept} of 4096");
    // sample_every <= 1 keeps everything.
    let all = RequestLog::new("test.all", 1, 1, 4);
    assert!((0..100).all(|id| all.is_sampled(id)));
}

#[test]
fn request_log_keeps_k_worst_and_recent_samples() {
    let _guard = serialize();
    live::set_enabled(true);
    static LOG: RequestLog = RequestLog::new("test.slowlog", 7, 2, 3);
    for id in 0..100u64 {
        // Latencies 1..=100 in scrambled order.
        let latency = (id * 37) % 100 + 1;
        LOG.record(RequestRecord {
            id,
            latency_ns: latency,
            fields: vec![("queries", id)],
        });
    }
    let slow: Vec<u64> = LOG.slow().iter().map(|r| r.latency_ns).collect();
    assert_eq!(slow, vec![100, 99, 98]);
    let sampled = LOG.sampled_recent();
    assert!(sampled.len() <= 32);
    assert!(sampled.iter().all(|r| LOG.is_sampled(r.id)));
    live::set_enabled(false);
    // While disabled nothing is recorded and `record` reports unsampled.
    assert!(!LOG.record(RequestRecord {
        id: 0,
        latency_ns: u64::MAX,
        fields: vec![],
    }));
    assert_eq!(LOG.slow().first().map(|r| r.latency_ns), Some(100));
}

#[test]
fn disabled_live_metrics_record_nothing() {
    let _guard = serialize();
    live::set_enabled(false);
    static H: WindowedHistogram = WindowedHistogram::new("test.disabled_h");
    static C: WindowedCounter = WindowedCounter::new("test.disabled_c");
    H.record(123);
    C.incr();
    assert_eq!(H.total_count(), 0);
    assert_eq!(C.total(), 0);
}

#[test]
fn render_metrics_emits_parseable_key_value_lines() {
    let _guard = serialize();
    live::set_enabled(true);
    static H: WindowedHistogram = WindowedHistogram::new("test.render_h");
    static C: WindowedCounter = WindowedCounter::new("test.render_c");
    H.record(1000);
    H.record(3000);
    C.add(4);
    let now = em_rt::stats::now_ns();
    let text = live::render_metrics_at(now);
    live::set_enabled(false);
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("key");
        let value = parts.next().unwrap_or_else(|| panic!("no value: {line}"));
        assert!(parts.next().is_none(), "extra tokens: {line}");
        assert!(!key.is_empty());
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
    }
    assert!(text.contains("test.render_h.total.count 2"), "{text}");
    assert!(text.contains("test.render_h.10s.min 1000"), "{text}");
    assert!(text.contains("test.render_h.10s.max 3000"), "{text}");
    assert!(text.contains("test.render_c.total 4"), "{text}");
    // Metric blocks appear in name order (line order within a block is
    // logical: totals, then windows).
    let c_at = text.find("test.render_c").expect("counter block");
    let h_at = text.find("test.render_h").expect("histogram block");
    assert!(c_at < h_at, "{text}");
}

#[test]
fn health_registry_tracks_latest_component_state() {
    let _guard = serialize();
    live::clear_health();
    assert!(live::health_ok());
    let (ok, body) = live::render_health();
    assert!(ok);
    assert!(body.contains("no components reported"), "{body}");

    live::set_health("test.index", Ok("42 live records".to_string()));
    live::set_health("test.wal", Err("torn tail".to_string()));
    assert!(!live::health_ok());
    let (ok, body) = live::render_health();
    assert!(!ok);
    assert!(body.starts_with("FAIL\n"), "{body}");
    assert!(body.contains("test.index ok 42 live records"), "{body}");
    assert!(body.contains("test.wal FAIL torn tail"), "{body}");

    // A newer report replaces the old one.
    live::set_health("test.wal", Ok("clean".to_string()));
    assert!(live::health_ok());
    let (ok, body) = live::render_health();
    assert!(ok, "{body}");
    assert!(body.starts_with("ok\n"), "{body}");
    live::clear_health();
}
