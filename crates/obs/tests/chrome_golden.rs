//! Golden-file test for the Chrome trace-event exporter: a fixed JSONL
//! trace must convert to byte-identical trace-event JSON. The golden file
//! is `tests/golden/chrome_trace.json`; regenerate it by running this test
//! with `EM_UPDATE_GOLDEN=1` and committing the rewritten file.

use em_obs::report::{chrome_trace, parse_trace};

const INPUT: &str = include_str!("golden/chrome_trace_input.jsonl");
const GOLDEN: &str = include_str!("golden/chrome_trace.json");

#[test]
fn chrome_trace_matches_golden_file() {
    let records = parse_trace(INPUT).expect("fixture parses");
    let got = chrome_trace(&records);
    if std::env::var("EM_UPDATE_GOLDEN").is_ok() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/chrome_trace.json"
        );
        std::fs::write(path, &got).expect("rewrite golden");
        return;
    }
    assert_eq!(
        got,
        GOLDEN.trim_end(),
        "chrome_trace output drifted from tests/golden/chrome_trace.json \
         (run with EM_UPDATE_GOLDEN=1 to regenerate)"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_expected_shape() {
    let records = parse_trace(INPUT).expect("fixture parses");
    let out = chrome_trace(&records);
    let parsed = em_rt::Json::parse(&out).expect("exporter emits valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(em_rt::Json::as_arr)
        .expect("traceEvents array");
    // One metadata record, two spans, one instant; summary records skipped.
    assert_eq!(events.len(), 4);
    let phases: Vec<&str> = events
        .iter()
        .map(|e| e.get("ph").and_then(em_rt::Json::as_str).unwrap())
        .collect();
    assert_eq!(phases, ["M", "X", "X", "i"]);
    // Nanosecond inputs land as microseconds.
    assert_eq!(events[1].get("ts").and_then(em_rt::Json::as_f64), Some(1.0));
    assert_eq!(
        events[1].get("dur").and_then(em_rt::Json::as_f64),
        Some(2.5)
    );
}
