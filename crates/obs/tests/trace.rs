//! End-to-end trace tests: emit spans/events/metrics through a real file
//! sink, flush, parse the JSONL back, and render the report. Tests mutate
//! the process-global trace mode, so they serialize on a mutex.

use em_obs::{report, Counter, Histogram, TraceMode};
use em_rt::Json;
use std::sync::{Mutex, MutexGuard};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("em_obs_test_{}_{name}.jsonl", std::process::id()));
    p
}

fn kinds(records: &[Json]) -> Vec<&str> {
    records
        .iter()
        .map(|r| r.get("kind").and_then(Json::as_str).unwrap_or(""))
        .collect()
}

#[test]
fn file_sink_captures_spans_events_and_metrics() {
    let _guard = serialize();
    let path = temp_path("capture");
    em_obs::set_mode(TraceMode::File(path.to_string_lossy().into_owned()));

    static TEST_PAIRS: Counter = Counter::new("test.pairs");
    static TEST_LATENCY: Histogram = Histogram::new("test.latency");
    {
        let _outer = em_obs::span!("test.outer");
        {
            let _inner = em_obs::span!("test.inner");
            TEST_PAIRS.add(5);
            TEST_LATENCY.record(300);
        }
        em_obs::event("test.step", || {
            vec![("fold", Json::from(2usize)), ("f1", Json::from(0.9))]
        });
    }
    em_obs::flush();
    em_obs::set_mode(TraceMode::Off);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let records = report::parse_trace(&text).expect("trace parses");
    let ks = kinds(&records);
    for expected in [
        "span", "event", "counter", "hist", "thread", "pool", "channel", "meta",
    ] {
        assert!(ks.contains(&expected), "missing kind {expected}: {ks:?}");
    }

    // Nesting: the inner span's parent must be the outer span's id.
    let spans: Vec<&Json> = records
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("span"))
        .collect();
    let outer = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("test.outer"))
        .expect("outer span recorded");
    let inner = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("test.inner"))
        .expect("inner span recorded");
    assert_eq!(
        inner.get("parent").and_then(Json::as_f64),
        outer.get("id").and_then(Json::as_f64)
    );
    let t = |rec: &Json, k: &str| rec.get(k).and_then(Json::as_f64).unwrap();
    assert!(t(inner, "t0") >= t(outer, "t0"));
    assert!(t(inner, "t1") <= t(outer, "t1"));

    // Metrics captured the in-window values.
    let counter = records
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("test.pairs"))
        .expect("counter flushed");
    assert_eq!(counter.get("value").and_then(Json::as_f64), Some(5.0));

    // The report renders the stage table from this trace.
    let rendered = report::render_report(&records);
    assert!(rendered.contains("test.outer"), "{rendered}");
    assert!(rendered.contains("test.inner"), "{rendered}");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn histogram_quantiles_clamp_to_observed_range() {
    let _guard = serialize();
    let path = temp_path("clamp");
    em_obs::set_mode(TraceMode::File(path.to_string_lossy().into_owned()));
    static CLAMP_H: Histogram = Histogram::new("test.clamp");
    // Both observations land in the [2^20, 2^21) bucket: the raw log2
    // estimate would read 2097152, but clamping to the exact observed range
    // pins p50/p99 to the true values.
    CLAMP_H.record(1_100_000);
    CLAMP_H.record(1_150_000);
    assert_eq!(CLAMP_H.observed_range(), Some((1_100_000, 1_150_000)));
    assert_eq!(CLAMP_H.quantile(0.50), Some(1_150_000));
    assert_eq!(CLAMP_H.quantile(0.99), Some(1_150_000));
    em_obs::flush();
    em_obs::set_mode(TraceMode::Off);

    // The flushed record carries the clamped quantiles and the exact range.
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let records = report::parse_trace(&text).expect("trace parses");
    let hist = records
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("test.clamp"))
        .expect("hist flushed");
    assert_eq!(hist.get("min").and_then(Json::as_f64), Some(1_100_000.0));
    assert_eq!(hist.get("max").and_then(Json::as_f64), Some(1_150_000.0));
    assert_eq!(hist.get("p99").and_then(Json::as_f64), Some(1_150_000.0));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = serialize();
    em_obs::set_mode(TraceMode::Off);
    assert!(!em_obs::enabled());
    static OFF_COUNTER: Counter = Counter::new("test.off");
    OFF_COUNTER.add(99);
    assert_eq!(OFF_COUNTER.value(), 0);
    let _span = em_obs::span!("test.ignored");
    em_obs::event("test.ignored", || {
        panic!("fields must not be built when off")
    });
    em_obs::flush();
}

#[test]
fn spans_from_pool_threads_land_in_their_own_shards() {
    let _guard = serialize();
    let path = temp_path("pool");
    em_obs::set_mode(TraceMode::File(path.to_string_lossy().into_owned()));
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }
    em_rt::parallel_for(64, 0, |_| {
        let _span = em_obs::span!("test.task");
    });
    em_obs::flush();
    em_obs::set_mode(TraceMode::Off);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let records = report::parse_trace(&text).expect("trace parses");
    let tasks = records
        .iter()
        .filter(|r| r.get("name").and_then(Json::as_str) == Some("test.task"))
        .count();
    assert_eq!(tasks, 64);
    // The runtime's own stats were live: the parallel section was counted.
    let pool = records
        .iter()
        .rev()
        .find(|r| r.get("kind").and_then(Json::as_str) == Some("pool"))
        .expect("pool record");
    let jobs = pool.get("jobs").and_then(Json::as_f64).unwrap_or(0.0);
    let inline = pool
        .get("inline_sections")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(jobs + inline >= 1.0, "parallel section not counted");
    let _ = std::fs::remove_file(&path);
}
