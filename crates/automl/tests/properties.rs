//! Property tests for the AutoML engine: every sampled or suggested
//! configuration is valid, encodings have fixed width, and search history
//! invariants hold.

use em_automl::{
    run_search, Budget, ConfigSpace, Configuration, Domain, RandomSearch, SmacSearch, TpeSearch,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A moderately rich conditional space.
fn build_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    s.add(
        "model",
        Domain::Categorical(vec!["rf".into(), "gbm".into(), "knn".into()]),
    );
    s.add_conditional(
        "rf:trees",
        Domain::Int {
            lo: 10,
            hi: 500,
            log: true,
        },
        "model",
        ["rf"],
    );
    s.add_conditional(
        "gbm:lr",
        Domain::Float {
            lo: 0.01,
            hi: 1.0,
            log: true,
        },
        "model",
        ["gbm"],
    );
    s.add_conditional(
        "knn:k",
        Domain::Int {
            lo: 1,
            hi: 50,
            log: false,
        },
        "model",
        ["knn"],
    );
    s.add(
        "scale",
        Domain::Categorical(vec!["none".into(), "standard".into(), "robust".into()]),
    );
    s.add_conditional(
        "robust:q_min",
        Domain::Float {
            lo: 0.0,
            hi: 0.45,
            log: false,
        },
        "scale",
        ["robust"],
    );
    s
}

fn toy_objective(c: &Configuration) -> f64 {
    let base = match c.get_str("model") {
        Some("rf") => 0.8,
        Some("gbm") => 0.6,
        _ => 0.4,
    };
    let bonus = c
        .get_float("rf:trees")
        .map_or(0.0, |t| (t / 500.0) * 0.1);
    base + bonus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_configs_always_validate(seed in 0u64..5000) {
        let space = build_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.sample(&mut rng);
        prop_assert!(space.validate(&c).is_ok());
        // Exactly one model branch is active.
        let branches = ["rf:trees", "gbm:lr", "knn:k"];
        let active = branches.iter().filter(|b| c.contains(b)).count();
        prop_assert_eq!(active, 1);
    }

    #[test]
    fn neighbors_always_validate(seed in 0u64..2000) {
        let space = build_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let base = space.sample(&mut rng);
        for _ in 0..5 {
            let nb = space.neighbor(&base, &mut rng);
            prop_assert!(space.validate(&nb).is_ok(), "{nb}");
        }
    }

    #[test]
    fn encodings_have_fixed_width_and_bounded_values(seed in 0u64..2000) {
        let space = build_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.sample(&mut rng);
        let enc = space.encode(&c);
        prop_assert_eq!(enc.len(), space.len());
        for (i, &v) in enc.iter().enumerate() {
            // -1 (inactive), a small categorical index, or a [0,1] numeric.
            prop_assert!(v == -1.0 || (0.0..=3.0).contains(&v), "slot {i}: {v}");
        }
    }

    #[test]
    fn search_history_is_well_formed(seed in 0u64..50, n in 5usize..25) {
        let space = build_space();
        let h = run_search(
            &space,
            &mut RandomSearch,
            &mut toy_objective,
            Budget::Evaluations(n),
            seed,
        );
        prop_assert_eq!(h.len(), n);
        let trace = h.best_score_trace();
        for w in trace.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert_eq!(h.best_score(), *trace.last().unwrap());
        for (i, t) in h.trials().iter().enumerate() {
            prop_assert_eq!(t.index, i);
            prop_assert!(space.validate(&t.config).is_ok());
        }
    }

    #[test]
    fn smac_and_tpe_produce_valid_configs(seed in 0u64..10) {
        let space = build_space();
        for algo in [0, 1] {
            let h = if algo == 0 {
                run_search(&space, &mut SmacSearch::default(), &mut toy_objective, Budget::Evaluations(16), seed)
            } else {
                run_search(&space, &mut TpeSearch::default(), &mut toy_objective, Budget::Evaluations(16), seed)
            };
            for t in h.trials() {
                prop_assert!(space.validate(&t.config).is_ok());
            }
            // The "rf" branch dominates this objective; model-based search
            // should find it by the end.
            prop_assert_eq!(h.incumbent().unwrap().config.get_str("model"), Some("rf"));
        }
    }
}
