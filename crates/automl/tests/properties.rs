//! Property tests for the AutoML engine: every sampled or suggested
//! configuration is valid, encodings have fixed width, and search history
//! invariants hold.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use em_automl::{
    run_search, Budget, ConfigSpace, Configuration, Domain, RandomSearch, SmacSearch, TpeSearch,
};
use em_rt::StdRng;

const CASES: u64 = 32;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0xa010_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// A moderately rich conditional space.
fn build_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    s.add(
        "model",
        Domain::Categorical(vec!["rf".into(), "gbm".into(), "knn".into()]),
    );
    s.add_conditional(
        "rf:trees",
        Domain::Int {
            lo: 10,
            hi: 500,
            log: true,
        },
        "model",
        ["rf"],
    );
    s.add_conditional(
        "gbm:lr",
        Domain::Float {
            lo: 0.01,
            hi: 1.0,
            log: true,
        },
        "model",
        ["gbm"],
    );
    s.add_conditional(
        "knn:k",
        Domain::Int {
            lo: 1,
            hi: 50,
            log: false,
        },
        "model",
        ["knn"],
    );
    s.add(
        "scale",
        Domain::Categorical(vec!["none".into(), "standard".into(), "robust".into()]),
    );
    s.add_conditional(
        "robust:q_min",
        Domain::Float {
            lo: 0.0,
            hi: 0.45,
            log: false,
        },
        "scale",
        ["robust"],
    );
    s
}

fn toy_objective(c: &Configuration) -> f64 {
    let base = match c.get_str("model") {
        Some("rf") => 0.8,
        Some("gbm") => 0.6,
        _ => 0.4,
    };
    let bonus = c.get_float("rf:trees").map_or(0.0, |t| (t / 500.0) * 0.1);
    base + bonus
}

#[test]
fn sampled_configs_always_validate() {
    check(|rng| {
        let space = build_space();
        let sample_seed = rng.random_range(0..5000u64);
        let mut rng = StdRng::seed_from_u64(sample_seed);
        let c = space.sample(&mut rng);
        assert!(space.validate(&c).is_ok());
        // Exactly one model branch is active.
        let branches = ["rf:trees", "gbm:lr", "knn:k"];
        let active = branches.iter().filter(|b| c.contains(b)).count();
        assert_eq!(active, 1);
    });
}

#[test]
fn neighbors_always_validate() {
    check(|rng| {
        let space = build_space();
        let base = space.sample(rng);
        for _ in 0..5 {
            let nb = space.neighbor(&base, rng);
            assert!(space.validate(&nb).is_ok(), "{nb}");
        }
    });
}

#[test]
fn encodings_have_fixed_width_and_bounded_values() {
    check(|rng| {
        let space = build_space();
        let c = space.sample(rng);
        let enc = space.encode(&c);
        assert_eq!(enc.len(), space.len());
        for (i, &v) in enc.iter().enumerate() {
            // -1 (inactive), a small categorical index, or a [0,1] numeric.
            assert!(v == -1.0 || (0.0..=3.0).contains(&v), "slot {i}: {v}");
        }
    });
}

#[test]
fn search_history_is_well_formed() {
    check(|rng| {
        let space = build_space();
        let seed = rng.random_range(0..50u64);
        let n = rng.random_range(5..25usize);
        let h = run_search(
            &space,
            &mut RandomSearch,
            &mut toy_objective,
            Budget::Evaluations(n),
            seed,
        );
        assert_eq!(h.len(), n);
        let trace = h.best_score_trace();
        for w in trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(h.best_score(), *trace.last().unwrap());
        for (i, t) in h.trials().iter().enumerate() {
            assert_eq!(t.index, i);
            assert!(space.validate(&t.config).is_ok());
        }
    });
}

#[test]
fn smac_and_tpe_produce_valid_configs() {
    // Only 10 distinct search seeds existed in the old strategy; keep that
    // footprint (SMBO runs are comparatively expensive).
    for seed in 0..10u64 {
        let space = build_space();
        for algo in [0, 1] {
            let h = if algo == 0 {
                run_search(
                    &space,
                    &mut SmacSearch::default(),
                    &mut toy_objective,
                    Budget::Evaluations(16),
                    seed,
                )
            } else {
                run_search(
                    &space,
                    &mut TpeSearch::default(),
                    &mut toy_objective,
                    Budget::Evaluations(16),
                    seed,
                )
            };
            for t in h.trials() {
                assert!(space.validate(&t.config).is_ok(), "seed {seed}");
            }
            // The "rf" branch dominates this objective; model-based search
            // should find it by the end.
            assert_eq!(
                h.incumbent().unwrap().config.get_str("model"),
                Some("rf"),
                "seed {seed}"
            );
        }
    }
}
