//! Regression tests for the asynchronous SMBO runner: its trajectory must
//! match batch mode exactly for the same seed, every dedicated worker must
//! get work (no starvation), and the serial fallback must reproduce the
//! same history — which is what makes the runner thread-count-deterministic.

use em_automl::{
    run_search_async, run_search_async_report, run_search_parallel, Budget, ConfigSpace,
    Configuration, Domain, SmacSearch, TpeSearch,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// These tests mutate the process-global `em_rt::set_threads` knob, so they
/// must not interleave with each other.
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A conditional toy space exercising categorical, int, and float domains.
fn build_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    s.add(
        "model",
        Domain::Categorical(vec!["rf".into(), "gbm".into()]),
    );
    s.add_conditional(
        "rf:trees",
        Domain::Int {
            lo: 10,
            hi: 500,
            log: true,
        },
        "model",
        ["rf"],
    );
    s.add_conditional(
        "gbm:lr",
        Domain::Float {
            lo: 0.01,
            hi: 1.0,
            log: true,
        },
        "model",
        ["gbm"],
    );
    s.add(
        "x",
        Domain::Float {
            lo: -2.0,
            hi: 2.0,
            log: false,
        },
    );
    s
}

/// Constant-time rigged objective: a deterministic function of the
/// configuration alone, so batch and async runs are comparable eval-by-eval.
fn toy_objective(c: &Configuration) -> f64 {
    let x = c.get_float("x").unwrap();
    let bonus = match c.get_str("model") {
        Some("rf") => c.get_int("rf:trees").unwrap() as f64 / 500.0,
        _ => c.get_float("gbm:lr").unwrap_or(0.0),
    };
    -(x - 0.5) * (x - 0.5) + 0.1 * bonus
}

fn assert_same_history(a: &em_automl::SearchHistory, b: &em_automl::SearchHistory) {
    assert_eq!(a.len(), b.len());
    for (ta, tb) in a.trials().iter().zip(b.trials()) {
        assert_eq!(ta.config, tb.config);
        assert_eq!(ta.score.to_bits(), tb.score.to_bits());
        assert_eq!(ta.index, tb.index);
    }
}

#[test]
fn async_visits_the_same_configurations_as_batch_mode() {
    let _guard = serialize();
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }
    let space = build_space();
    for seed in [0u64, 7, 1234] {
        for batch in [2usize, 4, 8] {
            let batched = run_search_parallel(
                &space,
                &mut SmacSearch::default(),
                &toy_objective,
                Budget::Evaluations(24),
                seed,
                &[],
                batch,
            );
            let asynced = run_search_async(
                &space,
                &mut SmacSearch::default(),
                &toy_objective,
                Budget::Evaluations(24),
                seed,
                &[],
                batch,
            );
            // Not merely the same set: the same configurations with the
            // same scores in the same commit order.
            assert_same_history(&batched, &asynced);
        }
    }
}

#[test]
fn async_matches_batch_mode_for_tpe_too() {
    let _guard = serialize();
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }
    let space = build_space();
    let batched = run_search_parallel(
        &space,
        &mut TpeSearch::default(),
        &toy_objective,
        Budget::Evaluations(20),
        3,
        &[],
        4,
    );
    let asynced = run_search_async(
        &space,
        &mut TpeSearch::default(),
        &toy_objective,
        Budget::Evaluations(20),
        3,
        &[],
        4,
    );
    assert_same_history(&batched, &asynced);
}

#[test]
fn serial_fallback_reproduces_the_async_history() {
    let _guard = serialize();
    // EM_THREADS=1 drives worker count to zero; the inline fallback must
    // produce the exact same trajectory as the threaded run.
    let space = build_space();
    let saved = em_rt::threads();
    em_rt::set_threads(1);
    let serial = run_search_async(
        &space,
        &mut SmacSearch::default(),
        &toy_objective,
        Budget::Evaluations(16),
        11,
        &[],
        4,
    );
    em_rt::set_threads(saved.max(4));
    let threaded = run_search_async(
        &space,
        &mut SmacSearch::default(),
        &toy_objective,
        Budget::Evaluations(16),
        11,
        &[],
        4,
    );
    em_rt::set_threads(saved);
    assert_same_history(&serial, &threaded);
}

#[test]
fn no_worker_starves() {
    let _guard = serialize();
    if std::env::var("EM_THREADS").is_err() {
        em_rt::set_threads(4);
    }
    let batch = 8usize;
    let n_workers = batch.min(em_rt::threads().saturating_sub(1));
    if n_workers < 2 {
        // EM_THREADS pinned the pool below real concurrency; the inline
        // fallback path is covered by serial_fallback_reproduces_the_async_history.
        return;
    }
    // Rig the objective to block until every worker has picked up a job:
    // the first round dispatches `batch >= n_workers` jobs, so each worker
    // must claim (and therefore complete) at least one evaluation.
    let started = AtomicUsize::new(0);
    let space = build_space();
    let gated = |c: &Configuration| -> f64 {
        let me = started.fetch_add(1, Ordering::SeqCst) + 1;
        if me <= n_workers {
            while started.load(Ordering::SeqCst) < n_workers {
                std::hint::spin_loop();
            }
        }
        toy_objective(c)
    };
    let report = run_search_async_report(
        &space,
        &mut SmacSearch::default(),
        &gated,
        Budget::Evaluations(32),
        5,
        &[],
        batch,
    );
    assert_eq!(report.history.len(), 32);
    assert_eq!(report.evals_per_worker.len(), n_workers);
    assert!(
        report.evals_per_worker.iter().all(|&n| n >= 1),
        "a worker starved: {:?}",
        report.evals_per_worker
    );
    assert_eq!(report.evals_per_worker.iter().sum::<usize>(), 32);
}
