//! # em-automl — AutoML search engine
//!
//! Replaces auto-sklearn for the AutoML-EM reproduction: hierarchical
//! configuration spaces with conditional parameters (paper Figs. 4/5),
//! deterministic seeded sampling, and three search algorithms — random
//! search, SMAC-style SMBO with a random-forest surrogate and expected
//! improvement, and TPE — running under evaluation-count or wall-clock
//! budgets (paper §III-A).
//!
//! ```
//! use em_automl::{Budget, ConfigSpace, Domain, RandomSearch, run_search};
//!
//! let mut space = ConfigSpace::new();
//! space.add("x", Domain::Float { lo: 0.0, hi: 1.0, log: false });
//! let mut objective = |c: &em_automl::Configuration| -(c.get_float("x").unwrap() - 0.3f64).abs();
//! let history = run_search(&space, &mut RandomSearch, &mut objective, Budget::Evaluations(50), 0);
//! assert!((history.incumbent().unwrap().config.get_float("x").unwrap() - 0.3).abs() < 0.2);
//! ```

mod config;
mod runner;
pub mod search;
mod space;

pub use config::{Configuration, ParamValue};
pub use runner::{
    run_search, run_search_async, run_search_async_report, run_search_parallel,
    run_search_with_initial, AsyncSearchReport, Budget, SearchAlgorithm, SearchHistory, Trial,
};
pub use search::{RandomSearch, SmacParams, SmacSearch, TpeParams, TpeSearch};
pub use space::{Condition, ConfigSpace, Domain, Param};
