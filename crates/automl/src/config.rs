//! Concrete configurations: assignments of values to the active parameters
//! of a [`crate::ConfigSpace`]. Printable in the auto-sklearn style of the
//! paper's Figures 5 and 11.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A single parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Categorical choice.
    Cat(String),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
}

impl ParamValue {
    /// The categorical string, if this is a categorical value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content (ints only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float content; integers coerce.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(f) => Some(*f),
            ParamValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// An immutable assignment of values to active parameters, keyed by name.
/// Stored sorted so `Display`, equality, and hashing are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Configuration {
    values: BTreeMap<String, ParamValue>,
}

impl Configuration {
    /// Build from a name → value map.
    pub fn from_map(values: impl IntoIterator<Item = (String, ParamValue)>) -> Self {
        Configuration {
            values: values.into_iter().collect(),
        }
    }

    /// Whether the parameter is present (i.e. active).
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Raw value lookup.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Categorical lookup.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(ParamValue::as_str)
    }

    /// Integer lookup.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.values.get(name).and_then(ParamValue::as_int)
    }

    /// Float lookup (integers coerce).
    pub fn get_float(&self, name: &str) -> Option<f64> {
        self.values.get(name).and_then(ParamValue::as_float)
    }

    /// Parameter names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.values.keys()
    }

    /// Number of active parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Copy out as a mutable map (used to build modified configurations,
    /// e.g. the paper's Figure 12 ablations).
    pub fn to_map(&self) -> HashMap<String, ParamValue> {
        self.values
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Return a copy with `name` set to `value` (inserting if new).
    pub fn with(&self, name: impl Into<String>, value: ParamValue) -> Self {
        let mut values = self.values.clone();
        values.insert(name.into(), value);
        Configuration { values }
    }

    /// Return a copy without `name` (no-op if absent).
    pub fn without(&self, name: &str) -> Self {
        let mut values = self.values.clone();
        values.remove(name);
        Configuration { values }
    }
}

impl fmt::Display for Configuration {
    /// Renders in the auto-sklearn dump style of the paper's Figure 11:
    /// one `'name': value,` line per parameter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (k, v) in &self.values {
            match v {
                ParamValue::Cat(s) => writeln!(f, "  '{k}': '{s}',")?,
                ParamValue::Int(i) => writeln!(f, "  '{k}': {i},")?,
                ParamValue::Float(x) => writeln!(f, "  '{k}': {x},")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Configuration {
        Configuration::from_map([
            (
                "classifier:__choice__".to_string(),
                ParamValue::Cat("random_forest".into()),
            ),
            (
                "random_forest:n_estimators".to_string(),
                ParamValue::Int(100),
            ),
            (
                "random_forest:max_features".to_string(),
                ParamValue::Float(0.377),
            ),
        ])
    }

    #[test]
    fn typed_lookups() {
        let c = sample();
        assert_eq!(c.get_str("classifier:__choice__"), Some("random_forest"));
        assert_eq!(c.get_int("random_forest:n_estimators"), Some(100));
        assert_eq!(c.get_float("random_forest:max_features"), Some(0.377));
        // Int coerces to float but not vice versa.
        assert_eq!(c.get_float("random_forest:n_estimators"), Some(100.0));
        assert_eq!(c.get_int("random_forest:max_features"), None);
        assert_eq!(c.get_str("missing"), None);
    }

    #[test]
    fn display_is_figure11_style() {
        let c = sample();
        let s = c.to_string();
        assert!(s.contains("'classifier:__choice__': 'random_forest',"));
        assert!(s.contains("'random_forest:n_estimators': 100,"));
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn with_and_without() {
        let c = sample();
        let c2 = c.with("balancing:strategy", ParamValue::Cat("weighting".into()));
        assert_eq!(c2.len(), 4);
        assert!(!c.contains("balancing:strategy"));
        let c3 = c2.without("balancing:strategy");
        assert_eq!(c3, c);
    }

    #[test]
    fn equality_is_order_independent() {
        let a = Configuration::from_map([
            ("b".to_string(), ParamValue::Int(1)),
            ("a".to_string(), ParamValue::Int(2)),
        ]);
        let b = Configuration::from_map([
            ("a".to_string(), ParamValue::Int(2)),
            ("b".to_string(), ParamValue::Int(1)),
        ]);
        assert_eq!(a, b);
    }
}
