//! Hierarchical configuration spaces (the auto-sklearn "search space" of
//! paper §III-A): named parameters with categorical / integer / float
//! domains, and activation conditions that make child parameters active only
//! for particular values of a categorical parent (e.g. `random_forest:*`
//! parameters only exist when `classifier:__choice__ = random_forest`).

use crate::config::{Configuration, ParamValue};
use em_rt::StdRng;
use std::collections::HashMap;

/// The value domain of one parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// One of a fixed set of choices.
    Categorical(Vec<String>),
    /// Integer range `[lo, hi]` inclusive; `log` samples uniformly in
    /// log-space (requires `lo >= 1`).
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Sample log-uniformly.
        log: bool,
    },
    /// Float range `[lo, hi]`; `log` samples uniformly in log-space
    /// (requires `lo > 0`).
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Sample log-uniformly.
        log: bool,
    },
}

/// Activation condition: the parameter is active iff its categorical parent
/// currently holds one of `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Name of the (categorical) parent parameter.
    pub parent: String,
    /// Parent values that activate this parameter.
    pub values: Vec<String>,
}

/// A named parameter with a domain and an optional activation condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Unique name, conventionally `component:param` (auto-sklearn style).
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Optional activation condition.
    pub condition: Option<Condition>,
}

/// An ordered collection of parameters forming the search space.
#[derive(Debug, Clone, Default)]
pub struct ConfigSpace {
    params: Vec<Param>,
    index: HashMap<String, usize>,
}

impl ConfigSpace {
    /// Empty space.
    pub fn new() -> Self {
        ConfigSpace::default()
    }

    /// Add an unconditional parameter. Parents must be added before their
    /// children so sampling can resolve conditions in one pass.
    ///
    /// # Panics
    /// On duplicate names.
    pub fn add(&mut self, name: impl Into<String>, domain: Domain) -> &mut Self {
        self.add_param(Param {
            name: name.into(),
            domain,
            condition: None,
        })
    }

    /// Add a parameter active only when `parent` holds one of `values`.
    ///
    /// # Panics
    /// If the parent is unknown, non-categorical, or added after the child.
    pub fn add_conditional(
        &mut self,
        name: impl Into<String>,
        domain: Domain,
        parent: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> &mut Self {
        let parent = parent.into();
        let pi = *self
            .index
            .get(&parent)
            .unwrap_or_else(|| panic!("unknown parent parameter {parent}"));
        assert!(
            matches!(self.params[pi].domain, Domain::Categorical(_)),
            "condition parent {parent} must be categorical"
        );
        self.add_param(Param {
            name: name.into(),
            domain,
            condition: Some(Condition {
                parent,
                values: values.into_iter().map(Into::into).collect(),
            }),
        })
    }

    fn add_param(&mut self, p: Param) -> &mut Self {
        assert!(
            !self.index.contains_key(&p.name),
            "duplicate parameter {}",
            p.name
        );
        self.index.insert(p.name.clone(), self.params.len());
        self.params.push(p);
        self
    }

    /// The parameters in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Look up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Param> {
        self.index.get(name).map(|&i| &self.params[i])
    }

    /// Number of parameters (active or not).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Whether `param` is active under partially-built configuration
    /// `values`.
    fn is_active(&self, param: &Param, values: &HashMap<String, ParamValue>) -> bool {
        match &param.condition {
            None => true,
            Some(cond) => match values.get(&cond.parent) {
                Some(ParamValue::Cat(v)) => cond.values.iter().any(|c| c == v),
                _ => false,
            },
        }
    }

    /// Draw a uniformly random valid configuration.
    pub fn sample(&self, rng: &mut StdRng) -> Configuration {
        let mut values: HashMap<String, ParamValue> = HashMap::new();
        for p in &self.params {
            if !self.is_active(p, &values) {
                continue;
            }
            let v = sample_domain(&p.domain, rng);
            values.insert(p.name.clone(), v);
        }
        Configuration::from_map(values)
    }

    /// Produce a neighbor of `config`: one active parameter resampled, then
    /// conditional activation recomputed (children of a changed choice are
    /// freshly sampled; deactivated children are dropped).
    pub fn neighbor(&self, config: &Configuration, rng: &mut StdRng) -> Configuration {
        let active: Vec<&Param> = self
            .params
            .iter()
            .filter(|p| config.contains(&p.name))
            .collect();
        if active.is_empty() {
            return self.sample(rng);
        }
        let target = active[rng.random_range(0..active.len())].name.clone();
        let mut values: HashMap<String, ParamValue> = HashMap::new();
        for p in &self.params {
            if !self.is_active(p, &values) {
                continue;
            }
            let v = if p.name == target {
                sample_domain(&p.domain, rng)
            } else if let Some(existing) = config.get(&p.name) {
                existing.clone()
            } else {
                // Newly activated child of a mutated parent.
                sample_domain(&p.domain, rng)
            };
            values.insert(p.name.clone(), v);
        }
        Configuration::from_map(values)
    }

    /// Validate that a configuration assigns every active parameter a value
    /// inside its domain and contains no inactive parameters.
    pub fn validate(&self, config: &Configuration) -> Result<(), String> {
        let mut values: HashMap<String, ParamValue> = HashMap::new();
        for p in &self.params {
            let active = self.is_active(p, &values);
            match (active, config.get(&p.name)) {
                (true, Some(v)) => {
                    if !value_in_domain(v, &p.domain) {
                        return Err(format!("{} = {v:?} outside its domain", p.name));
                    }
                    values.insert(p.name.clone(), v.clone());
                }
                (true, None) => return Err(format!("missing active parameter {}", p.name)),
                (false, Some(_)) => {
                    return Err(format!("inactive parameter {} has a value", p.name))
                }
                (false, None) => {}
            }
        }
        for name in config.names() {
            if !self.index.contains_key(name) {
                return Err(format!("unknown parameter {name}"));
            }
        }
        Ok(())
    }

    /// Encode a configuration as a fixed-width numeric vector for surrogate
    /// models: one slot per parameter in declaration order. Categoricals
    /// encode as their choice index, numerics normalize to `[0, 1]`
    /// (log-aware), and inactive parameters encode as `-1`.
    pub fn encode(&self, config: &Configuration) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| match config.get(&p.name) {
                None => -1.0,
                Some(v) => encode_value(v, &p.domain),
            })
            .collect()
    }
}

fn sample_domain(domain: &Domain, rng: &mut StdRng) -> ParamValue {
    match domain {
        Domain::Categorical(choices) => {
            assert!(!choices.is_empty(), "empty categorical domain");
            ParamValue::Cat(choices[rng.random_range(0..choices.len())].clone())
        }
        Domain::Int { lo, hi, log } => {
            assert!(lo <= hi, "empty int domain");
            if *log {
                assert!(*lo >= 1, "log int domain requires lo >= 1");
                let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64 + 1.0).ln());
                let v = rng.random_range(llo..lhi).exp().floor() as i64;
                ParamValue::Int(v.clamp(*lo, *hi))
            } else if lo == hi {
                ParamValue::Int(*lo)
            } else {
                ParamValue::Int(rng.random_range(*lo..=*hi))
            }
        }
        Domain::Float { lo, hi, log } => {
            assert!(lo <= hi, "empty float domain");
            if *log {
                assert!(*lo > 0.0, "log float domain requires lo > 0");
                let v = rng.random_range(lo.ln()..=hi.ln()).exp();
                ParamValue::Float(v.clamp(*lo, *hi))
            } else if lo == hi {
                ParamValue::Float(*lo)
            } else {
                ParamValue::Float(rng.random_range(*lo..*hi))
            }
        }
    }
}

fn value_in_domain(v: &ParamValue, domain: &Domain) -> bool {
    match (v, domain) {
        (ParamValue::Cat(s), Domain::Categorical(choices)) => choices.iter().any(|c| c == s),
        (ParamValue::Int(i), Domain::Int { lo, hi, .. }) => i >= lo && i <= hi,
        (ParamValue::Float(f), Domain::Float { lo, hi, .. }) => f >= lo && f <= hi,
        _ => false,
    }
}

fn encode_value(v: &ParamValue, domain: &Domain) -> f64 {
    match (v, domain) {
        (ParamValue::Cat(s), Domain::Categorical(choices)) => choices
            .iter()
            .position(|c| c == s)
            .map_or(-1.0, |i| i as f64),
        (ParamValue::Int(i), Domain::Int { lo, hi, log }) => {
            if *log {
                let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64).ln());
                if lhi > llo {
                    (((*i as f64).ln()) - llo) / (lhi - llo)
                } else {
                    0.0
                }
            } else if hi > lo {
                (*i - *lo) as f64 / (*hi - *lo) as f64
            } else {
                0.0
            }
        }
        (ParamValue::Float(f), Domain::Float { lo, hi, log }) => {
            if *log {
                let (llo, lhi) = (lo.ln(), hi.ln());
                if lhi > llo {
                    (f.ln() - llo) / (lhi - llo)
                } else {
                    0.0
                }
            } else if hi > lo {
                (f - lo) / (hi - lo)
            } else {
                0.0
            }
        }
        _ => -1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            "classifier",
            Domain::Categorical(vec!["rf".into(), "knn".into()]),
        );
        s.add_conditional(
            "rf:n_estimators",
            Domain::Int {
                lo: 10,
                hi: 100,
                log: false,
            },
            "classifier",
            ["rf"],
        );
        s.add_conditional(
            "knn:k",
            Domain::Int {
                lo: 1,
                hi: 20,
                log: false,
            },
            "classifier",
            ["knn"],
        );
        s.add(
            "scaler",
            Domain::Categorical(vec!["none".into(), "standard".into()]),
        );
        s.add(
            "lr",
            Domain::Float {
                lo: 1e-4,
                hi: 1.0,
                log: true,
            },
        );
        s
    }

    #[test]
    fn samples_are_valid_and_respect_conditions() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = space.sample(&mut rng);
            space.validate(&c).unwrap();
            let clf = c.get_str("classifier").unwrap();
            assert_eq!(c.contains("rf:n_estimators"), clf == "rf");
            assert_eq!(c.contains("knn:k"), clf == "knn");
        }
    }

    #[test]
    fn log_float_sampling_stays_in_range() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let c = space.sample(&mut rng);
            let lr = c.get_float("lr").unwrap();
            assert!((1e-4..=1.0).contains(&lr));
        }
    }

    #[test]
    fn neighbor_changes_something_but_stays_valid() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(3);
        let base = space.sample(&mut rng);
        let mut changed = 0;
        for _ in 0..50 {
            let nb = space.neighbor(&base, &mut rng);
            space.validate(&nb).unwrap();
            if nb != base {
                changed += 1;
            }
        }
        assert!(changed > 30, "neighbors changed only {changed}/50 times");
    }

    #[test]
    fn encode_width_is_param_count() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(4);
        let c = space.sample(&mut rng);
        let enc = space.encode(&c);
        assert_eq!(enc.len(), space.len());
        // Exactly one of the conditional slots is -1.
        let inactive = enc.iter().filter(|&&v| v == -1.0).count();
        assert_eq!(inactive, 1);
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let space = toy_space();
        let mut rng = StdRng::seed_from_u64(5);
        let c = space.sample(&mut rng);
        let mut bad = c.to_map();
        bad.insert("lr".into(), ParamValue::Float(99.0));
        assert!(space.validate(&Configuration::from_map(bad)).is_err());
    }

    #[test]
    fn validate_rejects_inactive_assignment() {
        let space = toy_space();
        let mut map = HashMap::new();
        map.insert("classifier".into(), ParamValue::Cat("rf".into()));
        map.insert("rf:n_estimators".into(), ParamValue::Int(50));
        map.insert("knn:k".into(), ParamValue::Int(5)); // inactive!
        map.insert("scaler".into(), ParamValue::Cat("none".into()));
        map.insert("lr".into(), ParamValue::Float(0.1));
        assert!(space.validate(&Configuration::from_map(map)).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn child_before_parent_panics() {
        let mut s = ConfigSpace::new();
        s.add_conditional(
            "child",
            Domain::Int {
                lo: 0,
                hi: 1,
                log: false,
            },
            "parent",
            ["x"],
        );
    }

    #[test]
    fn deterministic_sampling() {
        let space = toy_space();
        let a = space.sample(&mut StdRng::seed_from_u64(9));
        let b = space.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
