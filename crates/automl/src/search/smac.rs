//! SMAC-style sequential model-based optimization (paper §III-A):
//! a random-forest surrogate predicts the score of unseen configurations;
//! the expected-improvement acquisition picks the most promising candidate
//! among random samples and neighbors of the incumbents; evaluating it
//! updates the surrogate. Random configurations are interleaved for
//! exploration, as in the original SMAC.

use crate::config::Configuration;
use crate::runner::{SearchAlgorithm, SearchHistory};
use crate::space::ConfigSpace;
use em_ml::forest::RandomForestRegressor;
use em_ml::stats::gammainc_lower;
use em_ml::{ForestParams, Matrix, MaxFeatures};
use em_rt::StdRng;

/// SMAC hyperparameters.
#[derive(Debug, Clone)]
pub struct SmacParams {
    /// Random configurations evaluated before the surrogate switches on.
    pub n_init: usize,
    /// Random candidates scored by the acquisition per suggestion.
    pub n_candidates: usize,
    /// Neighbors generated around each of the top incumbents.
    pub n_neighbors: usize,
    /// Top incumbents used as neighbor seeds.
    pub n_incumbent_seeds: usize,
    /// Every `interleave`-th suggestion is purely random (SMAC's
    /// exploration interleaving); 0 disables interleaving.
    pub interleave: usize,
    /// Trees in the surrogate forest.
    pub surrogate_trees: usize,
}

impl Default for SmacParams {
    fn default() -> Self {
        SmacParams {
            n_init: 8,
            n_candidates: 64,
            n_neighbors: 8,
            n_incumbent_seeds: 3,
            interleave: 4,
            surrogate_trees: 24,
        }
    }
}

/// The SMAC-style searcher.
#[derive(Debug, Clone, Default)]
pub struct SmacSearch {
    /// Hyperparameters.
    pub params: SmacParams,
}

impl SmacSearch {
    /// Create with custom hyperparameters.
    pub fn new(params: SmacParams) -> Self {
        SmacSearch { params }
    }
}

impl SmacSearch {
    /// Generate the candidate pool, fit the surrogate on the full history,
    /// and return candidates ranked by expected improvement (best first).
    fn ranked_candidates(
        &self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        /// Surrogate model refits across all SMAC instances (traced runs).
        static SURROGATE_REFITS: em_obs::Counter = em_obs::Counter::new("smbo.surrogate_refits");
        let _span = em_obs::span!("smac.suggest");
        SURROGATE_REFITS.incr();
        let n = history.len();
        // Fit the surrogate on all observations.
        let encoded: Vec<Vec<f64>> = history
            .trials()
            .iter()
            .map(|t| space.encode(&t.config))
            .collect();
        let x = Matrix::from_rows(&encoded);
        let y: Vec<f64> = history.trials().iter().map(|t| t.score).collect();
        let mut surrogate = RandomForestRegressor::new(ForestParams {
            n_estimators: self.params.surrogate_trees,
            max_features: MaxFeatures::Fraction(0.8),
            min_samples_leaf: 1,
            seed: n as u64, // refit per step with a fresh but deterministic seed
            ..ForestParams::default()
        });
        surrogate.fit(&x, &y);
        // Candidate pool: random samples + neighbors of the top incumbents.
        let mut candidates: Vec<Configuration> = Vec::new();
        for _ in 0..self.params.n_candidates {
            candidates.push(space.sample(rng));
        }
        let mut sorted: Vec<&crate::runner::Trial> = history.trials().iter().collect();
        sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        for seed_trial in sorted.iter().take(self.params.n_incumbent_seeds) {
            for _ in 0..self.params.n_neighbors {
                candidates.push(space.neighbor(&seed_trial.config, rng));
            }
        }
        // Rank by expected improvement over the incumbent.
        let best = history.best_score();
        let enc: Vec<Vec<f64>> = candidates.iter().map(|c| space.encode(c)).collect();
        let cx = Matrix::from_rows(&enc);
        let preds = surrogate.predict_with_variance(&cx);
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        let eis: Vec<f64> = preds
            .iter()
            .map(|&(mu, var)| expected_improvement(mu, var.sqrt(), best))
            .collect();
        // Stable sort keeps ties in generation order (deterministic).
        order.sort_by(|&a, &b| eis[b].partial_cmp(&eis[a]).unwrap());
        let mut by_rank: Vec<Option<Configuration>> = candidates.into_iter().map(Some).collect();
        order
            .into_iter()
            .map(|i| by_rank[i].take().expect("each candidate ranked once"))
            .collect()
    }
}

impl SearchAlgorithm for SmacSearch {
    fn suggest(
        &mut self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
    ) -> Configuration {
        let n = history.len();
        if n < self.params.n_init {
            return space.sample(rng);
        }
        if self.params.interleave > 0 && n.is_multiple_of(self.params.interleave) {
            return space.sample(rng);
        }
        self.ranked_candidates(space, history, rng)
            .into_iter()
            .next()
            .expect("candidate pool is never empty")
    }

    fn suggest_batch(
        &mut self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
        k: usize,
    ) -> Vec<Configuration> {
        let k = k.max(1);
        let n = history.len();
        if n < self.params.n_init {
            // Still in the random-init phase: fill the whole batch randomly.
            return (0..k.min(self.params.n_init - n).max(1))
                .map(|_| space.sample(rng))
                .collect();
        }
        // One surrogate fit serves the whole batch: top-k by expected
        // improvement, with one interleaved random config for exploration
        // (the batched counterpart of SMAC's every-`interleave`-th random
        // suggestion).
        let mut out: Vec<Configuration> = Vec::with_capacity(k);
        if self.params.interleave > 0 {
            out.push(space.sample(rng));
        }
        let ranked = self.ranked_candidates(space, history, rng);
        out.extend(ranked.into_iter().take(k.saturating_sub(out.len())));
        out.truncate(k);
        out
    }

    fn name(&self) -> &'static str {
        "smac"
    }
}

/// Expected improvement for maximization:
/// `EI = (mu - best) Φ(z) + sigma φ(z)` with `z = (mu - best) / sigma`.
/// Falls back to the mean improvement when the surrogate is certain.
pub fn expected_improvement(mu: f64, sigma: f64, best: f64) -> f64 {
    let diff = mu - best;
    if sigma <= 1e-12 {
        return diff.max(0.0);
    }
    let z = diff / sigma;
    diff * normal_cdf(z) + sigma * normal_pdf(z)
}

/// Standard normal CDF via the regularized incomplete gamma
/// (`erf(x) = P(1/2, x²)` for `x ≥ 0`).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let erf = if x >= 0.0 {
        gammainc_lower(0.5, x * x)
    } else {
        -gammainc_lower(0.5, x * x)
    };
    0.5 * (1.0 + erf)
}

/// Standard normal density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_search, Budget};
    use crate::search::RandomSearch;
    use crate::space::Domain;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b}");
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-9);
        close(normal_cdf(5.0), 0.999_999_713, 1e-6);
    }

    #[test]
    fn ei_properties() {
        // Certain improvement: EI equals the improvement.
        close(expected_improvement(1.0, 0.0, 0.5), 0.5, 1e-12);
        // Certain non-improvement: EI is 0.
        close(expected_improvement(0.2, 0.0, 0.5), 0.0, 1e-12);
        // Uncertainty adds value: EI with sigma > 0 exceeds max(diff, 0).
        assert!(expected_improvement(0.2, 0.5, 0.5) > 0.0);
        assert!(expected_improvement(1.0, 0.5, 0.5) > 0.5);
        // EI grows with sigma.
        assert!(expected_improvement(0.4, 0.8, 0.5) > expected_improvement(0.4, 0.2, 0.5));
    }

    /// A deceptive 2-D objective with a narrow peak: the surrogate should
    /// find it faster than random search (statistically, with fixed seeds).
    fn hard_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            "x",
            Domain::Float {
                lo: 0.0,
                hi: 1.0,
                log: false,
            },
        );
        s.add(
            "y",
            Domain::Float {
                lo: 0.0,
                hi: 1.0,
                log: false,
            },
        );
        s
    }

    fn hard_objective(c: &Configuration) -> f64 {
        let x = c.get_float("x").unwrap();
        let y = c.get_float("y").unwrap();
        // Smooth bowl toward (0.7, 0.3) plus a mild ridge.
        let d = ((x - 0.7).powi(2) + (y - 0.3).powi(2)).sqrt();
        1.0 - d + 0.1 * (5.0 * x).sin() * 0.05
    }

    #[test]
    fn smac_beats_or_matches_random_on_smooth_objective() {
        let space = hard_space();
        let budget = Budget::Evaluations(40);
        let mut smac_wins = 0;
        let trials = 5;
        for seed in 0..trials {
            let hs = run_search(
                &space,
                &mut SmacSearch::default(),
                &mut hard_objective,
                budget,
                seed,
            );
            let hr = run_search(&space, &mut RandomSearch, &mut hard_objective, budget, seed);
            if hs.best_score() >= hr.best_score() - 1e-9 {
                smac_wins += 1;
            }
        }
        assert!(smac_wins >= 3, "SMAC won only {smac_wins}/{trials} seeds");
    }

    #[test]
    fn smac_suggestions_are_valid() {
        let space = hard_space();
        let h = run_search(
            &space,
            &mut SmacSearch::default(),
            &mut hard_objective,
            Budget::Evaluations(20),
            3,
        );
        assert_eq!(h.len(), 20);
        for t in h.trials() {
            space.validate(&t.config).unwrap();
        }
    }

    #[test]
    fn smac_is_deterministic() {
        let space = hard_space();
        let a = run_search(
            &space,
            &mut SmacSearch::default(),
            &mut hard_objective,
            Budget::Evaluations(25),
            9,
        );
        let b = run_search(
            &space,
            &mut SmacSearch::default(),
            &mut hard_objective,
            Budget::Evaluations(25),
            9,
        );
        assert_eq!(a.best_score(), b.best_score());
    }
}
