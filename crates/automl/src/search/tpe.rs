//! Tree-structured Parzen Estimator (TPE, Bergstra et al. — reference \[7\]
//! of the paper): model the density of "good" and "bad" configurations and
//! suggest candidates maximizing the density ratio `l(x) / g(x)`.
//!
//! This implementation follows the classic recipe with per-dimension
//! factorized densities: Gaussian kernels around good observations for
//! numeric parameters (bandwidth from the observation spread) and smoothed
//! categorical counts, handling conditional parameters by scoring only the
//! dimensions active in a candidate.

use crate::config::Configuration;
use crate::runner::{SearchAlgorithm, SearchHistory};
use crate::space::{ConfigSpace, Domain};
use em_rt::StdRng;

/// TPE hyperparameters.
#[derive(Debug, Clone)]
pub struct TpeParams {
    /// Random configurations before the density model switches on.
    pub n_init: usize,
    /// Fraction of observations treated as "good" (γ).
    pub gamma: f64,
    /// Candidates sampled from the good density per suggestion.
    pub n_candidates: usize,
}

impl Default for TpeParams {
    fn default() -> Self {
        TpeParams {
            n_init: 10,
            gamma: 0.25,
            n_candidates: 32,
        }
    }
}

/// The TPE searcher.
#[derive(Debug, Clone, Default)]
pub struct TpeSearch {
    /// Hyperparameters.
    pub params: TpeParams,
}

impl TpeSearch {
    /// Create with custom hyperparameters.
    pub fn new(params: TpeParams) -> Self {
        TpeSearch { params }
    }
}

impl SearchAlgorithm for TpeSearch {
    fn suggest(
        &mut self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
    ) -> Configuration {
        let n = history.len();
        if n < self.params.n_init {
            return space.sample(rng);
        }
        let _span = em_obs::span!("tpe.suggest");
        // Split observations into good/bad by score quantile.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            history.trials()[b]
                .score
                .partial_cmp(&history.trials()[a].score)
                .unwrap()
        });
        let n_good = ((self.params.gamma * n as f64).ceil() as usize).clamp(1, n - 1);
        let good: Vec<&Configuration> = order[..n_good]
            .iter()
            .map(|&i| &history.trials()[i].config)
            .collect();
        let bad: Vec<&Configuration> = order[n_good..]
            .iter()
            .map(|&i| &history.trials()[i].config)
            .collect();
        // Sample candidates around good observations and rank by the
        // density ratio l(x)/g(x).
        let mut best: Option<(f64, Configuration)> = None;
        for _ in 0..self.params.n_candidates {
            let seed_conf = good[rng.random_range(0..good.len())];
            let candidate = perturb_around(space, seed_conf, rng);
            let score =
                log_density(space, &candidate, &good) - log_density(space, &candidate, &bad);
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, candidate));
            }
        }
        best.map_or_else(|| space.sample(rng), |(_, c)| c)
    }

    fn name(&self) -> &'static str {
        "tpe"
    }
}

/// Sample a candidate "near" a good configuration: numeric parameters get
/// truncated Gaussian jitter (20% of the domain width), categoricals resample
/// with probability 0.2, and conditional re-activation is repaired by the
/// space's neighbor machinery.
fn perturb_around(space: &ConfigSpace, base: &Configuration, rng: &mut StdRng) -> Configuration {
    use crate::config::ParamValue;
    let mut values = std::collections::HashMap::new();
    for p in space.params() {
        // Activation check against what we've assigned so far.
        let active = match &p.condition {
            None => true,
            Some(cond) => values
                .get(&cond.parent)
                .and_then(|v: &ParamValue| v.as_str().map(str::to_owned))
                .is_some_and(|v| cond.values.contains(&v)),
        };
        if !active {
            continue;
        }
        let v = match (base.get(&p.name), &p.domain) {
            (Some(ParamValue::Float(f)), Domain::Float { lo, hi, .. }) => {
                let width = (hi - lo) * 0.2;
                let jitter = gaussian(rng) * width;
                ParamValue::Float((f + jitter).clamp(*lo, *hi))
            }
            (Some(ParamValue::Int(i)), Domain::Int { lo, hi, .. }) => {
                let width = ((hi - lo) as f64 * 0.2).max(1.0);
                let jitter = (gaussian(rng) * width).round() as i64;
                ParamValue::Int((i + jitter).clamp(*lo, *hi))
            }
            (Some(ParamValue::Cat(s)), Domain::Categorical(choices)) => {
                if rng.random_range(0.0..1.0) < 0.2 {
                    ParamValue::Cat(choices[rng.random_range(0..choices.len())].clone())
                } else {
                    ParamValue::Cat(s.clone())
                }
            }
            // Parameter inactive in the base (or type mismatch): fresh draw.
            _ => sample_one(&p.domain, rng),
        };
        values.insert(p.name.clone(), v);
    }
    Configuration::from_map(values)
}

fn sample_one(domain: &Domain, rng: &mut StdRng) -> crate::config::ParamValue {
    use crate::config::ParamValue;
    match domain {
        Domain::Categorical(choices) => {
            ParamValue::Cat(choices[rng.random_range(0..choices.len())].clone())
        }
        Domain::Int { lo, hi, .. } => ParamValue::Int(if lo == hi {
            *lo
        } else {
            rng.random_range(*lo..=*hi)
        }),
        Domain::Float { lo, hi, .. } => ParamValue::Float(if lo >= hi {
            *lo
        } else {
            rng.random_range(*lo..*hi)
        }),
    }
}

/// Standard normal draw via Box-Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Factorized log-density of `candidate` under the observation set `obs`:
/// Gaussian KDE per numeric dimension, Laplace-smoothed counts per
/// categorical dimension. Only dimensions active in the candidate count.
fn log_density(space: &ConfigSpace, candidate: &Configuration, obs: &[&Configuration]) -> f64 {
    use crate::config::ParamValue;
    let mut total = 0.0;
    for p in space.params() {
        let Some(cv) = candidate.get(&p.name) else {
            continue;
        };
        match (&p.domain, cv) {
            (Domain::Categorical(choices), ParamValue::Cat(s)) => {
                let k = choices.len() as f64;
                let count = obs
                    .iter()
                    .filter(|o| o.get_str(&p.name) == Some(s.as_str()))
                    .count() as f64;
                let active = obs.iter().filter(|o| o.contains(&p.name)).count() as f64;
                total += ((count + 1.0) / (active + k)).ln();
            }
            (
                Domain::Float { .. } | Domain::Int { .. },
                ParamValue::Float(_) | ParamValue::Int(_),
            ) => {
                let x = cv.as_float().unwrap();
                let values: Vec<f64> = obs.iter().filter_map(|o| o.get_float(&p.name)).collect();
                if values.is_empty() {
                    continue;
                }
                // Silverman-flavored bandwidth with a domain-scaled floor.
                let width = match &p.domain {
                    Domain::Float { lo: l, hi: h, .. } => h - l,
                    Domain::Int { lo: l, hi: h, .. } => (*h - *l) as f64,
                    Domain::Categorical(_) => unreachable!(),
                };
                let sd = em_ml::stats::variance(&values).sqrt();
                let bw = (sd * (values.len() as f64).powf(-0.2)).max(width * 0.05 + 1e-12);
                let mut dens = 0.0;
                for &v in &values {
                    let z = (x - v) / bw;
                    dens += (-0.5 * z * z).exp();
                }
                dens /= values.len() as f64 * bw * (2.0 * std::f64::consts::PI).sqrt();
                total += dens.max(1e-300).ln();
            }
            _ => {}
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_search, Budget};
    use crate::search::RandomSearch;

    fn space_1d() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            "x",
            Domain::Float {
                lo: 0.0,
                hi: 1.0,
                log: false,
            },
        );
        s
    }

    fn peak_objective(c: &Configuration) -> f64 {
        let x = c.get_float("x").unwrap();
        -(x - 0.8).abs()
    }

    #[test]
    fn tpe_concentrates_near_the_peak() {
        let space = space_1d();
        let h = run_search(
            &space,
            &mut TpeSearch::default(),
            &mut peak_objective,
            Budget::Evaluations(60),
            0,
        );
        // Later suggestions should cluster near 0.8.
        let late: Vec<f64> = h.trials()[40..]
            .iter()
            .map(|t| t.config.get_float("x").unwrap())
            .collect();
        let near = late.iter().filter(|&&x| (x - 0.8).abs() < 0.2).count();
        assert!(
            near > late.len() / 2,
            "only {near}/{} near the peak",
            late.len()
        );
    }

    #[test]
    fn tpe_beats_or_matches_random() {
        let space = space_1d();
        let budget = Budget::Evaluations(40);
        let mut wins = 0;
        for seed in 0..5 {
            let ht = run_search(
                &space,
                &mut TpeSearch::default(),
                &mut peak_objective,
                budget,
                seed,
            );
            let hr = run_search(&space, &mut RandomSearch, &mut peak_objective, budget, seed);
            if ht.best_score() >= hr.best_score() - 1e-9 {
                wins += 1;
            }
        }
        assert!(wins >= 3, "TPE won only {wins}/5 seeds");
    }

    #[test]
    fn tpe_handles_conditional_spaces() {
        let mut space = ConfigSpace::new();
        space.add("algo", Domain::Categorical(vec!["a".into(), "b".into()]));
        space.add_conditional(
            "a:x",
            Domain::Float {
                lo: 0.0,
                hi: 1.0,
                log: false,
            },
            "algo",
            ["a"],
        );
        let mut objective = |c: &Configuration| {
            if c.get_str("algo") == Some("a") {
                1.0 - (c.get_float("a:x").unwrap() - 0.5).abs()
            } else {
                0.1
            }
        };
        let h = run_search(
            &space,
            &mut TpeSearch::default(),
            &mut objective,
            Budget::Evaluations(50),
            1,
        );
        for t in h.trials() {
            space.validate(&t.config).unwrap();
        }
        // TPE should discover that algo=a dominates.
        assert_eq!(h.incumbent().unwrap().config.get_str("algo"), Some("a"));
        assert!(h.best_score() > 0.85);
    }
}
