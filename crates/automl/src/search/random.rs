//! Random search: the baseline pipeline-search algorithm (paper §II-B lists
//! it among the tuning algorithms a data scientist would set up manually).

use crate::config::Configuration;
use crate::runner::{SearchAlgorithm, SearchHistory};
use crate::space::ConfigSpace;
use em_rt::StdRng;

/// Uniform random sampling from the configuration space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl SearchAlgorithm for RandomSearch {
    fn suggest(
        &mut self,
        space: &ConfigSpace,
        _history: &SearchHistory,
        rng: &mut StdRng,
    ) -> Configuration {
        space.sample(rng)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Domain;

    #[test]
    fn suggestions_are_valid_and_varied() {
        let mut space = ConfigSpace::new();
        space.add(
            "x",
            Domain::Int {
                lo: 0,
                hi: 1000,
                log: false,
            },
        );
        let mut algo = RandomSearch;
        let mut rng = StdRng::seed_from_u64(0);
        let history = SearchHistory::default();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let c = algo.suggest(&space, &history, &mut rng);
            space.validate(&c).unwrap();
            seen.insert(c.get_int("x").unwrap());
        }
        assert!(seen.len() > 20, "only {} distinct suggestions", seen.len());
    }
}
