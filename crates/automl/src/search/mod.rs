//! Search algorithms: random search, SMAC-style SMBO, and TPE.

pub mod random;
pub mod smac;
pub mod tpe;

pub use random::RandomSearch;
pub use smac::{expected_improvement, normal_cdf, normal_pdf, SmacParams, SmacSearch};
pub use tpe::{TpeParams, TpeSearch};
