//! The search loop: suggest → evaluate → record, under an evaluation-count
//! or wall-clock budget (the paper's §III-A "time budget").

use crate::config::Configuration;
use crate::space::ConfigSpace;
use em_rt::StdRng;
use std::time::{Duration, Instant};

/// Search budget. The experiments default to evaluation counts for
/// determinism; wall-clock mode mirrors the paper's seconds-based budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Stop after this many objective evaluations.
    Evaluations(usize),
    /// Stop once this much wall-clock time has elapsed (the evaluation in
    /// flight when the deadline passes still completes).
    WallClock(Duration),
}

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Objective value (higher is better; the experiments use validation F1).
    pub score: f64,
    /// 0-based evaluation index.
    pub index: usize,
}

/// The full record of a search run.
#[derive(Debug, Clone, Default)]
pub struct SearchHistory {
    trials: Vec<Trial>,
}

impl SearchHistory {
    /// All trials in evaluation order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of evaluations performed.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether no evaluations have run.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The best trial so far (ties keep the earliest).
    pub fn incumbent(&self) -> Option<&Trial> {
        self.trials.iter().max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap()
                .then(b.index.cmp(&a.index))
        })
    }

    /// Best score so far (NEG_INFINITY when empty).
    pub fn best_score(&self) -> f64 {
        self.incumbent().map_or(f64::NEG_INFINITY, |t| t.score)
    }

    /// Best score after each evaluation (the convergence curve of the
    /// paper's Figure 10).
    pub fn best_score_trace(&self) -> Vec<f64> {
        let mut best = f64::NEG_INFINITY;
        self.trials
            .iter()
            .map(|t| {
                best = best.max(t.score);
                best
            })
            .collect()
    }

    fn push(&mut self, config: Configuration, score: f64) {
        let index = self.trials.len();
        let improved = score > self.best_score();
        self.trials.push(Trial {
            config,
            score,
            index,
        });
        em_obs::event("search.trial", || {
            vec![
                ("trial", em_rt::Json::from(index)),
                ("score", em_rt::Json::from(score)),
            ]
        });
        if improved {
            em_obs::event("search.incumbent", || {
                vec![
                    ("trial", em_rt::Json::from(index)),
                    ("score", em_rt::Json::from(score)),
                ]
            });
        }
    }
}

/// A search strategy proposes the next configuration to evaluate.
pub trait SearchAlgorithm {
    /// Propose the next configuration given the history so far.
    fn suggest(
        &mut self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
    ) -> Configuration;

    /// Propose up to `k` configurations to evaluate concurrently against the
    /// same history. The default calls [`SearchAlgorithm::suggest`] `k`
    /// times; model-based searchers override this to amortize one surrogate
    /// fit across the whole batch (SMAC returns the top-`k` candidates by
    /// expected improvement instead of refitting per suggestion).
    fn suggest_batch(
        &mut self,
        space: &ConfigSpace,
        history: &SearchHistory,
        rng: &mut StdRng,
        k: usize,
    ) -> Vec<Configuration> {
        (0..k.max(1))
            .map(|_| self.suggest(space, history, rng))
            .collect()
    }

    /// Human-readable name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Run a search: repeatedly ask `algo` for a configuration, evaluate it with
/// `objective` (higher = better), and record the result, until the budget is
/// exhausted. Deterministic for a fixed seed and evaluation budget.
pub fn run_search(
    space: &ConfigSpace,
    algo: &mut dyn SearchAlgorithm,
    objective: &mut dyn FnMut(&Configuration) -> f64,
    budget: Budget,
    seed: u64,
) -> SearchHistory {
    run_search_with_initial(space, algo, objective, budget, seed, &[])
}

/// [`run_search`] with warm-start configurations: the `initial` configs are
/// evaluated first (in order, counting against the budget) so the search
/// algorithm's model sees them from its first suggestion — auto-sklearn's
/// meta-learning warm start, with the meta-learned portfolio supplied by
/// the caller.
pub fn run_search_with_initial(
    space: &ConfigSpace,
    algo: &mut dyn SearchAlgorithm,
    objective: &mut dyn FnMut(&Configuration) -> f64,
    budget: Budget,
    seed: u64,
    initial: &[Configuration],
) -> SearchHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = SearchHistory::default();
    let start = Instant::now();
    let exhausted = |history: &SearchHistory, start: &Instant| match budget {
        Budget::Evaluations(n) => history.len() >= n,
        Budget::WallClock(d) => start.elapsed() >= d,
    };
    for config in initial {
        if exhausted(&history, &start) {
            break;
        }
        assert!(
            space.validate(config).is_ok(),
            "warm-start configuration is invalid for this space"
        );
        let score = objective(config);
        history.push(config.clone(), score);
    }
    loop {
        if exhausted(&history, &start) {
            break;
        }
        let config = algo.suggest(space, &history, &mut rng);
        debug_assert!(
            space.validate(&config).is_ok(),
            "search algorithm produced an invalid configuration"
        );
        let trial = history.len();
        em_obs::event("search.eval_start", || {
            vec![("trial", em_rt::Json::from(trial))]
        });
        let score = objective(&config);
        em_obs::event("search.eval_finish", || {
            vec![
                ("trial", em_rt::Json::from(trial)),
                ("score", em_rt::Json::from(score)),
            ]
        });
        history.push(config, score);
    }
    history
}

/// Batched-parallel search: each step asks `algo` for a batch of up to
/// `batch` configurations and evaluates them concurrently on the shared
/// `em-rt` worker pool, recording results in suggestion order. Deterministic
/// for a fixed seed and evaluation budget regardless of thread count (the
/// trajectory differs from `batch = 1`, which sees feedback after every
/// single evaluation — `batch = 1` reproduces [`run_search`] exactly).
pub fn run_search_parallel(
    space: &ConfigSpace,
    algo: &mut dyn SearchAlgorithm,
    objective: &(dyn Fn(&Configuration) -> f64 + Sync),
    budget: Budget,
    seed: u64,
    initial: &[Configuration],
    batch: usize,
) -> SearchHistory {
    let batch = batch.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = SearchHistory::default();
    let start = Instant::now();
    let exhausted = |history: &SearchHistory, start: &Instant| match budget {
        Budget::Evaluations(n) => history.len() >= n,
        Budget::WallClock(d) => start.elapsed() >= d,
    };
    let remaining = |history: &SearchHistory| match budget {
        Budget::Evaluations(n) => n.saturating_sub(history.len()),
        Budget::WallClock(_) => batch,
    };
    let evaluate_batch = |configs: &[Configuration]| -> Vec<f64> {
        let mut scores = vec![f64::NEG_INFINITY; configs.len()];
        let writer = em_rt::SliceWriter::new(&mut scores);
        em_rt::parallel_for_chunked(configs.len(), 0, 1, |i| {
            // Safety: each candidate index is handed out exactly once.
            unsafe { writer.write(i, objective(&configs[i])) };
        });
        scores
    };
    let warm: Vec<Configuration> = initial.iter().take(remaining(&history)).cloned().collect();
    for config in &warm {
        assert!(
            space.validate(config).is_ok(),
            "warm-start configuration is invalid for this space"
        );
    }
    for (config, score) in warm.iter().zip(evaluate_batch(&warm)) {
        history.push(config.clone(), score);
    }
    loop {
        if exhausted(&history, &start) {
            break;
        }
        let k = remaining(&history).min(batch).max(1);
        let configs = algo.suggest_batch(space, &history, &mut rng, k);
        assert!(!configs.is_empty(), "suggest_batch returned no candidates");
        for config in &configs {
            debug_assert!(
                space.validate(config).is_ok(),
                "search algorithm produced an invalid configuration"
            );
        }
        let scores = evaluate_batch(&configs);
        for (config, score) in configs.into_iter().zip(scores) {
            if exhausted(&history, &start) {
                break;
            }
            history.push(config, score);
        }
    }
    history
}

/// Outcome of [`run_search_async_report`]: the history plus per-worker
/// evaluation counts (empty when the serial fallback ran).
#[derive(Debug, Clone)]
pub struct AsyncSearchReport {
    /// The search trajectory, identical to [`run_search_parallel`]'s for the
    /// same inputs.
    pub history: SearchHistory,
    /// Evaluations completed by each dedicated worker thread.
    pub evals_per_worker: Vec<usize>,
}

/// Asynchronous SMBO: persistent worker threads pull suggestions over an
/// `em-rt` channel and stream scores back, while the coordinator — the sole
/// owner of the surrogate and the RNG, so no mutex guards either — commits
/// results in suggestion order through a reorder buffer and issues the next
/// wave of suggestions. See [`run_search_async_report`] for the worker
/// accounting variant.
///
/// The trajectory is **identical to [`run_search_parallel`]** for the same
/// `(space, algo, budget, seed, initial, batch)` by construction: the
/// coordinator makes the same `suggest_batch` calls against the same
/// committed history and the same RNG stream, and evaluation results are
/// committed in suggestion order no matter which worker finished first. The
/// difference is mechanical: evaluations run on dedicated channel-fed
/// threads (leaving the shared pool free for nested parallelism inside the
/// objective, e.g. forest fits) with scores streaming back as they finish,
/// instead of a fork-join `parallel_for` per batch.
pub fn run_search_async(
    space: &ConfigSpace,
    algo: &mut dyn SearchAlgorithm,
    objective: &(dyn Fn(&Configuration) -> f64 + Sync),
    budget: Budget,
    seed: u64,
    initial: &[Configuration],
    batch: usize,
) -> SearchHistory {
    run_search_async_report(space, algo, objective, budget, seed, initial, batch).history
}

/// [`run_search_async`], additionally reporting how many evaluations each
/// worker thread completed (for scheduling/starvation diagnostics).
///
/// Worker count is `min(batch, em_rt::threads() - 1)` — one slot is left
/// for the coordinator. When that is zero (`EM_THREADS=1`, or `batch = 0`)
/// the search runs inline on the caller thread and still produces the exact
/// same history, which is what makes the 1-vs-N-thread determinism harness
/// able to cover this path.
pub fn run_search_async_report(
    space: &ConfigSpace,
    algo: &mut dyn SearchAlgorithm,
    objective: &(dyn Fn(&Configuration) -> f64 + Sync),
    budget: Budget,
    seed: u64,
    initial: &[Configuration],
    batch: usize,
) -> AsyncSearchReport {
    let batch = batch.max(1);
    let n_workers = batch.min(em_rt::threads().saturating_sub(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = SearchHistory::default();
    let start = Instant::now();
    let exhausted = |history: &SearchHistory, start: &Instant| match budget {
        Budget::Evaluations(n) => history.len() >= n,
        Budget::WallClock(d) => start.elapsed() >= d,
    };
    let remaining = |history: &SearchHistory| match budget {
        Budget::Evaluations(n) => n.saturating_sub(history.len()),
        Budget::WallClock(_) => batch,
    };
    let warm: Vec<Configuration> = initial.iter().take(remaining(&history)).cloned().collect();
    for config in &warm {
        assert!(
            space.validate(config).is_ok(),
            "warm-start configuration is invalid for this space"
        );
    }

    if n_workers == 0 {
        // Serial fallback: the identical suggest/commit sequence, evaluated
        // inline (the objective is pure, so scoring a suggestion before or
        // after its batch-mates cannot change any committed value).
        let mut round = warm;
        loop {
            for config in round.drain(..) {
                if exhausted(&history, &start) {
                    break;
                }
                let score = objective(&config);
                history.push(config, score);
            }
            if exhausted(&history, &start) {
                break;
            }
            let k = remaining(&history).min(batch).max(1);
            round = algo.suggest_batch(space, &history, &mut rng, k);
            assert!(!round.is_empty(), "suggest_batch returned no candidates");
        }
        return AsyncSearchReport {
            history,
            evals_per_worker: Vec::new(),
        };
    }

    let (job_tx, job_rx) = em_rt::channel::<(usize, Configuration)>();
    let (result_tx, result_rx) = em_rt::channel::<(usize, usize, f64)>();
    let mut evals_per_worker = vec![0usize; n_workers];

    std::thread::scope(|s| {
        for w in 0..n_workers {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            s.spawn(move || {
                while let Some((ix, config)) = jobs.recv() {
                    em_obs::event("search.eval_start", || {
                        vec![
                            ("trial", em_rt::Json::from(ix)),
                            ("worker", em_rt::Json::from(w)),
                        ]
                    });
                    let score = objective(&config);
                    em_obs::event("search.eval_finish", || {
                        vec![
                            ("trial", em_rt::Json::from(ix)),
                            ("worker", em_rt::Json::from(w)),
                            ("score", em_rt::Json::from(score)),
                        ]
                    });
                    if results.send((ix, w, score)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold their own clones; dropping these keeps channel
        // close semantics tied to the coordinator (job_tx) and the worker
        // set (result_tx clones).
        drop(job_rx);
        drop(result_tx);

        let mut round = warm;
        loop {
            // Dispatch the round; workers race for jobs over the channel.
            let base = history.len();
            for (i, config) in round.iter().enumerate() {
                job_tx
                    .send((base + i, config.clone()))
                    .expect("workers alive while coordinator dispatches");
            }
            // Reorder buffer: collect every score of the round, then commit
            // in suggestion order regardless of completion order.
            let mut scores: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            while scores.len() < round.len() {
                let (ix, w, score) = result_rx.recv().expect("a worker result per job");
                evals_per_worker[w] += 1;
                scores.insert(ix, score);
            }
            for (i, config) in round.drain(..).enumerate() {
                if exhausted(&history, &start) {
                    break;
                }
                history.push(config, scores[&(base + i)]);
            }
            if exhausted(&history, &start) {
                break;
            }
            let k = remaining(&history).min(batch).max(1);
            round = algo.suggest_batch(space, &history, &mut rng, k);
            assert!(!round.is_empty(), "suggest_batch returned no candidates");
            for config in &round {
                debug_assert!(
                    space.validate(config).is_ok(),
                    "search algorithm produced an invalid configuration"
                );
            }
        }
        // Closing the job channel sends workers home; the scope joins them.
        job_tx.close();
    });

    AsyncSearchReport {
        history,
        evals_per_worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::RandomSearch;
    use crate::space::Domain;

    fn quadratic_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            "x",
            Domain::Float {
                lo: -2.0,
                hi: 2.0,
                log: false,
            },
        );
        s
    }

    /// Maximize -(x-1)^2: optimum at x = 1.
    fn objective(c: &Configuration) -> f64 {
        let x = c.get_float("x").unwrap();
        -(x - 1.0) * (x - 1.0)
    }

    #[test]
    fn evaluation_budget_is_exact() {
        let space = quadratic_space();
        let mut algo = RandomSearch;
        let h = run_search(
            &space,
            &mut algo,
            &mut objective,
            Budget::Evaluations(37),
            0,
        );
        assert_eq!(h.len(), 37);
    }

    #[test]
    fn incumbent_is_the_max() {
        let space = quadratic_space();
        let mut algo = RandomSearch;
        let h = run_search(
            &space,
            &mut algo,
            &mut objective,
            Budget::Evaluations(50),
            1,
        );
        let best = h.incumbent().unwrap();
        for t in h.trials() {
            assert!(t.score <= best.score);
        }
        assert_eq!(h.best_score(), best.score);
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let space = quadratic_space();
        let mut algo = RandomSearch;
        let h = run_search(
            &space,
            &mut algo,
            &mut objective,
            Budget::Evaluations(40),
            2,
        );
        let trace = h.best_score_trace();
        for w in trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(trace.len(), 40);
    }

    #[test]
    fn deterministic_runs() {
        let space = quadratic_space();
        let h1 = run_search(
            &space,
            &mut RandomSearch,
            &mut objective,
            Budget::Evaluations(20),
            7,
        );
        let h2 = run_search(
            &space,
            &mut RandomSearch,
            &mut objective,
            Budget::Evaluations(20),
            7,
        );
        assert_eq!(h1.best_score(), h2.best_score());
        for (a, b) in h1.trials().iter().zip(h2.trials()) {
            assert_eq!(a.config, b.config);
        }
    }

    #[test]
    fn wall_clock_budget_stops() {
        let space = quadratic_space();
        let h = run_search(
            &space,
            &mut RandomSearch,
            &mut objective,
            Budget::WallClock(Duration::from_millis(20)),
            3,
        );
        assert!(!h.is_empty());
    }

    #[test]
    fn warm_start_configs_are_evaluated_first() {
        let space = quadratic_space();
        use crate::config::ParamValue;
        let good = Configuration::from_map([("x".to_string(), ParamValue::Float(1.0))]);
        let h = run_search_with_initial(
            &space,
            &mut RandomSearch,
            &mut objective,
            Budget::Evaluations(10),
            0,
            std::slice::from_ref(&good),
        );
        assert_eq!(h.trials()[0].config, good);
        assert_eq!(h.trials()[0].score, 0.0);
        assert_eq!(h.len(), 10);
        // The warm start is the optimum here, so it stays the incumbent.
        assert_eq!(h.incumbent().unwrap().index, 0);
    }

    #[test]
    fn warm_start_respects_tiny_budgets() {
        let space = quadratic_space();
        use crate::config::ParamValue;
        let configs: Vec<Configuration> = (0..5)
            .map(|i| {
                Configuration::from_map([("x".to_string(), ParamValue::Float(i as f64 / 10.0))])
            })
            .collect();
        let h = run_search_with_initial(
            &space,
            &mut RandomSearch,
            &mut objective,
            Budget::Evaluations(3),
            0,
            &configs,
        );
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn empty_history_best_is_neg_infinity() {
        let h = SearchHistory::default();
        assert_eq!(h.best_score(), f64::NEG_INFINITY);
        assert!(h.incumbent().is_none());
    }
}
