//! Property-based tests for the similarity substrate: metric bounds,
//! symmetry, identity, and triangle-inequality style invariants.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use em_rt::StdRng;
use em_text::*;

const CASES: u64 = 256;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0x7e57_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// ASCII-ish strings including whitespace, to exercise tokenization
/// (the old `[a-z0-9 ]{0,24}` strategy).
fn word_string(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
    let len = rng.random_range(0..=24usize);
    (0..len)
        .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Non-empty lowercase word (the old `[a-z]{1,16}` strategy).
fn lowercase_word(rng: &mut StdRng) -> String {
    let len = rng.random_range(1..=16usize);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26usize) as u8) as char)
        .collect()
}

#[test]
fn levenshtein_identity() {
    check(|rng| {
        let s = word_string(rng);
        assert_eq!(levenshtein_distance(&s, &s), 0);
        assert_eq!(levenshtein_similarity(&s, &s), 1.0);
    });
}

#[test]
fn levenshtein_symmetry() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        assert_eq!(levenshtein_distance(&a, &b), levenshtein_distance(&b, &a));
    });
}

#[test]
fn levenshtein_triangle() {
    check(|rng| {
        let (a, b, c) = (word_string(rng), word_string(rng), word_string(rng));
        let ab = levenshtein_distance(&a, &b);
        let bc = levenshtein_distance(&b, &c);
        let ac = levenshtein_distance(&a, &c);
        assert!(ac <= ab + bc);
    });
}

#[test]
fn levenshtein_bounded_by_longer_length() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let d = levenshtein_distance(&a, &b);
        assert!(d <= a.chars().count().max(b.chars().count()));
        // and at least the length difference
        assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    });
}

#[test]
fn levenshtein_similarity_in_unit_interval() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let s = levenshtein_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
    });
}

#[test]
fn jaro_bounds_symmetry_identity() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let j = jaro(&a, &b);
        assert!((0.0..=1.0).contains(&j));
        assert!((j - jaro(&b, &a)).abs() < 1e-12);
        assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    });
}

#[test]
fn jaro_winkler_dominates_jaro() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        assert!(jw >= j - 1e-12);
        assert!(jw <= 1.0 + 1e-12);
    });
}

#[test]
fn set_sims_bounds_and_identity() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        for tok in [Tokenizer::Whitespace, Tokenizer::QGram(3)] {
            for f in [jaccard, dice, cosine, overlap_coefficient] {
                let s = f(&a, &b, tok);
                assert!((0.0..=1.0 + 1e-12).contains(&s), "value {s}");
                assert!((f(&a, &a, tok) - 1.0).abs() < 1e-12);
                // symmetry
                assert!((s - f(&b, &a, tok)).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn set_sim_ordering() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let tok = Tokenizer::Whitespace;
        let j = jaccard(&a, &b, tok);
        let d = dice(&a, &b, tok);
        let c = cosine(&a, &b, tok);
        let o = overlap_coefficient(&a, &b, tok);
        // Standard chain: jaccard <= dice <= cosine(ochiai) <= overlap.
        assert!(j <= d + 1e-12);
        assert!(d <= c + 1e-12);
        assert!(c <= o + 1e-12);
    });
}

#[test]
fn smith_waterman_bounded() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let s = smith_waterman(&a, &b);
        assert!(s >= 0.0);
        assert!(s <= a.chars().count().min(b.chars().count()) as f64);
        // Identity achieves the max.
        assert_eq!(smith_waterman(&a, &a), a.chars().count() as f64);
    });
}

#[test]
fn needleman_wunsch_identity_is_length() {
    check(|rng| {
        let a = word_string(rng);
        assert_eq!(needleman_wunsch(&a, &a), a.chars().count() as f64);
    });
}

#[test]
fn needleman_wunsch_upper_bound() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        // NW score can never exceed the number of possible matches.
        let s = needleman_wunsch(&a, &b);
        assert!(s <= a.chars().count().min(b.chars().count()) as f64);
    });
}

#[test]
fn monge_elkan_bounds() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let s = monge_elkan(&a, &b);
        assert!((0.0..=1.0 + 1e-9).contains(&s), "value {s}");
        assert!((monge_elkan(&a, &a) - 1.0).abs() < 1e-9);
    });
}

#[test]
fn qgram_token_count() {
    check(|rng| {
        let s = lowercase_word(rng);
        let q = rng.random_range(1..5usize);
        assert_eq!(qgrams(&s, q).len(), s.chars().count() + q - 1);
    });
}

#[test]
fn absolute_norm_bounds() {
    check(|rng| {
        let a = rng.random_range(-1e6f64..1e6);
        let b = rng.random_range(-1e6f64..1e6);
        let s = absolute_norm(a, b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(absolute_norm(a, a), 1.0);
        assert!((s - absolute_norm(b, a)).abs() < 1e-12);
    });
}

/// Strings mixing ASCII, multi-byte unicode (accents, CJK), and whitespace —
/// profiles cache `Vec<char>`, so char-index vs byte-index confusions would
/// surface here.
fn unicode_string(rng: &mut StdRng) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'c', 'z', '0', '9', ' ', ' ', 'é', 'ü', 'ß', 'ñ', 'č', '東', '京', 'λ', 'Ω', '✓',
    ];
    let len = rng.random_range(0..=24usize);
    (0..len)
        .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
        .collect()
}

/// All 16 Table-II string similarities.
fn table2_similarities() -> Vec<StringSimilarity> {
    use StringSimilarity::*;
    let mut sims = vec![
        LevenshteinDistance,
        LevenshteinSimilarity,
        Jaro,
        ExactMatch,
        JaroWinkler,
        NeedlemanWunsch,
        SmithWaterman,
        MongeElkan,
    ];
    for tok in [Tokenizer::Whitespace, Tokenizer::QGram(3)] {
        sims.extend([
            Jaccard(tok),
            Dice(tok),
            Cosine(tok),
            OverlapCoefficient(tok),
        ]);
    }
    sims
}

#[test]
fn profile_similarities_bit_identical_to_string_path() {
    let sims = table2_similarities();
    check(|rng| {
        let (a, b) = (unicode_string(rng), unicode_string(rng));
        let mut interner = TokenInterner::new();
        let pa = TokenProfile::build(&a, &mut interner);
        let pb = TokenProfile::build(&b, &mut interner);
        let mut scratch = SimScratch::new();
        for sim in &sims {
            let via_string = sim.apply(&a, &b);
            let via_profile = sim.apply_profiles(&pa, &pb, &mut scratch);
            assert_eq!(
                via_string.to_bits(),
                via_profile.to_bits(),
                "{sim:?} diverged on {a:?} vs {b:?}: {via_string} != {via_profile}"
            );
        }
    });
}

#[test]
fn profile_similarities_bit_identical_on_ascii_words() {
    let sims = table2_similarities();
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let mut interner = TokenInterner::new();
        let pa = TokenProfile::build(&a, &mut interner);
        let pb = TokenProfile::build(&b, &mut interner);
        let mut scratch = SimScratch::new();
        for sim in &sims {
            assert_eq!(
                sim.apply(&a, &b).to_bits(),
                sim.apply_profiles(&pa, &pb, &mut scratch).to_bits(),
                "{sim:?} diverged on {a:?} vs {b:?}"
            );
        }
    });
}

#[test]
fn merge_join_intersection_matches_naive() {
    check(|rng| {
        let (a, b) = (unicode_string(rng), unicode_string(rng));
        for tok in [Tokenizer::Whitespace, Tokenizer::QGram(3)] {
            let sa = tok.sorted_tokens(&a);
            let sb = tok.sorted_tokens(&b);
            let naive = sa.iter().filter(|t| sb.contains(t)).count();
            let mut interner = TokenInterner::new();
            let ia: Vec<u32> = {
                let mut v: Vec<u32> = sa.iter().map(|t| interner.intern(t)).collect();
                v.sort_unstable();
                v
            };
            let ib: Vec<u32> = {
                let mut v: Vec<u32> = sb.iter().map(|t| interner.intern(t)).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(intersection_size_sorted(&ia, &ib), naive);
        }
    });
}

#[test]
fn exact_match_is_binary() {
    check(|rng| {
        let (a, b) = (word_string(rng), word_string(rng));
        let e = exact_match(&a, &b);
        assert!(e == 0.0 || e == 1.0);
        assert_eq!(e == 1.0, a == b);
    });
}
