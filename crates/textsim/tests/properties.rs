//! Property-based tests for the similarity substrate: metric bounds,
//! symmetry, identity, and triangle-inequality style invariants.

use em_text::*;
use proptest::prelude::*;

/// ASCII-ish strings including whitespace, to exercise tokenization.
fn word_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,24}").unwrap()
}

proptest! {
    #[test]
    fn levenshtein_identity(s in word_string()) {
        prop_assert_eq!(levenshtein_distance(&s, &s), 0);
        prop_assert_eq!(levenshtein_similarity(&s, &s), 1.0);
    }

    #[test]
    fn levenshtein_symmetry(a in word_string(), b in word_string()) {
        prop_assert_eq!(levenshtein_distance(&a, &b), levenshtein_distance(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in word_string(), b in word_string(), c in word_string()) {
        let ab = levenshtein_distance(&a, &b);
        let bc = levenshtein_distance(&b, &c);
        let ac = levenshtein_distance(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_bounded_by_longer_length(a in word_string(), b in word_string()) {
        let d = levenshtein_distance(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        // and at least the length difference
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn levenshtein_similarity_in_unit_interval(a in word_string(), b in word_string()) {
        let s = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaro_bounds_symmetry_identity(a in word_string(), b in word_string()) {
        let j = jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaro(&b, &a)).abs() < 1e-12);
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in word_string(), b in word_string()) {
        let j = jaro(&a, &b);
        let jw = jaro_winkler(&a, &b);
        prop_assert!(jw >= j - 1e-12);
        prop_assert!(jw <= 1.0 + 1e-12);
    }

    #[test]
    fn set_sims_bounds_and_identity(a in word_string(), b in word_string()) {
        for tok in [Tokenizer::Whitespace, Tokenizer::QGram(3)] {
            for f in [jaccard, dice, cosine, overlap_coefficient] {
                let s = f(&a, &b, tok);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "value {s}");
                prop_assert!((f(&a, &a, tok) - 1.0).abs() < 1e-12);
                // symmetry
                prop_assert!((s - f(&b, &a, tok)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn set_sim_ordering(a in word_string(), b in word_string()) {
        let tok = Tokenizer::Whitespace;
        let j = jaccard(&a, &b, tok);
        let d = dice(&a, &b, tok);
        let c = cosine(&a, &b, tok);
        let o = overlap_coefficient(&a, &b, tok);
        // Standard chain: jaccard <= dice <= cosine(ochiai) <= overlap.
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= c + 1e-12);
        prop_assert!(c <= o + 1e-12);
    }

    #[test]
    fn smith_waterman_bounded(a in word_string(), b in word_string()) {
        let s = smith_waterman(&a, &b);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= a.chars().count().min(b.chars().count()) as f64);
        // Identity achieves the max.
        prop_assert_eq!(smith_waterman(&a, &a), a.chars().count() as f64);
    }

    #[test]
    fn needleman_wunsch_identity_is_length(a in word_string()) {
        prop_assert_eq!(needleman_wunsch(&a, &a), a.chars().count() as f64);
    }

    #[test]
    fn needleman_wunsch_upper_bound(a in word_string(), b in word_string()) {
        // NW score can never exceed the number of possible matches.
        let s = needleman_wunsch(&a, &b);
        prop_assert!(s <= a.chars().count().min(b.chars().count()) as f64);
    }

    #[test]
    fn monge_elkan_bounds(a in word_string(), b in word_string()) {
        let s = monge_elkan(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "value {s}");
        prop_assert!((monge_elkan(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qgram_token_count(s in "[a-z]{1,16}", q in 1usize..5) {
        prop_assert_eq!(qgrams(&s, q).len(), s.chars().count() + q - 1);
    }

    #[test]
    fn absolute_norm_bounds(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let s = absolute_norm(a, b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(absolute_norm(a, a), 1.0);
        prop_assert!((s - absolute_norm(b, a)).abs() < 1e-12);
    }

    #[test]
    fn exact_match_is_binary(a in word_string(), b in word_string()) {
        let e = exact_match(&a, &b);
        prop_assert!(e == 0.0 || e == 1.0);
        prop_assert_eq!(e == 1.0, a == b);
    }
}
