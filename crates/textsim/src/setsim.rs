//! Token-set similarity functions (Table II rows 9-16): Jaccard, Dice,
//! cosine, and overlap coefficient, each parameterized by a [`Tokenizer`].
//!
//! Token sets are sorted deduplicated `Vec<String>`s and the intersection
//! is a merge join — no tree allocation per call. The interned-profile path
//! ([`crate::TokenProfile`]) goes further and merge-joins `u32` id slices.

use crate::tokenize::Tokenizer;

fn intersection_size(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over token sets.
///
/// ```
/// use em_text::Tokenizer;
/// let s = em_text::jaccard("new york", "new york city", Tokenizer::Whitespace);
/// assert!((s - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jaccard(a: &str, b: &str, tok: Tokenizer) -> f64 {
    let sa = tok.sorted_tokens(a);
    let sb = tok.sorted_tokens(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(&sa, &sb);
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Dice similarity `2|A ∩ B| / (|A| + |B|)` over token sets.
pub fn dice(a: &str, b: &str, tok: Tokenizer) -> f64 {
    let sa = tok.sorted_tokens(a);
    let sb = tok.sorted_tokens(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size(&sa, &sb) as f64 / (sa.len() + sb.len()) as f64
}

/// Set cosine similarity `|A ∩ B| / sqrt(|A| * |B|)` over token sets
/// (the Ochiai coefficient, which is what `py_stringmatching.Cosine`
/// computes on token sets).
pub fn cosine(a: &str, b: &str, tok: Tokenizer) -> f64 {
    let sa = tok.sorted_tokens(a);
    let sb = tok.sorted_tokens(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    intersection_size(&sa, &sb) as f64 / ((sa.len() as f64) * (sb.len() as f64)).sqrt()
}

/// Raw shared-token count `|A ∩ B|` over token sets (unnormalized).
///
/// This is the quantity blocking already computes when it counts shared
/// tokens between candidate records; exposing it as a similarity lets
/// labeling functions threshold on "at least k tokens in common" without
/// the normalization of Jaccard/Dice/cosine. Not part of the Table II
/// feature battery.
pub fn overlap_size(a: &str, b: &str, tok: Tokenizer) -> f64 {
    let sa = tok.sorted_tokens(a);
    let sb = tok.sorted_tokens(b);
    intersection_size(&sa, &sb) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over token sets.
pub fn overlap_coefficient(a: &str, b: &str, tok: Tokenizer) -> f64 {
    let sa = tok.sorted_tokens(a);
    let sb = tok.sorted_tokens(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    intersection_size(&sa, &sb) as f64 / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const WS: Tokenizer = Tokenizer::Whitespace;

    #[test]
    fn paper_jaccard_example() {
        // Section III-B: jaccard("new york", "new york city") = 2/3.
        assert!((jaccard("new york", "new york city", WS) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_inputs_score_one() {
        for f in [jaccard, dice, cosine, overlap_coefficient] {
            assert_eq!(f("a b c", "a b c", WS), 1.0);
            assert_eq!(f("", "", WS), 1.0);
        }
    }

    #[test]
    fn disjoint_inputs_score_zero() {
        for f in [jaccard, dice, cosine, overlap_coefficient] {
            assert_eq!(f("a b", "c d", WS), 0.0);
            assert_eq!(f("a", "", WS), 0.0);
        }
    }

    #[test]
    fn dice_known() {
        // A={a,b,c}, B={b,c,d}: dice = 2*2/6 = 2/3
        assert!((dice("a b c", "b c d", WS) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_known() {
        // A={a,b}, B={b}: 1 / sqrt(2)
        assert!((cosine("a b", "b", WS) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlap_subset_is_one() {
        assert_eq!(overlap_coefficient("a b", "a b c d", WS), 1.0);
    }

    #[test]
    fn overlap_size_counts_shared_distinct_tokens() {
        assert_eq!(overlap_size("a b c", "b c d", WS), 2.0);
        assert_eq!(overlap_size("a a b", "a", WS), 1.0);
        assert_eq!(overlap_size("a b", "c d", WS), 0.0);
        assert_eq!(overlap_size("", "", WS), 0.0);
    }

    #[test]
    fn ordering_overlap_ge_dice_ge_jaccard() {
        // For any pair, overlap >= dice >= jaccard (standard inequalities).
        for (a, b) in [("a b c", "b c d e"), ("x y", "y z"), ("p q r s", "q")] {
            let j = jaccard(a, b, WS);
            let d = dice(a, b, WS);
            let o = overlap_coefficient(a, b, WS);
            assert!(o >= d - 1e-12);
            assert!(d >= j - 1e-12);
        }
    }

    #[test]
    fn qgram_variant() {
        let t = Tokenizer::QGram(3);
        // shared grams 7, union 12 -> 7/12
        assert!((jaccard("nichola", "nicholas", t) - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(jaccard("abc", "abc", t), 1.0);
    }

    #[test]
    fn merge_join_matches_btreeset_intersection() {
        // Duplicated tokens in the input must collapse before the join.
        for (a, b) in [
            ("a b a b c", "b c c d"),
            ("x x x", "x"),
            ("p q", ""),
            ("m n o", "n o p q n"),
        ] {
            let sa = WS.sorted_tokens(a);
            let sb = WS.sorted_tokens(b);
            let naive = WS.token_set(a).intersection(&WS.token_set(b)).count();
            assert_eq!(intersection_size(&sa, &sb), naive, "{a:?} vs {b:?}");
        }
    }
}
