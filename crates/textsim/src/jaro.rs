//! Jaro and Jaro-Winkler similarity (Table I/II rows 3 and 5).
//!
//! Despite the paper's table labelling these "Jaro Distance" and
//! "Jaro-Winkler Distance" (following `py_stringmatching` naming), both
//! functions return a *similarity* in `[0, 1]` where 1 means identical.

/// Jaro similarity between two strings.
///
/// Characters match when equal and within `max(|a|, |b|) / 2 - 1` positions
/// of one another; the similarity combines the match count and the number of
/// transpositions.
///
/// ```
/// let s = em_text::jaro("martha", "marhta");
/// assert!((s - 0.944444).abs() < 1e-5);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() && bc.is_empty() {
        return 1.0;
    }
    if ac.is_empty() || bc.is_empty() {
        return 0.0;
    }
    let window = (ac.len().max(bc.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; bc.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bc.len());
        for j in lo..hi {
            if !b_used[j] && bc[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = bc
        .iter()
        .zip(b_used.iter())
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / ac.len() as f64 + m / bc.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a prefix bonus.
///
/// Uses the standard scaling factor `p = 0.1` and a maximum common-prefix
/// length of 4, matching the classic definition.
///
/// ```
/// let s = em_text::jaro_winkler("dwayne", "duane");
/// assert!((s - 0.84).abs() < 1e-9);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const P: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * P * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: f64, y: f64) {
        assert!((x - y).abs() < 1e-6, "{x} != {y}");
    }

    #[test]
    fn jaro_known_values() {
        close(jaro("martha", "marhta"), 0.9444444444444445);
        close(jaro("dixon", "dicksonx"), 0.7666666666666666);
        close(jaro("jellyfish", "smellyfish"), 0.8962962962962964);
    }

    #[test]
    fn jaro_edge_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro("ab", "cd"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        close(jaro_winkler("martha", "marhta"), 0.9611111111111111);
        close(jaro_winkler("dixon", "dicksonx"), 0.8133333333333332);
        close(jaro_winkler("dwayne", "duane"), 0.84);
    }

    #[test]
    fn jaro_winkler_at_least_jaro() {
        for (a, b) in [("hello", "hallo"), ("abc", "abd"), ("x", "y")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b) - 1e-12);
        }
    }

    #[test]
    fn jaro_symmetric() {
        for (a, b) in [("martha", "marhta"), ("dixon", "dicksonx"), ("", "x")] {
            close(jaro(a, b), jaro(b, a));
        }
    }
}
