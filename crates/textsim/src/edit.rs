//! Edit-distance based similarity functions (Table I/II rows 1-2).

/// Levenshtein (edit) distance between two strings: the minimum number of
/// single-character insertions, deletions, or substitutions needed to turn
/// `a` into `b`.
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// ```
/// assert_eq!(em_text::levenshtein_distance("new yrk", "new york"), 1);
/// assert_eq!(em_text::levenshtein_distance("kitten", "sitting"), 3);
/// ```
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - distance / max(|a|, |b|)`. Two empty strings are defined to have
/// similarity 1.
///
/// ```
/// let s = em_text::levenshtein_similarity("new york", "new york");
/// assert_eq!(s, 1.0);
/// ```
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance(a, b) as f64 / m as f64
}

/// Exact string equality as a 0/1 similarity (Table I row 4).
pub fn exact_match(a: &str, b: &str) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_known_values() {
        assert_eq!(levenshtein_distance("", ""), 0);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("gumbo", "gambol"), 2);
        assert_eq!(levenshtein_distance("saturday", "sunday"), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(
            levenshtein_distance("abcdef", "azced"),
            levenshtein_distance("azced", "abcdef")
        );
    }

    #[test]
    fn distance_unicode() {
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
    }

    #[test]
    fn similarity_bounds() {
        let s = levenshtein_similarity("abc", "xyz");
        assert_eq!(s, 0.0);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("a", ""), 0.0);
    }

    #[test]
    fn paper_example() {
        // From the paper, Section III-B: distance("new yrk", "new york") = 1.
        assert_eq!(levenshtein_distance("new yrk", "new york"), 1);
    }

    #[test]
    fn exact() {
        assert_eq!(exact_match("a", "a"), 1.0);
        assert_eq!(exact_match("a", "b"), 0.0);
        assert_eq!(exact_match("", ""), 1.0);
    }
}
