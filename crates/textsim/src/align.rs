//! Sequence-alignment scores (Table I/II: Needleman-Wunsch, Smith-Waterman).
//!
//! Both use unit scoring (match = 1, mismatch = 0, gap penalty = 1), matching
//! the `py_stringmatching` defaults that Magellan feeds into its feature
//! vectors. The raw scores are what the paper's feature generators emit; the
//! `*_normalized` variants divide by the shorter/longer string length so the
//! values are comparable across attributes (useful for downstream scaling).

/// Needleman-Wunsch global alignment score with match = 1, mismatch = 0,
/// gap cost = 1. The score can be negative for very dissimilar strings.
///
/// ```
/// assert_eq!(em_text::needleman_wunsch("dva", "deeva"), 1.0);
/// ```
pub fn needleman_wunsch(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let mut prev: Vec<f64> = (0..=bc.len()).map(|j| -(j as f64)).collect();
    let mut cur = vec![0.0f64; bc.len() + 1];
    for (i, ca) in ac.iter().enumerate() {
        cur[0] = -((i + 1) as f64);
        for (j, cb) in bc.iter().enumerate() {
            let diag = prev[j] + f64::from(ca == cb);
            let up = prev[j + 1] - 1.0;
            let left = cur[j] - 1.0;
            cur[j + 1] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

/// Smith-Waterman local alignment score with match = 1, mismatch = 0,
/// gap cost = 1. Always non-negative; equals the length of the longest
/// "run" of locally alignable characters under unit scoring.
///
/// ```
/// assert_eq!(em_text::smith_waterman("cat", "hat"), 2.0);
/// ```
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let mut prev = vec![0.0f64; bc.len() + 1];
    let mut cur = vec![0.0f64; bc.len() + 1];
    let mut best = 0.0f64;
    for ca in &ac {
        for (j, cb) in bc.iter().enumerate() {
            let diag = prev[j] + f64::from(ca == cb);
            let up = prev[j + 1] - 1.0;
            let left = cur[j] - 1.0;
            cur[j + 1] = diag.max(up).max(left).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Needleman-Wunsch score divided by the length of the longer string,
/// clamped into `[-1, 1]`.
pub fn needleman_wunsch_normalized(a: &str, b: &str) -> f64 {
    let m = a.chars().count().max(b.chars().count());
    if m == 0 {
        return 1.0;
    }
    (needleman_wunsch(a, b) / m as f64).clamp(-1.0, 1.0)
}

/// Smith-Waterman score divided by the length of the shorter string,
/// clamped into `[0, 1]`. Two empty strings score 1.
pub fn smith_waterman_normalized(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let m = la.min(lb);
    if m == 0 {
        return 0.0;
    }
    (smith_waterman(a, b) / m as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nw_identical() {
        assert_eq!(needleman_wunsch("abc", "abc"), 3.0);
    }

    #[test]
    fn nw_empty() {
        assert_eq!(needleman_wunsch("", ""), 0.0);
        assert_eq!(needleman_wunsch("abc", ""), -3.0);
        assert_eq!(needleman_wunsch("", "ab"), -2.0);
    }

    #[test]
    fn nw_known() {
        // "dva" vs "deeva": align d.va / deeva -> 3 matches - 2 gaps = 1
        assert_eq!(needleman_wunsch("dva", "deeva"), 1.0);
        // completely different, same length: best is 0 (all mismatches)
        assert_eq!(needleman_wunsch("abc", "xyz"), 0.0);
    }

    #[test]
    fn sw_identical_and_disjoint() {
        assert_eq!(smith_waterman("abcd", "abcd"), 4.0);
        assert_eq!(smith_waterman("abc", "xyz"), 0.0);
        assert_eq!(smith_waterman("", "xyz"), 0.0);
    }

    #[test]
    fn sw_substring() {
        // local alignment finds the common substring
        assert_eq!(smith_waterman("xxhelloyy", "zzhellozz"), 5.0);
        assert_eq!(smith_waterman("cat", "hat"), 2.0);
    }

    #[test]
    fn sw_nonnegative_and_bounded() {
        for (a, b) in [("abcdef", "bcd"), ("aaa", "aa"), ("q", "")] {
            let s = smith_waterman(a, b);
            assert!(s >= 0.0);
            assert!(s <= a.chars().count().min(b.chars().count()) as f64);
        }
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(smith_waterman_normalized("abc", "abc"), 1.0);
        assert_eq!(smith_waterman_normalized("", ""), 1.0);
        assert_eq!(needleman_wunsch_normalized("abc", "abc"), 1.0);
        assert!(needleman_wunsch_normalized("abc", "") <= 0.0);
    }
}
