//! Similarity functions over numeric and boolean values
//! (Table I rows 22-26, Table II rows 17-21).

use crate::edit::{levenshtein_distance, levenshtein_similarity};

/// Absolute-norm similarity between two numbers:
/// `1 - |a - b| / max(|a|, |b|)`, clamped to `[0, 1]`.
///
/// Two zeros (or two equal values) score 1; values of opposite sign with
/// large magnitude difference approach 0. NaN inputs propagate NaN so the
/// downstream imputer can treat them as missing.
pub fn absolute_norm(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Exact numeric equality as 0/1 (NaN-propagating).
pub fn numeric_exact_match(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Levenshtein distance between the decimal string representations of two
/// numbers (Magellan applies the string edit distance to numeric attributes
/// too — Table I row 22).
pub fn numeric_levenshtein_distance(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    levenshtein_distance(&format_number(a), &format_number(b)) as f64
}

/// Normalized Levenshtein similarity between decimal representations.
pub fn numeric_levenshtein_similarity(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    levenshtein_similarity(&format_number(a), &format_number(b))
}

/// Boolean exact match as 0/1 (Table I row 26 / Table II row 21).
pub fn bool_exact_match(a: bool, b: bool) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Render a number the way the record originally would have been printed:
/// integers without a decimal point, everything else with the shortest
/// round-trip representation.
fn format_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_norm_known() {
        assert_eq!(absolute_norm(10.0, 10.0), 1.0);
        assert_eq!(absolute_norm(0.0, 0.0), 1.0);
        assert!((absolute_norm(8.0, 10.0) - 0.8).abs() < 1e-12);
        assert_eq!(absolute_norm(-5.0, 5.0), 0.0);
    }

    #[test]
    fn absolute_norm_clamped() {
        // |a-b| can exceed max(|a|,|b|) for opposite signs; clamp to 0.
        assert_eq!(absolute_norm(-10.0, 1.0), 0.0);
    }

    #[test]
    fn absolute_norm_nan() {
        assert!(absolute_norm(f64::NAN, 1.0).is_nan());
        assert!(absolute_norm(1.0, f64::NAN).is_nan());
    }

    #[test]
    fn numeric_exact() {
        assert_eq!(numeric_exact_match(3.5, 3.5), 1.0);
        assert_eq!(numeric_exact_match(3.5, 3.6), 0.0);
        assert!(numeric_exact_match(f64::NAN, 3.5).is_nan());
    }

    #[test]
    fn numeric_lev() {
        // "1972" vs "1973": one substitution.
        assert_eq!(numeric_levenshtein_distance(1972.0, 1973.0), 1.0);
        assert!((numeric_levenshtein_similarity(1972.0, 1973.0) - 0.75).abs() < 1e-12);
        // integers format without trailing ".0"
        assert_eq!(numeric_levenshtein_distance(5.0, 5.0), 0.0);
    }

    #[test]
    fn bool_match() {
        assert_eq!(bool_exact_match(true, true), 1.0);
        assert_eq!(bool_exact_match(true, false), 0.0);
    }
}
