//! Interned token profiles and allocation-free similarity kernels.
//!
//! The Table-II scheme evaluates 16 string similarities per attribute per
//! candidate pair, and the same attribute value participates in many pairs.
//! The `&str` entry points re-tokenize, re-collect `Vec<char>` buffers, and
//! re-allocate DP rows on every call. This module moves all of that to a
//! precompute-once-probe-many shape:
//!
//! * [`TokenInterner`] maps token strings to dense `u32` ids (insertion
//!   order, so interning is deterministic when driven serially).
//! * [`TokenProfile`] caches everything the 16 similarity functions need
//!   about one string: the char buffer, whitespace token spans (in order,
//!   duplicates preserved — Monge-Elkan needs them), and *sorted deduped*
//!   token-id slices for the Whitespace and QGram(3) tokenizers.
//! * [`SimScratch`] owns the DP rows and match buffers, so
//!   Levenshtein/Jaro/Needleman-Wunsch/Smith-Waterman/Monge-Elkan run
//!   without allocating in steady state.
//! * [`StringSimilarity::apply_profiles`](crate::StringSimilarity::apply_profiles)
//!   evaluates any Table-II measure on two profiles, bit-identical to
//!   [`StringSimilarity::apply`](crate::StringSimilarity::apply) on the
//!   original strings.
//!
//! Profile construction is split in two so the expensive half can run on
//! the `em-rt` pool without losing determinism: [`ProfileDraft::new`] does
//! the tokenizing/sorting work and is side-effect free (safe to run in any
//! order, in parallel), while [`TokenProfile::from_draft`] interns the token
//! strings and must be driven serially in a fixed order so ids never depend
//! on the thread count.

use crate::tokenize::Tokenizer;
use crate::StringSimilarity;
use std::collections::HashMap;

/// The q-gram width the profile precomputes (Table II uses QGram(3) only).
pub const PROFILE_QGRAM: usize = 3;

/// Maps token strings to dense `u32` ids in first-intern order.
///
/// One interner serves both tokenizers' namespaces: id equality is string
/// equality, and whitespace-token id slices are only ever intersected with
/// other whitespace slices (same for q-grams), so sharing the id space is
/// harmless and keeps the blocker/profile plumbing to a single type.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    map: HashMap<String, u32>,
}

impl TokenInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `token`, interning it on first sight.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = u32::try_from(self.map.len()).expect("more than u32::MAX distinct tokens");
        self.map.insert(token.to_owned(), id);
        id
    }

    /// Id for `token` if it has been interned (never allocates).
    pub fn get(&self, token: &str) -> Option<u32> {
        self.map.get(token).copied()
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Export the vocabulary as `(token, id)` pairs sorted by id — the
    /// persistence hook for index artifacts (`em-serve`). Ids are dense in
    /// `0..len()`, so re-interning the tokens in id order reproduces this
    /// interner exactly.
    pub fn export(&self) -> Vec<(&str, u32)> {
        let mut entries: Vec<(&str, u32)> = self
            .map
            .iter()
            .map(|(tok, &id)| (tok.as_str(), id))
            .collect();
        entries.sort_unstable_by_key(|&(_, id)| id);
        entries
    }

    /// Rebuild an interner from tokens listed in id order (the shape
    /// [`TokenInterner::export`] produces). Fails if any token repeats.
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, String> {
        let mut interner = TokenInterner::new();
        for token in tokens {
            let before = interner.len();
            let id = interner.intern(&token);
            if (id as usize) != before {
                return Err(format!("duplicate token {token:?} in interner import"));
            }
        }
        Ok(interner)
    }
}

/// The parallel-safe half of profile construction: everything about one
/// string except the token ids. See the module docs for why the split
/// exists.
#[derive(Debug, Clone)]
pub struct ProfileDraft {
    chars: Vec<char>,
    ws_spans: Vec<(u32, u32)>,
    ws_unique: Vec<String>,
    qgram_unique: Vec<String>,
}

impl ProfileDraft {
    /// Tokenize and dedupe `s` (the expensive part; no shared state).
    pub fn new(s: &str) -> Self {
        let chars: Vec<char> = s.chars().collect();
        // Whitespace token spans over `chars`: maximal runs of
        // non-whitespace, matching `str::split_whitespace` exactly.
        let mut ws_spans = Vec::new();
        let mut start = None;
        for (i, c) in chars.iter().enumerate() {
            if c.is_whitespace() {
                if let Some(s0) = start.take() {
                    ws_spans.push((s0 as u32, i as u32));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s0) = start {
            ws_spans.push((s0 as u32, chars.len() as u32));
        }
        let mut ws_unique: Vec<String> = ws_spans
            .iter()
            .map(|&(a, b)| chars[a as usize..b as usize].iter().collect())
            .collect();
        ws_unique.sort_unstable();
        ws_unique.dedup();
        let mut qgram_unique = crate::tokenize::qgrams(s, PROFILE_QGRAM);
        qgram_unique.sort_unstable();
        qgram_unique.dedup();
        ProfileDraft {
            chars,
            ws_spans,
            ws_unique,
            qgram_unique,
        }
    }
}

/// Everything the Table-II similarity functions need about one string,
/// precomputed. Build with [`TokenProfile::build`], or via
/// [`ProfileDraft`] + [`TokenProfile::from_draft`] when drafting runs on
/// the pool.
#[derive(Debug, Clone)]
pub struct TokenProfile {
    chars: Vec<char>,
    ws_spans: Vec<(u32, u32)>,
    ws_ids: Vec<u32>,
    qgram_ids: Vec<u32>,
}

impl TokenProfile {
    /// Intern a draft's tokens (the serial part — call in a fixed order).
    pub fn from_draft(draft: ProfileDraft, interner: &mut TokenInterner) -> Self {
        let mut ws_ids: Vec<u32> = draft.ws_unique.iter().map(|t| interner.intern(t)).collect();
        ws_ids.sort_unstable();
        let mut qgram_ids: Vec<u32> = draft
            .qgram_unique
            .iter()
            .map(|t| interner.intern(t))
            .collect();
        qgram_ids.sort_unstable();
        TokenProfile {
            chars: draft.chars,
            ws_spans: draft.ws_spans,
            ws_ids,
            qgram_ids,
        }
    }

    /// Draft + intern in one step (serial convenience).
    pub fn build(s: &str, interner: &mut TokenInterner) -> Self {
        Self::from_draft(ProfileDraft::new(s), interner)
    }

    /// The string's chars (the exact char sequence of the source string).
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// Sorted deduped token ids under the given tokenizer, when the profile
    /// precomputes that tokenizer (Whitespace and QGram(3)).
    pub fn token_ids(&self, tok: Tokenizer) -> Option<&[u32]> {
        match tok {
            Tokenizer::Whitespace => Some(&self.ws_ids),
            Tokenizer::QGram(PROFILE_QGRAM) => Some(&self.qgram_ids),
            Tokenizer::QGram(_) => None,
        }
    }

    /// Whitespace token spans (`[start, end)` into [`Self::chars`], in
    /// order, duplicates preserved).
    pub fn ws_spans(&self) -> &[(u32, u32)] {
        &self.ws_spans
    }
}

/// Number of elements two sorted deduped id slices share (merge join).
pub fn intersection_size_sorted(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Reusable DP rows and match buffers for the char-level kernels. One
/// scratch per worker thread makes every kernel allocation-free once the
/// buffers have grown to the workload's longest string.
#[derive(Debug, Default)]
pub struct SimScratch {
    lev_prev: Vec<usize>,
    lev_cur: Vec<usize>,
    dp_prev: Vec<f64>,
    dp_cur: Vec<f64>,
    b_used: Vec<bool>,
    matches_a: Vec<char>,
    matches_b: Vec<char>,
}

impl SimScratch {
    /// Empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Levenshtein distance over char slices; same DP as
/// [`levenshtein_distance`](crate::levenshtein_distance), rows from scratch.
pub fn levenshtein_chars(a: &[char], b: &[char], s: &mut SimScratch) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    s.lev_prev.clear();
    s.lev_prev.extend(0..=short.len());
    s.lev_cur.clear();
    s.lev_cur.resize(short.len() + 1, 0);
    let (prev, cur) = (&mut s.lev_prev, &mut s.lev_cur);
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[short.len()]
}

/// Jaro similarity over char slices; same arithmetic as
/// [`jaro`](crate::jaro), buffers from scratch.
pub fn jaro_chars(ac: &[char], bc: &[char], s: &mut SimScratch) -> f64 {
    if ac.is_empty() && bc.is_empty() {
        return 1.0;
    }
    if ac.is_empty() || bc.is_empty() {
        return 0.0;
    }
    let window = (ac.len().max(bc.len()) / 2).saturating_sub(1);
    let SimScratch {
        b_used,
        matches_a,
        matches_b,
        ..
    } = s;
    b_used.clear();
    b_used.resize(bc.len(), false);
    matches_a.clear();
    for (i, ca) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(bc.len());
        for j in lo..hi {
            if !b_used[j] && bc[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    matches_b.clear();
    matches_b.extend(
        bc.iter()
            .zip(b_used.iter())
            .filter_map(|(c, used)| used.then_some(*c)),
    );
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / ac.len() as f64 + m / bc.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler over char slices; same constants as
/// [`jaro_winkler`](crate::jaro_winkler).
pub fn jaro_winkler_chars(ac: &[char], bc: &[char], s: &mut SimScratch) -> f64 {
    const P: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro_chars(ac, bc, s);
    let prefix = ac
        .iter()
        .zip(bc.iter())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * P * (1.0 - j)
}

/// Needleman-Wunsch over char slices; same recurrence as
/// [`needleman_wunsch`](crate::needleman_wunsch), rows from scratch.
pub fn needleman_wunsch_chars(ac: &[char], bc: &[char], s: &mut SimScratch) -> f64 {
    s.dp_prev.clear();
    s.dp_prev.extend((0..=bc.len()).map(|j| -(j as f64)));
    s.dp_cur.clear();
    s.dp_cur.resize(bc.len() + 1, 0.0);
    let (prev, cur) = (&mut s.dp_prev, &mut s.dp_cur);
    for (i, ca) in ac.iter().enumerate() {
        cur[0] = -((i + 1) as f64);
        for (j, cb) in bc.iter().enumerate() {
            let diag = prev[j] + f64::from(ca == cb);
            let up = prev[j + 1] - 1.0;
            let left = cur[j] - 1.0;
            cur[j + 1] = diag.max(up).max(left);
        }
        std::mem::swap(prev, cur);
    }
    prev[bc.len()]
}

/// Smith-Waterman over char slices; same recurrence as
/// [`smith_waterman`](crate::smith_waterman), rows from scratch.
pub fn smith_waterman_chars(ac: &[char], bc: &[char], s: &mut SimScratch) -> f64 {
    s.dp_prev.clear();
    s.dp_prev.resize(bc.len() + 1, 0.0);
    s.dp_cur.clear();
    s.dp_cur.resize(bc.len() + 1, 0.0);
    let (prev, cur) = (&mut s.dp_prev, &mut s.dp_cur);
    let mut best = 0.0f64;
    for ca in ac {
        for (j, cb) in bc.iter().enumerate() {
            let diag = prev[j] + f64::from(ca == cb);
            let up = prev[j + 1] - 1.0;
            let left = cur[j] - 1.0;
            cur[j + 1] = diag.max(up).max(left).max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(prev, cur);
    }
    best
}

/// Monge-Elkan (Jaro-Winkler secondary) over profiles, using the cached
/// whitespace token spans; same accumulation order as
/// [`monge_elkan`](crate::monge_elkan).
pub fn monge_elkan_profiles(a: &TokenProfile, b: &TokenProfile, s: &mut SimScratch) -> f64 {
    if a.ws_spans.is_empty() && b.ws_spans.is_empty() {
        return 1.0;
    }
    if a.ws_spans.is_empty() || b.ws_spans.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &(xa, xb) in &a.ws_spans {
        let x = &a.chars[xa as usize..xb as usize];
        let mut best = f64::NEG_INFINITY;
        for &(ya, yb) in &b.ws_spans {
            let y = &b.chars[ya as usize..yb as usize];
            best = best.max(jaro_winkler_chars(x, y, s));
        }
        total += best;
    }
    total / a.ws_spans.len() as f64
}

/// Shared shape of the four token-set measures over precomputed id slices;
/// formulas mirror the `&str` versions in `setsim` term for term.
fn set_measure(sim: StringSimilarity, a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        // jaccard reaches the same 0.0 through inter/union; returning it
        // directly keeps all four measures on one early-exit shape.
        return 0.0;
    }
    let inter = intersection_size_sorted(a, b);
    match sim {
        StringSimilarity::Jaccard(_) => {
            let union = a.len() + b.len() - inter;
            inter as f64 / union as f64
        }
        StringSimilarity::Dice(_) => 2.0 * inter as f64 / (a.len() + b.len()) as f64,
        StringSimilarity::Cosine(_) => inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt(),
        StringSimilarity::OverlapCoefficient(_) => inter as f64 / a.len().min(b.len()) as f64,
        _ => unreachable!("set_measure is only called for token-set similarities"),
    }
}

impl StringSimilarity {
    /// Evaluate the measure on two precomputed profiles — bit-identical to
    /// [`StringSimilarity::apply`] on the source strings, allocation-free in
    /// steady state given a reused `scratch`.
    ///
    /// Profiles precompute token ids for the Table-II tokenizers only
    /// (Whitespace and QGram(3)); a token-set measure parameterized with any
    /// other q falls back to the string path via the cached char buffer.
    pub fn apply_profiles(
        &self,
        a: &TokenProfile,
        b: &TokenProfile,
        scratch: &mut SimScratch,
    ) -> f64 {
        match *self {
            StringSimilarity::LevenshteinDistance => {
                levenshtein_chars(&a.chars, &b.chars, scratch) as f64
            }
            StringSimilarity::LevenshteinSimilarity => {
                let m = a.chars.len().max(b.chars.len());
                if m == 0 {
                    1.0
                } else {
                    1.0 - levenshtein_chars(&a.chars, &b.chars, scratch) as f64 / m as f64
                }
            }
            StringSimilarity::Jaro => jaro_chars(&a.chars, &b.chars, scratch),
            StringSimilarity::ExactMatch => {
                if a.chars == b.chars {
                    1.0
                } else {
                    0.0
                }
            }
            StringSimilarity::JaroWinkler => jaro_winkler_chars(&a.chars, &b.chars, scratch),
            StringSimilarity::NeedlemanWunsch => {
                needleman_wunsch_chars(&a.chars, &b.chars, scratch)
            }
            StringSimilarity::SmithWaterman => smith_waterman_chars(&a.chars, &b.chars, scratch),
            StringSimilarity::MongeElkan => monge_elkan_profiles(a, b, scratch),
            StringSimilarity::OverlapCoefficient(t)
            | StringSimilarity::Dice(t)
            | StringSimilarity::Cosine(t)
            | StringSimilarity::Jaccard(t) => match (a.token_ids(t), b.token_ids(t)) {
                (Some(ia), Some(ib)) => set_measure(*self, ia, ib),
                _ => {
                    // Unprofiled tokenizer (QGram(q != 3)): rebuild the
                    // strings from the cached chars and use the &str path.
                    let sa: String = a.chars.iter().collect();
                    let sb: String = b.chars.iter().collect();
                    self.apply(&sa, &sb)
                }
            },
            // Raw count: no normalization, and both-empty is 0 shared
            // tokens (not the 1.0 the normalized measures conventionally
            // return), so it bypasses set_measure's early exits.
            StringSimilarity::OverlapSize(t) => match (a.token_ids(t), b.token_ids(t)) {
                (Some(ia), Some(ib)) => intersection_size_sorted(ia, ib) as f64,
                _ => {
                    let sa: String = a.chars.iter().collect();
                    let sb: String = b.chars.iter().collect();
                    self.apply(&sa, &sb)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::Tokenizer;

    fn profile_pair(a: &str, b: &str) -> (TokenProfile, TokenProfile) {
        let mut interner = TokenInterner::new();
        (
            TokenProfile::build(a, &mut interner),
            TokenProfile::build(b, &mut interner),
        )
    }

    #[test]
    fn interner_is_insertion_ordered_and_idempotent() {
        let mut it = TokenInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.intern("new"), 0);
        assert_eq!(it.intern("york"), 1);
        assert_eq!(it.intern("new"), 0);
        assert_eq!(it.get("york"), Some(1));
        assert_eq!(it.get("city"), None);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn profile_spans_match_split_whitespace() {
        for s in ["", "   ", "new  york\tcity", " a ", "único  día"] {
            let mut it = TokenInterner::new();
            let p = TokenProfile::build(s, &mut it);
            let toks: Vec<String> = p
                .ws_spans()
                .iter()
                .map(|&(a, b)| p.chars()[a as usize..b as usize].iter().collect())
                .collect();
            let expect: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
            assert_eq!(toks, expect, "input {s:?}");
        }
    }

    #[test]
    fn token_id_slices_are_sorted_dedup_and_sized_like_token_sets() {
        for s in ["a b a b c", "new york", "", "ababab"] {
            let mut it = TokenInterner::new();
            let p = TokenProfile::build(s, &mut it);
            for tok in [Tokenizer::Whitespace, Tokenizer::QGram(3)] {
                let ids = p.token_ids(tok).unwrap();
                assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted dedup");
                assert_eq!(ids.len(), tok.token_set(s).len(), "input {s:?}");
            }
            assert!(p.token_ids(Tokenizer::QGram(2)).is_none());
        }
    }

    #[test]
    fn merge_join_counts_shared_ids() {
        assert_eq!(intersection_size_sorted(&[], &[]), 0);
        assert_eq!(intersection_size_sorted(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(intersection_size_sorted(&[1, 2], &[3, 4]), 0);
        assert_eq!(intersection_size_sorted(&[7], &[7]), 1);
    }

    #[test]
    fn apply_profiles_matches_apply_on_fixtures() {
        use crate::StringSimilarity::*;
        let cases = [
            ("new york", "new york city"),
            ("arnie mortons of chicago", "arnie mortons chicago"),
            ("", ""),
            ("", "abc"),
            ("martha", "marhta"),
            ("café münchen", "cafe munchen"),
            ("dva", "deeva"),
        ];
        let sims = [
            LevenshteinDistance,
            LevenshteinSimilarity,
            Jaro,
            ExactMatch,
            JaroWinkler,
            NeedlemanWunsch,
            SmithWaterman,
            MongeElkan,
            OverlapCoefficient(Tokenizer::Whitespace),
            Dice(Tokenizer::Whitespace),
            Cosine(Tokenizer::Whitespace),
            Jaccard(Tokenizer::Whitespace),
            OverlapCoefficient(Tokenizer::QGram(3)),
            Dice(Tokenizer::QGram(3)),
            Cosine(Tokenizer::QGram(3)),
            Jaccard(Tokenizer::QGram(3)),
            OverlapSize(Tokenizer::Whitespace),
            OverlapSize(Tokenizer::QGram(3)),
        ];
        let mut scratch = SimScratch::new();
        for (a, b) in cases {
            let (pa, pb) = profile_pair(a, b);
            for sim in sims {
                let want = sim.apply(a, b);
                let got = sim.apply_profiles(&pa, &pb, &mut scratch);
                assert_eq!(want.to_bits(), got.to_bits(), "{sim:?} on {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn unprofiled_qgram_width_falls_back_to_string_path() {
        let (pa, pb) = profile_pair("nichola", "nicholas");
        let sim = StringSimilarity::Jaccard(Tokenizer::QGram(2));
        let mut scratch = SimScratch::new();
        assert_eq!(
            sim.apply("nichola", "nicholas").to_bits(),
            sim.apply_profiles(&pa, &pb, &mut scratch).to_bits()
        );
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_across_calls() {
        let mut scratch = SimScratch::new();
        let (p1, p2) = profile_pair("a long first string here", "sh");
        // Prime the buffers with a large pair, then verify a small pair.
        let _ = StringSimilarity::LevenshteinDistance.apply_profiles(&p1, &p2, &mut scratch);
        let _ = StringSimilarity::Jaro.apply_profiles(&p1, &p2, &mut scratch);
        let (q1, q2) = profile_pair("ab", "ba");
        for sim in [
            StringSimilarity::LevenshteinDistance,
            StringSimilarity::Jaro,
            StringSimilarity::NeedlemanWunsch,
            StringSimilarity::SmithWaterman,
            StringSimilarity::MongeElkan,
        ] {
            assert_eq!(
                sim.apply("ab", "ba").to_bits(),
                sim.apply_profiles(&q1, &q2, &mut scratch).to_bits(),
                "{sim:?}"
            );
        }
    }
}
