//! Tokenizers used by the token-based similarity functions.
//!
//! The paper's feature-generation tables (Tables I and II) pair token-based
//! similarity functions with one of two tokenizers: whitespace (`Space`) and
//! 3-gram (`QGram(3)`).

use std::collections::BTreeSet;

/// A tokenizer splits a string into tokens. Token-based similarity functions
/// operate on the resulting token *sets* (duplicates removed), matching the
/// behaviour of the `py_stringmatching` tokenizers Magellan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tokenizer {
    /// Split on runs of ASCII whitespace.
    Whitespace,
    /// Sliding character q-grams of the given width. Strings are padded with
    /// `#` on both sides (q-1 pad characters), so even strings shorter than
    /// `q` produce tokens.
    QGram(usize),
}

impl Tokenizer {
    /// Tokenize `s` into a list of tokens (duplicates preserved, in order).
    pub fn tokenize(&self, s: &str) -> Vec<String> {
        match *self {
            Tokenizer::Whitespace => s.split_whitespace().map(str::to_owned).collect(),
            Tokenizer::QGram(q) => qgrams(s, q),
        }
    }

    /// Tokenize `s` into a set of unique tokens.
    pub fn token_set(&self, s: &str) -> BTreeSet<String> {
        self.tokenize(s).into_iter().collect()
    }

    /// Tokenize `s` into a sorted, deduplicated token list — the same set
    /// as [`Tokenizer::token_set`] but flat, so set intersections can run
    /// as merge joins without tree allocation.
    pub fn sorted_tokens(&self, s: &str) -> Vec<String> {
        let mut toks = self.tokenize(s);
        toks.sort_unstable();
        toks.dedup();
        toks
    }

    /// Short lowercase name used when building feature names
    /// (e.g. `jaccard_space`, `cosine_3gram`).
    pub fn name(&self) -> String {
        match *self {
            Tokenizer::Whitespace => "space".to_owned(),
            Tokenizer::QGram(q) => format!("{q}gram"),
        }
    }
}

/// Character q-grams with `#` padding on both ends, mirroring
/// `py_stringmatching.QgramTokenizer(padding=True)`.
///
/// An empty input produces no tokens. `q` of zero is treated as one.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    if s.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q.saturating_sub(1));
    let padded: Vec<char> = format!("{pad}{s}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_splits_on_runs() {
        let t = Tokenizer::Whitespace;
        assert_eq!(t.tokenize("new  york\tcity"), vec!["new", "york", "city"]);
    }

    #[test]
    fn whitespace_empty_string() {
        assert!(Tokenizer::Whitespace.tokenize("").is_empty());
        assert!(Tokenizer::Whitespace.tokenize("   ").is_empty());
    }

    #[test]
    fn qgram_basic() {
        // "ab" with q=3 pads to "##ab##": ##a, #ab, ab#, b##
        assert_eq!(qgrams("ab", 3), vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn qgram_single_char() {
        assert_eq!(qgrams("a", 2), vec!["#a", "a#"]);
    }

    #[test]
    fn qgram_empty() {
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgram_count_formula() {
        // With padding q-1 on both sides, an n-char string yields n + q - 1 grams.
        for q in 1..=4usize {
            for s in ["a", "ab", "abcdef"] {
                let n = s.chars().count();
                assert_eq!(qgrams(s, q).len(), n + q - 1, "s={s} q={q}");
            }
        }
    }

    #[test]
    fn qgram_unicode_safe() {
        // Must not panic on multi-byte characters.
        let grams = qgrams("café", 2);
        assert_eq!(grams.len(), 5);
        assert_eq!(grams[0], "#c");
        assert_eq!(grams[4], "é#");
    }

    #[test]
    fn token_set_dedupes() {
        let set = Tokenizer::Whitespace.token_set("a b a b c");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn names() {
        assert_eq!(Tokenizer::Whitespace.name(), "space");
        assert_eq!(Tokenizer::QGram(3).name(), "3gram");
    }
}
