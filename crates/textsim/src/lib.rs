//! # em-text — string similarity substrate for entity matching
//!
//! From-scratch implementations of every similarity function referenced by
//! the paper's feature-generation tables (Tables I and II): edit-based
//! (Levenshtein distance/similarity, exact match), alignment-based
//! (Needleman-Wunsch, Smith-Waterman), Jaro family (Jaro, Jaro-Winkler),
//! hybrid (Monge-Elkan with Jaro-Winkler secondary), token-set based
//! (Jaccard, Dice, cosine, overlap coefficient over whitespace or q-gram
//! tokens), plus numeric (absolute norm, exact match, numeric Levenshtein)
//! and boolean (exact match) measures.
//!
//! The [`StringSimilarity`], [`NumericSimilarity`], and [`BooleanSimilarity`]
//! enums give each measure a stable identity and feature-name string, which
//! the `automl-em` core crate uses to build feature vectors.
//!
//! ```
//! use em_text::{StringSimilarity, Tokenizer};
//!
//! let f = StringSimilarity::Jaccard(Tokenizer::Whitespace);
//! assert!((f.apply("new york", "new york city") - 2.0 / 3.0).abs() < 1e-12);
//! assert_eq!(f.name(), "jaccard_space");
//! ```

mod align;
mod edit;
mod hybrid;
mod jaro;
mod numeric;
mod profile;
mod setsim;
mod tokenize;

pub use align::{
    needleman_wunsch, needleman_wunsch_normalized, smith_waterman, smith_waterman_normalized,
};
pub use edit::{exact_match, levenshtein_distance, levenshtein_similarity};
pub use hybrid::{monge_elkan, monge_elkan_with};
pub use jaro::{jaro, jaro_winkler};
pub use numeric::{
    absolute_norm, bool_exact_match, numeric_exact_match, numeric_levenshtein_distance,
    numeric_levenshtein_similarity,
};
pub use profile::{
    intersection_size_sorted, jaro_chars, jaro_winkler_chars, levenshtein_chars,
    monge_elkan_profiles, needleman_wunsch_chars, smith_waterman_chars, ProfileDraft, SimScratch,
    TokenInterner, TokenProfile, PROFILE_QGRAM,
};
pub use setsim::{cosine, dice, jaccard, overlap_coefficient, overlap_size};
pub use tokenize::{qgrams, Tokenizer};

/// A string-to-string similarity measure (Table I/II "String" rows).
///
/// `apply` returns the raw value the paper's feature generator would emit:
/// most measures are similarities in `[0, 1]`, but `LevenshteinDistance`,
/// `NeedlemanWunsch`, and `SmithWaterman` are raw scores with wider ranges,
/// exactly as Magellan feeds them to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StringSimilarity {
    /// Raw Levenshtein edit distance (a distance: 0 = identical).
    LevenshteinDistance,
    /// Normalized Levenshtein similarity in `[0, 1]`.
    LevenshteinSimilarity,
    /// Jaro similarity in `[0, 1]`.
    Jaro,
    /// 0/1 exact string equality.
    ExactMatch,
    /// Jaro-Winkler similarity in `[0, 1]`.
    JaroWinkler,
    /// Raw Needleman-Wunsch global alignment score (can be negative).
    NeedlemanWunsch,
    /// Raw Smith-Waterman local alignment score (non-negative).
    SmithWaterman,
    /// Monge-Elkan with Jaro-Winkler secondary, in `[0, 1]`.
    MongeElkan,
    /// Overlap coefficient over token sets.
    OverlapCoefficient(Tokenizer),
    /// Dice similarity over token sets.
    Dice(Tokenizer),
    /// Cosine (Ochiai) similarity over token sets.
    Cosine(Tokenizer),
    /// Jaccard similarity over token sets.
    Jaccard(Tokenizer),
    /// Raw shared-token count `|A ∩ B|` (unnormalized; used by blocking-
    /// overlap labeling functions, not part of the Table II battery).
    OverlapSize(Tokenizer),
}

impl StringSimilarity {
    /// Evaluate the measure on two strings.
    pub fn apply(&self, a: &str, b: &str) -> f64 {
        match *self {
            StringSimilarity::LevenshteinDistance => levenshtein_distance(a, b) as f64,
            StringSimilarity::LevenshteinSimilarity => levenshtein_similarity(a, b),
            StringSimilarity::Jaro => jaro(a, b),
            StringSimilarity::ExactMatch => exact_match(a, b),
            StringSimilarity::JaroWinkler => jaro_winkler(a, b),
            StringSimilarity::NeedlemanWunsch => needleman_wunsch(a, b),
            StringSimilarity::SmithWaterman => smith_waterman(a, b),
            StringSimilarity::MongeElkan => monge_elkan(a, b),
            StringSimilarity::OverlapCoefficient(t) => overlap_coefficient(a, b, t),
            StringSimilarity::Dice(t) => dice(a, b, t),
            StringSimilarity::Cosine(t) => cosine(a, b, t),
            StringSimilarity::Jaccard(t) => jaccard(a, b, t),
            StringSimilarity::OverlapSize(t) => overlap_size(a, b, t),
        }
    }

    /// Stable snake-case name used as a feature-name suffix.
    pub fn name(&self) -> String {
        match *self {
            StringSimilarity::LevenshteinDistance => "lev_dist".to_owned(),
            StringSimilarity::LevenshteinSimilarity => "lev_sim".to_owned(),
            StringSimilarity::Jaro => "jaro".to_owned(),
            StringSimilarity::ExactMatch => "exact_match".to_owned(),
            StringSimilarity::JaroWinkler => "jaro_winkler".to_owned(),
            StringSimilarity::NeedlemanWunsch => "needleman_wunsch".to_owned(),
            StringSimilarity::SmithWaterman => "smith_waterman".to_owned(),
            StringSimilarity::MongeElkan => "monge_elkan".to_owned(),
            StringSimilarity::OverlapCoefficient(t) => format!("overlap_{}", t.name()),
            StringSimilarity::Dice(t) => format!("dice_{}", t.name()),
            StringSimilarity::Cosine(t) => format!("cosine_{}", t.name()),
            StringSimilarity::Jaccard(t) => format!("jaccard_{}", t.name()),
            StringSimilarity::OverlapSize(t) => format!("overlap_size_{}", t.name()),
        }
    }

    /// Whether larger values mean *more different* (only true for the raw
    /// Levenshtein distance). Useful for sanity checks and diagnostics.
    pub fn is_distance(&self) -> bool {
        matches!(self, StringSimilarity::LevenshteinDistance)
    }
}

/// A number-to-number similarity measure (Table I/II "Numeric" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericSimilarity {
    /// Levenshtein distance between decimal representations.
    LevenshteinDistance,
    /// Normalized Levenshtein similarity between decimal representations.
    LevenshteinSimilarity,
    /// 0/1 exact equality.
    ExactMatch,
    /// `1 - |a-b| / max(|a|,|b|)` clamped to `[0, 1]`.
    AbsoluteNorm,
}

impl NumericSimilarity {
    /// Evaluate the measure on two numbers. NaN inputs propagate NaN.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            NumericSimilarity::LevenshteinDistance => numeric_levenshtein_distance(a, b),
            NumericSimilarity::LevenshteinSimilarity => numeric_levenshtein_similarity(a, b),
            NumericSimilarity::ExactMatch => numeric_exact_match(a, b),
            NumericSimilarity::AbsoluteNorm => absolute_norm(a, b),
        }
    }

    /// Stable snake-case name used as a feature-name suffix.
    pub fn name(&self) -> &'static str {
        match self {
            NumericSimilarity::LevenshteinDistance => "lev_dist",
            NumericSimilarity::LevenshteinSimilarity => "lev_sim",
            NumericSimilarity::ExactMatch => "exact_match",
            NumericSimilarity::AbsoluteNorm => "abs_norm",
        }
    }
}

/// A boolean-to-boolean similarity measure (Table I/II "Bool" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BooleanSimilarity {
    /// 0/1 exact equality.
    ExactMatch,
}

impl BooleanSimilarity {
    /// Evaluate the measure on two booleans.
    pub fn apply(&self, a: bool, b: bool) -> f64 {
        match self {
            BooleanSimilarity::ExactMatch => bool_exact_match(a, b),
        }
    }

    /// Stable snake-case name used as a feature-name suffix.
    pub fn name(&self) -> &'static str {
        "exact_match"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_apply_matches_free_functions() {
        let a = "arnie mortons of chicago";
        let b = "arnie mortons chicago";
        assert_eq!(
            StringSimilarity::LevenshteinDistance.apply(a, b),
            levenshtein_distance(a, b) as f64
        );
        assert_eq!(
            StringSimilarity::Jaccard(Tokenizer::Whitespace).apply(a, b),
            jaccard(a, b, Tokenizer::Whitespace)
        );
        assert_eq!(StringSimilarity::MongeElkan.apply(a, b), monge_elkan(a, b));
    }

    #[test]
    fn names_are_unique_across_table_ii_string_rows() {
        use StringSimilarity::*;
        let all = [
            LevenshteinDistance,
            LevenshteinSimilarity,
            Jaro,
            ExactMatch,
            JaroWinkler,
            NeedlemanWunsch,
            SmithWaterman,
            MongeElkan,
            OverlapCoefficient(Tokenizer::Whitespace),
            Dice(Tokenizer::Whitespace),
            Cosine(Tokenizer::Whitespace),
            Jaccard(Tokenizer::Whitespace),
            OverlapCoefficient(Tokenizer::QGram(3)),
            Dice(Tokenizer::QGram(3)),
            Cosine(Tokenizer::QGram(3)),
            Jaccard(Tokenizer::QGram(3)),
        ];
        let names: std::collections::BTreeSet<String> = all.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn numeric_enum_applies() {
        assert_eq!(NumericSimilarity::ExactMatch.apply(2.0, 2.0), 1.0);
        assert!((NumericSimilarity::AbsoluteNorm.apply(8.0, 10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bool_enum_applies() {
        assert_eq!(BooleanSimilarity::ExactMatch.apply(true, true), 1.0);
        assert_eq!(BooleanSimilarity::ExactMatch.apply(false, true), 0.0);
    }
}
