//! Hybrid token/character similarity: Monge-Elkan (Table I/II row 8/11/17).

use crate::jaro::jaro_winkler;
use crate::tokenize::Tokenizer;

/// Monge-Elkan similarity with Jaro-Winkler as the secondary (inner)
/// similarity, the `py_stringmatching` default Magellan uses.
///
/// Both strings are whitespace-tokenized. For every token of `a` the best
/// Jaro-Winkler match among `b`'s tokens is found; the result is the mean of
/// those best scores. The measure is asymmetric by definition (it averages
/// over `a`'s tokens).
///
/// ```
/// let s = em_text::monge_elkan("arts deli", "arts delicatessen");
/// assert!(s > 0.9);
/// ```
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    monge_elkan_with(a, b, jaro_winkler)
}

/// Monge-Elkan with a caller-supplied secondary similarity.
pub fn monge_elkan_with(a: &str, b: &str, secondary: fn(&str, &str) -> f64) -> f64 {
    let ta = Tokenizer::Whitespace.tokenize(a);
    let tb = Tokenizer::Whitespace.tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for x in &ta {
        let best = tb
            .iter()
            .map(|y| secondary(x, y))
            .fold(f64::NEG_INFINITY, f64::max);
        total += best;
    }
    total / ta.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert!((monge_elkan("good times", "good times") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
        assert_eq!(monge_elkan("", "a"), 0.0);
    }

    #[test]
    fn subset_tokens_score_high() {
        // Every token of the first string appears in the second.
        let s = monge_elkan("new york", "new york city");
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetry() {
        let ab = monge_elkan("new york", "new york city");
        let ba = monge_elkan("new york city", "new york");
        assert!(ab >= ba);
        assert!(ba < 1.0);
    }

    #[test]
    fn bounded() {
        for (a, b) in [("abc def", "xyz"), ("q", "qqq www"), ("a b c", "c b a")] {
            let s = monge_elkan(a, b);
            assert!((0.0..=1.0 + 1e-12).contains(&s), "{s}");
        }
    }
}
