//! Special functions and distribution tails needed by feature selection:
//! log-gamma, regularized incomplete beta/gamma, and the survival functions
//! of the F and chi-squared distributions. Implemented from the classic
//! Lanczos / continued-fraction recipes so `SelectRates` can compute real
//! p-values (sklearn parity) without an external stats crate.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
/// Accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes §6.4). Defined for `a, b > 0`, `x ∈ [0, 1]`.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires positive parameters");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence. `<=` matters: at the
    // exact boundary both branches converge, but `<` would recurse forever
    // for symmetric cases like I_0.5(2,2).
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - betainc(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma `P(a, x)`:
/// series for `x < a + 1`, continued fraction otherwise.
pub fn gammainc_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gammainc requires a > 0");
    assert!(x >= 0.0, "gammainc requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Series expansion of P(a, x).
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x) = 1 - P(a, x).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function (upper tail p-value) of the F distribution with
/// `(d1, d2)` degrees of freedom at value `f`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    if !f.is_finite() {
        return if f > 0.0 { 0.0 } else { 1.0 };
    }
    if f <= 0.0 {
        return 1.0;
    }
    // P(F > f) = I_{d2/(d2 + d1 f)}(d2/2, d1/2)
    let x = d2 / (d2 + d1 * f);
    betainc(d2 / 2.0, d1 / 2.0, x).clamp(0.0, 1.0)
}

/// Survival function of the chi-squared distribution with `k` degrees of
/// freedom at value `x`.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gammainc_lower(k / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Mean of a slice (NaN on empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice (NaN on empty input).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// `q`-th quantile (linear interpolation, q in [0, 1]) of unsorted data.
/// NaN on empty input.
///
/// Selection-based (`select_nth_unstable_by`), not a full sort: the two
/// order statistics the interpolation needs cost O(n) expected instead of
/// O(n log n) — this sits on per-fit hot paths (robust scaling, imputation,
/// summary statistics).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("NaN in quantile input");
    let mut v: Vec<f64> = xs.to_vec();
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut v_lo, rest) = v.select_nth_unstable_by(lo, cmp);
    if lo == hi {
        return v_lo;
    }
    // `hi == lo + 1`, so the upper order statistic is the minimum of the
    // partition right of `lo` — no second selection pass needed.
    let v_hi = rest
        .iter()
        .copied()
        .min_by(|a, b| cmp(a, b))
        .expect("hi within bounds");
    let w = pos - lo as f64;
    v_lo * (1.0 - w) + v_hi * w
}

/// Median via [`quantile`].
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: f64, y: f64, tol: f64) {
        assert!((x - y).abs() <= tol, "{x} != {y} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12); // Γ(5) = 4! = 24
        close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-12);
        // scipy.special.gammaln(10.5)
        close(ln_gamma(10.5), 13.940_625_219_403_763, 1e-9);
    }

    #[test]
    fn betainc_symmetry_and_bounds() {
        close(betainc(2.0, 3.0, 0.0), 0.0, 0.0);
        close(betainc(2.0, 3.0, 1.0), 1.0, 0.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = betainc(2.5, 1.5, 0.3);
        close(v, 1.0 - betainc(1.5, 2.5, 0.7), 1e-12);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            close(betainc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn betainc_known_value() {
        // I_0.5(2,2) = 0.5 by symmetry
        close(betainc(2.0, 2.0, 0.5), 0.5, 1e-12);
        // I_x(1,2) = 1-(1-x)^2
        close(betainc(1.0, 2.0, 0.3), 1.0 - 0.49, 1e-12);
    }

    #[test]
    fn gammainc_known_values() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1, 1.0, 3.0, 10.0] {
            close(gammainc_lower(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        close(gammainc_lower(0.5, 0.0), 0.0, 0.0);
    }

    #[test]
    fn chi2_sf_known_values() {
        // chi2 with 1 dof at 3.841 -> p ~ 0.05
        close(chi2_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-9);
        // chi2 with 2 dof: sf(x) = e^{-x/2}
        close(chi2_sf(4.0, 2.0), (-2.0f64).exp(), 1e-12);
    }

    #[test]
    fn f_sf_known_values() {
        // F(1, d2) relates to t^2: F_sf(q, 1, 10) at q=4.9646 ~ 0.05
        close(f_sf(4.964_602_743_730_002, 1.0, 10.0), 0.05, 1e-6);
        // At f = 1 with equal dofs, sf = 0.5 by symmetry.
        close(f_sf(1.0, 7.0, 7.0), 0.5, 1e-12);
        assert_eq!(f_sf(0.0, 3.0, 5.0), 1.0);
        assert_eq!(f_sf(f64::INFINITY, 3.0, 5.0), 0.0);
    }

    #[test]
    fn f_sf_monotone() {
        let mut prev = 1.0;
        for i in 1..50 {
            let p = f_sf(i as f64 * 0.5, 4.0, 20.0);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn summary_stats() {
        close(mean(&[1.0, 2.0, 3.0]), 2.0, 0.0);
        close(variance(&[1.0, 2.0, 3.0]), 2.0 / 3.0, 1e-12);
        close(median(&[3.0, 1.0, 2.0]), 2.0, 0.0);
        close(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), 1.75, 1e-12);
        assert!(mean(&[]).is_nan());
    }
}
