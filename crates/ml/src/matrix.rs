//! Dense row-major `f64` matrix — the feature-vector container every model
//! and preprocessor in this crate consumes. Cells may be NaN (missing) until
//! an imputer runs.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// When `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { data, rows, cols }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// When the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Cell accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Cell mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// New matrix keeping only the given columns, in the given order.
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// New matrix keeping only the given rows, in the given order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Vertically stack `self` on top of `other`.
    ///
    /// # Panics
    /// When the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column mismatch in vstack");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            data,
            rows: self.rows + other.rows,
            cols: self.cols,
        }
    }

    /// Per-column mean ignoring NaN cells; NaN when a column is all-NaN.
    pub fn col_mean_ignore_nan(&self, c: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..self.rows {
            let v = self.get(r, c);
            if !v.is_nan() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// True if any cell is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutably (row `r` occupies
    /// `[r * ncols, (r + 1) * ncols)`) — used for lock-free disjoint row
    /// writes from parallel sections.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.nrows(), m.ncols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn select_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn select_rows() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.col(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn vstack() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn nan_handling() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![3.0, 5.0]]);
        assert!(m.has_nan());
        assert_eq!(m.col_mean_ignore_nan(0), 2.0);
        assert_eq!(m.col_mean_ignore_nan(1), 5.0);
        let empty = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(empty.col_mean_ignore_nan(0).is_nan());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::from_rows(&[]);
        assert_eq!((m.nrows(), m.ncols()), (0, 0));
        assert_eq!(m.rows_iter().count(), 0);
    }
}
