//! `VarianceThreshold`: drop features whose variance is at or below a
//! threshold — the cheapest feature-preprocessing option in the search space.

use crate::featsel::percentile::FittedSelector;
use crate::matrix::Matrix;
use crate::stats::variance;

/// Fit a variance-threshold selector. Keeps features with
/// `variance > threshold`; if none qualify, keeps the single
/// highest-variance feature so the pipeline stays runnable.
pub fn variance_threshold(x: &Matrix, threshold: f64) -> FittedSelector {
    let d = x.ncols();
    let vars: Vec<f64> = (0..d).map(|c| variance(&x.col(c))).collect();
    let mut selected: Vec<usize> = (0..d).filter(|&c| vars[c] > threshold).collect();
    if selected.is_empty() && d > 0 {
        let best = (0..d)
            .max_by(|&a, &b| vars[a].partial_cmp(&vars[b]).unwrap())
            .unwrap();
        selected = vec![best];
    }
    FittedSelector::from_support(selected, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_constant_features() {
        let x = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        let sel = variance_threshold(&x, 0.0);
        assert_eq!(sel.selected(), &[0]);
    }

    #[test]
    fn threshold_filters_low_variance() {
        // var(col0) = 2/3, var(col1) ~ 0.0002/3
        let x = Matrix::from_rows(&[vec![1.0, 0.50], vec![2.0, 0.51], vec![3.0, 0.50]]);
        let sel = variance_threshold(&x, 0.01);
        assert_eq!(sel.selected(), &[0]);
    }

    #[test]
    fn all_constant_keeps_one() {
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let sel = variance_threshold(&x, 0.0);
        assert_eq!(sel.selected().len(), 1);
    }

    #[test]
    fn zero_threshold_keeps_everything_varying() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        let sel = variance_threshold(&x, 0.0);
        assert_eq!(sel.selected(), &[0, 1]);
    }
}
