//! Chi-squared scoring per feature (sklearn's `chi2` score function, the
//! alternative `SelectRates` score in the paper's Figure 5 pipeline dump).

use crate::matrix::Matrix;
use crate::stats::chi2_sf;

/// Per-feature chi-squared result.
#[derive(Debug, Clone, PartialEq)]
pub struct Chi2Result {
    /// Chi-squared statistics per feature.
    pub chi2_values: Vec<f64>,
    /// Upper-tail p-values per feature.
    pub p_values: Vec<f64>,
}

/// sklearn-style chi² between non-negative feature "frequencies" and class
/// labels: observed = per-class feature sums, expected = class frequency ×
/// total feature sum.
///
/// sklearn raises an error on negative features; since EM pipelines may
/// rescale features below zero before selection, negative values are clamped
/// to zero here (documented deviation — it keeps the search space total).
pub fn chi2(x: &Matrix, y: &[usize], n_classes: usize) -> Chi2Result {
    let n = x.nrows();
    assert_eq!(n, y.len(), "X/y length mismatch");
    let d = x.ncols();
    let mut class_counts = vec![0usize; n_classes];
    for &c in y {
        class_counts[c] += 1;
    }
    let class_freq: Vec<f64> = class_counts.iter().map(|&c| c as f64 / n as f64).collect();
    let dof = (n_classes.saturating_sub(1)).max(1) as f64;
    let mut chi2_values = vec![0.0; d];
    let mut p_values = vec![1.0; d];
    for j in 0..d {
        let mut observed = vec![0.0f64; n_classes];
        let mut total = 0.0;
        for (i, &c) in y.iter().enumerate() {
            let v = x.get(i, j).max(0.0);
            observed[c] += v;
            total += v;
        }
        if total <= 0.0 {
            continue;
        }
        let mut stat = 0.0;
        for c in 0..n_classes {
            let expected = class_freq[c] * total;
            if expected > 0.0 {
                let diff = observed[c] - expected;
                stat += diff * diff / expected;
            }
        }
        chi2_values[j] = stat;
        p_values[j] = chi2_sf(stat, dof);
    }
    Chi2Result {
        chi2_values,
        p_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_correlated_feature_scores_high() {
        // Feature 0 "fires" only for class 1; feature 1 fires uniformly.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            rows.push(vec![c as f64, 1.0]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let res = chi2(&x, &y, 2);
        assert!(res.chi2_values[0] > res.chi2_values[1]);
        assert!(res.p_values[0] < 0.01);
        assert!(res.p_values[1] > 0.9);
    }

    #[test]
    fn known_statistic() {
        // 10 samples, 5 per class. Feature sums: class0 -> 0, class1 -> 5.
        // total = 5, expected per class = 2.5, chi2 = 2.5 + 2.5 = 5? No:
        // (0-2.5)^2/2.5 + (5-2.5)^2/2.5 = 2.5 + 2.5 = 5.0
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let c = i % 2;
            rows.push(vec![c as f64]);
            y.push(c);
        }
        let res = chi2(&Matrix::from_rows(&rows), &y, 2);
        assert!((res.chi2_values[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_feature_is_neutral() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]);
        let res = chi2(&x, &[0, 1], 2);
        assert_eq!(res.chi2_values[0], 0.0);
        assert_eq!(res.p_values[0], 1.0);
    }

    #[test]
    fn negative_values_are_clamped_not_fatal() {
        let x = Matrix::from_rows(&[vec![-1.0], vec![2.0]]);
        let res = chi2(&x, &[0, 1], 2);
        assert!(res.chi2_values[0].is_finite());
    }
}
