//! One-way ANOVA F-test per feature (sklearn's `f_classif`) — the scoring
//! function behind `SelectPercentile`, which the paper tunes in Figure 3b.

use crate::matrix::Matrix;
use crate::stats::f_sf;

/// Per-feature ANOVA result.
#[derive(Debug, Clone, PartialEq)]
pub struct FTestResult {
    /// F statistics, one per feature (0 for degenerate features).
    pub f_values: Vec<f64>,
    /// Upper-tail p-values, one per feature (1 for degenerate features).
    pub p_values: Vec<f64>,
}

/// Compute the one-way ANOVA F statistic and p-value of every feature
/// against the class labels.
///
/// # Panics
/// When `x`/`y` lengths disagree or fewer than 2 classes / samples exist.
pub fn f_classif(x: &Matrix, y: &[usize], n_classes: usize) -> FTestResult {
    let n = x.nrows();
    assert_eq!(n, y.len(), "X/y length mismatch");
    assert!(n_classes >= 2, "ANOVA needs at least two classes");
    assert!(n > n_classes, "ANOVA needs more samples than classes");
    let mut class_counts = vec![0usize; n_classes];
    for &c in y {
        class_counts[c] += 1;
    }
    let k_present = class_counts.iter().filter(|&&c| c > 0).count();
    let d = x.ncols();
    let mut f_values = vec![0.0; d];
    let mut p_values = vec![1.0; d];
    if k_present < 2 {
        return FTestResult { f_values, p_values };
    }
    let df_between = (k_present - 1) as f64;
    let df_within = (n - k_present) as f64;
    for j in 0..d {
        let mut class_sum = vec![0.0f64; n_classes];
        let mut total_sum = 0.0;
        let mut total_sq = 0.0;
        for (i, &c) in y.iter().enumerate() {
            let v = x.get(i, j);
            class_sum[c] += v;
            total_sum += v;
            total_sq += v * v;
        }
        let grand_mean = total_sum / n as f64;
        let ss_total = total_sq - n as f64 * grand_mean * grand_mean;
        let mut ss_between = 0.0;
        for c in 0..n_classes {
            if class_counts[c] > 0 {
                let m = class_sum[c] / class_counts[c] as f64;
                ss_between += class_counts[c] as f64 * (m - grand_mean) * (m - grand_mean);
            }
        }
        let ss_within = (ss_total - ss_between).max(0.0);
        if ss_within <= 1e-12 {
            // Perfectly separated (or constant) feature.
            if ss_between > 1e-12 {
                f_values[j] = f64::INFINITY;
                p_values[j] = 0.0;
            }
            continue;
        }
        let f = (ss_between / df_between) / (ss_within / df_within);
        f_values[j] = f;
        p_values[j] = f_sf(f, df_between, df_within);
    }
    FTestResult { f_values, p_values }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feature 0 informative, feature 1 noise, feature 2 constant.
    fn data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        // Deterministic "noise" decoupled from the class.
        for i in 0..40 {
            let c = i % 2;
            let noise = ((i * 7) % 11) as f64 / 11.0;
            rows.push(vec![c as f64 + 0.05 * noise, noise, 3.0]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn informative_feature_scores_highest() {
        let (x, y) = data();
        let res = f_classif(&x, &y, 2);
        assert!(res.f_values[0] > res.f_values[1]);
        assert!(res.p_values[0] < res.p_values[1]);
        assert!(res.p_values[0] < 0.001);
    }

    #[test]
    fn constant_feature_scores_zero() {
        let (x, y) = data();
        let res = f_classif(&x, &y, 2);
        assert_eq!(res.f_values[2], 0.0);
        assert_eq!(res.p_values[2], 1.0);
    }

    #[test]
    fn known_f_value() {
        // Two groups: [1,2,3] vs [4,5,6].
        // Grand mean 3.5; SSB = 3*(2-3.5)^2 + 3*(5-3.5)^2 = 13.5
        // SSW = 2 + 2 = 4; F = (13.5/1)/(4/4) = 13.5
        let x = Matrix::from_rows(&[
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![5.0],
            vec![6.0],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let res = f_classif(&x, &y, 2);
        assert!((res.f_values[0] - 13.5).abs() < 1e-9);
        // p = f_sf(13.5, 1, 4) ~ 0.0213
        assert!((res.p_values[0] - 0.021_311_641_128_756_86).abs() < 1e-6);
    }

    #[test]
    fn perfect_separation_gives_zero_pvalue() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0]]);
        let y = vec![0, 0, 1, 1];
        let res = f_classif(&x, &y, 2);
        assert!(res.f_values[0].is_infinite());
        assert_eq!(res.p_values[0], 0.0);
    }
}
