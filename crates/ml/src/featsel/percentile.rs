//! `SelectPercentile`: keep the top-scoring fraction of features
//! (paper Figure 3b tunes exactly this knob; Figure 11's incumbent pipeline
//! uses `select_percentile_classification` with `percentile ≈ 55.8`).

use crate::featsel::anova::f_classif;
use crate::featsel::chi2::chi2;
use crate::jsonio;
use crate::matrix::Matrix;
use em_rt::Json;

/// Univariate scoring function for feature selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreFunc {
    /// One-way ANOVA F (sklearn `f_classif`).
    FClassif,
    /// Chi-squared (sklearn `chi2`).
    Chi2,
}

impl ScoreFunc {
    /// Compute `(scores, p_values)` per feature.
    pub fn score(&self, x: &Matrix, y: &[usize], n_classes: usize) -> (Vec<f64>, Vec<f64>) {
        match self {
            ScoreFunc::FClassif => {
                let r = f_classif(x, y, n_classes);
                (r.f_values, r.p_values)
            }
            ScoreFunc::Chi2 => {
                let r = chi2(x, y, n_classes);
                (r.chi2_values, r.p_values)
            }
        }
    }
}

/// A fitted feature-subset selector: remembers which column indices survive.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedSelector {
    selected: Vec<usize>,
    n_input_features: usize,
}

impl FittedSelector {
    /// Build from an explicit support set (ascending column indices).
    pub fn from_support(selected: Vec<usize>, n_input_features: usize) -> Self {
        FittedSelector {
            selected,
            n_input_features,
        }
    }

    /// Indices of the surviving features.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Keep only the selected columns.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.ncols(),
            self.n_input_features,
            "column count changed since fit"
        );
        x.select_columns(&self.selected)
    }

    /// Serialize the fitted selector for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "selected",
                Json::arr(self.selected.iter().map(|&i| Json::from(i))),
            ),
            ("n_input_features", Json::from(self.n_input_features)),
        ])
    }

    /// Inverse of [`FittedSelector::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(FittedSelector {
            selected: jsonio::usize_vec(jsonio::field(j, "selected")?)?,
            n_input_features: jsonio::as_usize(jsonio::field(j, "n_input_features")?)?,
        })
    }
}

/// Fit a `SelectPercentile` selector: keep the top `percentile`% of features
/// by score. At least one feature always survives (sklearn would produce an
/// empty matrix; keeping the single best feature keeps pipelines runnable,
/// documented deviation).
pub fn select_percentile(
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    score_func: ScoreFunc,
    percentile: f64,
) -> FittedSelector {
    assert!(
        (0.0..=100.0).contains(&percentile),
        "percentile out of range"
    );
    let (scores, _) = score_func.score(x, y, n_classes);
    let d = x.ncols();
    let keep = (((percentile / 100.0) * d as f64).round() as usize).clamp(1, d);
    select_top_k(&scores, keep, d)
}

/// Fit a fixed-k selector (sklearn `SelectKBest`): keep the `k` best
/// features by score (clamped to `[1, d]`).
pub fn select_k_best(
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    score_func: ScoreFunc,
    k: usize,
) -> FittedSelector {
    let (scores, _) = score_func.score(x, y, n_classes);
    let d = x.ncols();
    select_top_k(&scores, k.clamp(1, d), d)
}

fn select_top_k(scores: &[f64], k: usize, d: usize) -> FittedSelector {
    let mut order: Vec<usize> = (0..d).collect();
    // Sort by descending score; NaN scores sink to the end; ties keep the
    // lower index first for determinism.
    order.sort_by(|&a, &b| {
        let sa = if scores[a].is_nan() {
            f64::NEG_INFINITY
        } else {
            scores[a]
        };
        let sb = if scores[b].is_nan() {
            f64::NEG_INFINITY
        } else {
            scores[b]
        };
        sb.partial_cmp(&sa).unwrap().then(a.cmp(&b))
    });
    let mut selected: Vec<usize> = order.into_iter().take(k).collect();
    selected.sort_unstable();
    FittedSelector::from_support(selected, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 features with decreasing informativeness.
    fn data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let noise = ((i * 13) % 17) as f64 / 17.0;
            rows.push(vec![
                c as f64,         // perfectly informative
                c as f64 + noise, // informative + noise
                noise,            // pure noise
                0.5,              // constant
            ]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn percentile_keeps_best_features() {
        let (x, y) = data();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, 50.0);
        assert_eq!(sel.selected(), &[0, 1]);
        let out = sel.transform(&x);
        assert_eq!(out.ncols(), 2);
    }

    #[test]
    fn percentile_100_keeps_everything() {
        let (x, y) = data();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, 100.0);
        assert_eq!(sel.selected().len(), 4);
    }

    #[test]
    fn percentile_0_keeps_one() {
        let (x, y) = data();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, 0.0);
        assert_eq!(sel.selected(), &[0]);
    }

    #[test]
    fn k_best_exact_count() {
        let (x, y) = data();
        for k in 1..=4 {
            let sel = select_k_best(&x, &y, 2, ScoreFunc::FClassif, k);
            assert_eq!(sel.selected().len(), k);
        }
        // Oversized k clamps.
        let sel = select_k_best(&x, &y, 2, ScoreFunc::FClassif, 99);
        assert_eq!(sel.selected().len(), 4);
    }

    #[test]
    fn chi2_variant_also_ranks_informative_first() {
        let (x, y) = data();
        let sel = select_k_best(&x, &y, 2, ScoreFunc::Chi2, 1);
        assert_eq!(sel.selected(), &[0]);
    }

    #[test]
    fn transform_preserves_column_order() {
        let (x, y) = data();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, 50.0);
        let out = sel.transform(&x);
        // Column 0 of output is original column 0, column 1 is original 1.
        assert_eq!(out.get(1, 0), x.get(1, 0));
        assert_eq!(out.get(1, 1), x.get(1, 1));
    }

    #[test]
    #[should_panic(expected = "column count changed")]
    fn transform_rejects_mismatched_width() {
        let (x, y) = data();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, 50.0);
        let _ = sel.transform(&Matrix::zeros(2, 7));
    }
}
