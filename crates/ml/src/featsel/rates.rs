//! `SelectRates` (sklearn `GenericUnivariateSelect` with p-value based
//! modes): keep features whose test p-values pass an error-rate criterion.
//! The paper's Figure 5 pipeline dump shows
//! `preprocessor:select_rates:mode: 'fdr'` with a chi² score function.

use crate::featsel::percentile::{FittedSelector, ScoreFunc};
use crate::matrix::Matrix;

/// Error-rate control mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMode {
    /// False positive rate: keep features with `p < alpha`.
    Fpr,
    /// False discovery rate (Benjamini-Hochberg).
    Fdr,
    /// Family-wise error (Bonferroni): keep `p < alpha / n_features`.
    Fwe,
}

/// Fit a `SelectRates` selector. At least one feature always survives (the
/// best-scoring one) so downstream models stay runnable — a documented
/// deviation from sklearn, which errors on empty selections.
pub fn select_rates(
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    score_func: ScoreFunc,
    mode: RateMode,
    alpha: f64,
) -> FittedSelector {
    assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
    let (scores, p_values) = score_func.score(x, y, n_classes);
    let d = x.ncols();
    let mut selected: Vec<usize> = match mode {
        RateMode::Fpr => (0..d).filter(|&j| p_values[j] < alpha).collect(),
        RateMode::Fwe => (0..d).filter(|&j| p_values[j] < alpha / d as f64).collect(),
        RateMode::Fdr => benjamini_hochberg(&p_values, alpha),
    };
    if selected.is_empty() {
        // Fall back to the single best-scoring feature.
        let best = (0..d)
            .max_by(|&a, &b| {
                let sa = if scores[a].is_nan() {
                    f64::NEG_INFINITY
                } else {
                    scores[a]
                };
                let sb = if scores[b].is_nan() {
                    f64::NEG_INFINITY
                } else {
                    scores[b]
                };
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap_or(0);
        selected = vec![best];
    }
    selected.sort_unstable();
    FittedSelector::from_support(selected, d)
}

/// Benjamini-Hochberg step-up procedure: returns indices of rejected
/// hypotheses (i.e. features to keep).
fn benjamini_hochberg(p_values: &[f64], alpha: f64) -> Vec<usize> {
    let d = p_values.len();
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| p_values[a].partial_cmp(&p_values[b]).unwrap());
    // Find the largest rank k with p_(k) <= alpha * k / d.
    let mut cutoff_rank = None;
    for (rank0, &j) in order.iter().enumerate() {
        let k = rank0 + 1;
        if p_values[j] <= alpha * k as f64 / d as f64 {
            cutoff_rank = Some(rank0);
        }
    }
    match cutoff_rank {
        Some(r) => order[..=r].to_vec(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One strongly informative feature among noise.
    fn data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let c = i % 2;
            let n1 = ((i * 7) % 13) as f64 / 13.0;
            let n2 = ((i * 11) % 19) as f64 / 19.0;
            rows.push(vec![c as f64 + 0.1 * n1, n1, n2]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fpr_keeps_significant_features() {
        let (x, y) = data();
        let sel = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fpr, 0.05);
        assert!(sel.selected().contains(&0));
        assert!(!sel.selected().contains(&2));
    }

    #[test]
    fn fwe_is_stricter_than_fpr() {
        let (x, y) = data();
        let fpr = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fpr, 0.05);
        let fwe = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fwe, 0.05);
        assert!(fwe.selected().len() <= fpr.selected().len());
    }

    #[test]
    fn fdr_between_fwe_and_fpr() {
        let (x, y) = data();
        let fpr = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fpr, 0.05)
            .selected()
            .len();
        let fdr = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fdr, 0.05)
            .selected()
            .len();
        let fwe = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fwe, 0.05)
            .selected()
            .len();
        assert!(fwe <= fdr && fdr <= fpr, "fwe={fwe} fdr={fdr} fpr={fpr}");
    }

    #[test]
    fn nothing_significant_keeps_best() {
        // Pure noise features with alpha ~ 0: fallback keeps exactly 1.
        let (x, y) = data();
        let sel = select_rates(&x, &y, 2, ScoreFunc::FClassif, RateMode::Fwe, 1e-12);
        assert_eq!(sel.selected().len(), 1);
        assert_eq!(sel.selected(), &[0]);
    }

    #[test]
    fn bh_known_example() {
        // p = [0.01, 0.02, 0.03, 0.5], alpha = 0.05, d = 4
        // thresholds: 0.0125, 0.025, 0.0375, 0.05
        // p(1)=0.01<=0.0125 ok; p(2)=0.02<=0.025 ok; p(3)=0.03<=0.0375 ok; p(4)=0.5>0.05
        let kept = benjamini_hochberg(&[0.01, 0.02, 0.03, 0.5], 0.05);
        let mut kept = kept;
        kept.sort_unstable();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn bh_empty_when_no_rejections() {
        assert!(benjamini_hochberg(&[0.9, 0.8], 0.05).is_empty());
    }
}
