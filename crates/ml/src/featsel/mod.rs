//! Univariate feature selection (the "Feature Preprocessing" column of the
//! paper's Figure 4): ANOVA-F and chi² scores, `SelectPercentile`,
//! `SelectRates` with FPR/FDR/FWE control, and `VarianceThreshold`.

pub mod anova;
pub mod chi2;
pub mod percentile;
pub mod rates;
pub mod variance;

pub use anova::{f_classif, FTestResult};
pub use chi2::{chi2, Chi2Result};
pub use percentile::{select_k_best, select_percentile, FittedSelector, ScoreFunc};
pub use rates::{select_rates, RateMode};
pub use variance::variance_threshold;
