//! Boosted tree ensembles: AdaBoost (SAMME) and binary gradient boosting
//! with logistic loss — two of the "all-model" search-space members the
//! paper's Figure 10 compares against the random-forest-only space.

use crate::jsonio;
use crate::matrix::Matrix;
use crate::tree::{Criterion, DecisionTree, MaxFeatures, Splitter, TreeParams};
use crate::Classifier;
use em_rt::Json;

/// AdaBoost hyperparameters (sklearn `AdaBoostClassifier` with tree stumps).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinks each estimator's contribution.
    pub learning_rate: f64,
    /// Depth of each weak learner (1 = decision stumps).
    pub max_depth: usize,
    /// Split engine for the weak learners (exact scan or binned histograms).
    pub splitter: Splitter,
    /// Bin budget per feature for [`Splitter::Binned`].
    pub n_bins: usize,
    /// RNG seed (weak learners are deterministic; kept for API symmetry).
    pub seed: u64,
}

impl Default for AdaBoostParams {
    fn default() -> Self {
        AdaBoostParams {
            n_estimators: 50,
            learning_rate: 1.0,
            max_depth: 1,
            splitter: Splitter::Best,
            n_bins: 256,
            seed: 0,
        }
    }
}

/// AdaBoost classifier using the SAMME algorithm (multi-class capable).
#[derive(Debug, Clone)]
pub struct AdaBoostClassifier {
    /// Hyperparameters.
    pub params: AdaBoostParams,
    stages: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoostClassifier {
    /// Create an unfitted booster.
    pub fn new(params: AdaBoostParams) -> Self {
        AdaBoostClassifier {
            params,
            stages: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of boosting stages actually kept (early stop on perfect fit).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Classifier for AdaBoostClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        let _span = em_obs::span!("adaboost.fit");
        let n = x.nrows();
        self.n_classes = n_classes;
        self.stages.clear();
        let mut w: Vec<f64> = match sample_weight {
            Some(sw) => sw.to_vec(),
            None => vec![1.0 / n as f64; n],
        };
        normalize(&mut w);
        let k = n_classes as f64;
        // Stages reweight samples but never change the rows, so one binning
        // serves every weak learner.
        let prebinned = (self.params.splitter.effective() == Splitter::Binned)
            .then(|| crate::binned::bin_matrix(x, self.params.n_bins));
        for t in 0..self.params.n_estimators {
            let tree_params = TreeParams {
                criterion: Criterion::Gini,
                max_depth: Some(self.params.max_depth),
                max_features: MaxFeatures::All,
                splitter: self.params.splitter,
                n_bins: self.params.n_bins,
                seed: self.params.seed.wrapping_add(t as u64),
                ..TreeParams::default()
            };
            let tree = DecisionTree::fit_classifier_prebinned(
                x,
                y,
                n_classes,
                Some(&w),
                tree_params,
                prebinned.clone(),
            );
            let pred = tree.predict(x);
            let err: f64 = pred
                .iter()
                .zip(y)
                .zip(&w)
                .filter(|((p, t), _)| p != t)
                .map(|(_, &wi)| wi)
                .sum();
            if err <= 1e-12 {
                // Perfect weak learner: give it a large, finite say and stop.
                self.stages.push((tree, 10.0));
                break;
            }
            if err >= 1.0 - 1.0 / k {
                // Worse than chance: SAMME cannot use it.
                if self.stages.is_empty() {
                    self.stages.push((tree, 1.0));
                }
                break;
            }
            let alpha = self.params.learning_rate * (((1.0 - err) / err).ln() + (k - 1.0).ln());
            for ((p, t), wi) in pred.iter().zip(y).zip(w.iter_mut()) {
                if p != t {
                    *wi *= alpha.exp();
                }
            }
            normalize(&mut w);
            self.stages.push((tree, alpha));
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.stages.is_empty(), "fit before predicting");
        let mut scores = Matrix::zeros(x.nrows(), self.n_classes);
        for (tree, alpha) in &self.stages {
            let pred = tree.predict(x);
            for (r, &c) in pred.iter().enumerate() {
                scores.set(r, c, scores.get(r, c) + alpha);
            }
        }
        // Softmax over the (scaled) vote scores for a probability-like output.
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        let total: f64 = self.stages.iter().map(|(_, a)| a).sum();
        for r in 0..x.nrows() {
            let mut denom = 0.0;
            let row: Vec<f64> = (0..self.n_classes)
                .map(|c| (scores.get(r, c) / total.max(1e-12)).exp())
                .collect();
            for &v in &row {
                denom += v;
            }
            for (c, &v) in row.iter().enumerate() {
                out.set(r, c, v / denom);
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl AdaBoostParams {
    /// Serialize the hyperparameters to the artifact encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n_estimators", Json::from(self.n_estimators)),
            ("learning_rate", jsonio::num(self.learning_rate)),
            ("max_depth", Json::from(self.max_depth)),
            ("splitter", Json::from(self.splitter.as_str())),
            ("n_bins", Json::from(self.n_bins)),
            ("seed", jsonio::u64_str(self.seed)),
        ])
    }

    /// Inverse of [`AdaBoostParams::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(AdaBoostParams {
            n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
            learning_rate: jsonio::as_f64(jsonio::field(j, "learning_rate")?)?,
            max_depth: jsonio::as_usize(jsonio::field(j, "max_depth")?)?,
            // Absent in pre-binned artifacts; default to the exact engine.
            splitter: match j.get("splitter") {
                Some(v) => Splitter::parse(jsonio::as_str(v)?)?,
                None => Splitter::Best,
            },
            n_bins: match j.get("n_bins") {
                Some(v) => jsonio::as_usize(v)?,
                None => 256,
            },
            seed: jsonio::as_u64(jsonio::field(j, "seed")?)?,
        })
    }
}

impl AdaBoostClassifier {
    /// Serialize the fitted booster (stage trees + stage weights) for the
    /// model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("params", self.params.to_json()),
            ("n_classes", Json::from(self.n_classes)),
            (
                "stages",
                Json::arr(self.stages.iter().map(|(tree, alpha)| {
                    Json::obj([("alpha", jsonio::num(*alpha)), ("tree", tree.to_json())])
                })),
            ),
        ])
    }

    /// Inverse of [`AdaBoostClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let stages = jsonio::field(j, "stages")?
            .as_arr()
            .ok_or_else(|| "stages must be an array".to_string())?
            .iter()
            .map(|s| {
                Ok((
                    DecisionTree::from_json(jsonio::field(s, "tree")?)?,
                    jsonio::as_f64(jsonio::field(s, "alpha")?)?,
                ))
            })
            .collect::<Result<_, String>>()?;
        Ok(AdaBoostClassifier {
            params: AdaBoostParams::from_json(jsonio::field(j, "params")?)?,
            stages,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

fn normalize(w: &mut [f64]) {
    let s: f64 = w.iter().sum();
    if s > 0.0 {
        w.iter_mut().for_each(|x| *x /= s);
    }
}

/// Gradient-boosting hyperparameters (binary logistic loss).
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Row subsampling fraction per round (1.0 = none).
    pub subsample: f64,
    /// Split engine for the stage trees (exact scan or binned histograms).
    pub splitter: Splitter,
    /// Bin budget per feature for [`Splitter::Binned`].
    pub n_bins: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        GradientBoostingParams {
            n_estimators: 100,
            learning_rate: 0.1,
            max_depth: 3,
            min_samples_leaf: 1,
            subsample: 1.0,
            splitter: Splitter::Best,
            n_bins: 256,
            seed: 0,
        }
    }
}

/// Binary gradient-boosted trees with logistic loss and per-leaf Newton
/// updates (the classic Friedman GBM).
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    /// Hyperparameters.
    pub params: GradientBoostingParams,
    init_score: f64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl GradientBoostingClassifier {
    /// Create an unfitted booster.
    pub fn new(params: GradientBoostingParams) -> Self {
        GradientBoostingClassifier {
            params,
            init_score: 0.0,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        let mut f = vec![self.init_score; x.nrows()];
        for tree in &self.trees {
            for (r, v) in tree.predict_values(x).into_iter().enumerate() {
                f[r] += self.params.learning_rate * v;
            }
        }
        f
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for GradientBoostingClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        let _span = em_obs::span!("gboost.fit");
        assert_eq!(n_classes, 2, "GradientBoostingClassifier is binary-only");
        self.n_classes = 2;
        self.trees.clear();
        let n = x.nrows();
        let w: Vec<f64> = sample_weight.map_or_else(|| vec![1.0; n], <[f64]>::to_vec);
        let wsum: f64 = w.iter().sum();
        let pos: f64 = y
            .iter()
            .zip(&w)
            .filter(|(&t, _)| t == 1)
            .map(|(_, &wi)| wi)
            .sum();
        let p0 = (pos / wsum).clamp(1e-6, 1.0 - 1e-6);
        self.init_score = (p0 / (1.0 - p0)).ln();
        let mut f = vec![self.init_score; n];
        let mut rng = em_rt::StdRng::seed_from_u64(self.params.seed);
        // Stages refit on new residuals over the same rows (or a subsample
        // of them), so one binning of the base matrix serves every stage.
        let prebinned = (self.params.splitter.effective() == Splitter::Binned)
            .then(|| crate::binned::bin_matrix(x, self.params.n_bins));
        for t in 0..self.params.n_estimators {
            // Negative gradient of logistic loss: residual = y - p.
            let residual: Vec<f64> = f
                .iter()
                .zip(y)
                .map(|(&fi, &ti)| ti as f64 - sigmoid(fi))
                .collect();
            // Optional stochastic row subsampling.
            let rows: Vec<usize> = if self.params.subsample < 1.0 {
                (0..n)
                    .filter(|_| rng.random_range(0.0..1.0) < self.params.subsample)
                    .collect()
            } else {
                (0..n).collect()
            };
            if rows.len() < 2 {
                continue;
            }
            let xs = x.select_rows(&rows);
            let rs: Vec<f64> = rows.iter().map(|&i| residual[i]).collect();
            let ws: Vec<f64> = rows.iter().map(|&i| w[i]).collect();
            let tree_params = TreeParams {
                criterion: Criterion::Mse,
                max_depth: Some(self.params.max_depth),
                min_samples_leaf: self.params.min_samples_leaf,
                max_features: MaxFeatures::All,
                splitter: self.params.splitter,
                n_bins: self.params.n_bins,
                seed: self.params.seed.wrapping_add(t as u64),
                ..TreeParams::default()
            };
            let pb = prebinned.as_ref().map(|b| b.gather(&rows));
            let mut tree =
                DecisionTree::fit_regressor_prebinned(&xs, &rs, Some(&ws), tree_params, pb);
            // Newton step per leaf: gamma = sum(res) / sum(p (1 - p)).
            let mut leaf_num: std::collections::HashMap<usize, f64> =
                std::collections::HashMap::new();
            let mut leaf_den: std::collections::HashMap<usize, f64> =
                std::collections::HashMap::new();
            for (local, &i) in rows.iter().enumerate() {
                let leaf = tree.apply(xs.row(local));
                let p = sigmoid(f[i]);
                *leaf_num.entry(leaf).or_insert(0.0) += w[i] * residual[i];
                *leaf_den.entry(leaf).or_insert(0.0) += w[i] * p * (1.0 - p);
            }
            for (&leaf, &num) in &leaf_num {
                let den = leaf_den[&leaf].max(1e-12);
                tree.set_leaf_value(leaf, num / den);
            }
            // Update scores on the full training set.
            for (r, v) in tree.predict_values(x).into_iter().enumerate() {
                f[r] += self.params.learning_rate * v;
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let f = self.decision_function(x);
        let mut out = Matrix::zeros(x.nrows(), 2);
        for (r, &fi) in f.iter().enumerate() {
            let p = sigmoid(fi);
            out.set(r, 0, 1.0 - p);
            out.set(r, 1, p);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl GradientBoostingParams {
    /// Serialize the hyperparameters to the artifact encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n_estimators", Json::from(self.n_estimators)),
            ("learning_rate", jsonio::num(self.learning_rate)),
            ("max_depth", Json::from(self.max_depth)),
            ("min_samples_leaf", Json::from(self.min_samples_leaf)),
            ("subsample", jsonio::num(self.subsample)),
            ("splitter", Json::from(self.splitter.as_str())),
            ("n_bins", Json::from(self.n_bins)),
            ("seed", jsonio::u64_str(self.seed)),
        ])
    }

    /// Inverse of [`GradientBoostingParams::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(GradientBoostingParams {
            n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
            learning_rate: jsonio::as_f64(jsonio::field(j, "learning_rate")?)?,
            max_depth: jsonio::as_usize(jsonio::field(j, "max_depth")?)?,
            min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
            subsample: jsonio::as_f64(jsonio::field(j, "subsample")?)?,
            // Absent in pre-binned artifacts; default to the exact engine.
            splitter: match j.get("splitter") {
                Some(v) => Splitter::parse(jsonio::as_str(v)?)?,
                None => Splitter::Best,
            },
            n_bins: match j.get("n_bins") {
                Some(v) => jsonio::as_usize(v)?,
                None => 256,
            },
            seed: jsonio::as_u64(jsonio::field(j, "seed")?)?,
        })
    }
}

impl GradientBoostingClassifier {
    /// Serialize the fitted booster (init score + stage trees) for the
    /// model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("params", self.params.to_json()),
            ("init_score", jsonio::num(self.init_score)),
            ("n_classes", Json::from(self.n_classes)),
            (
                "trees",
                Json::arr(self.trees.iter().map(DecisionTree::to_json)),
            ),
        ])
    }

    /// Inverse of [`GradientBoostingClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(GradientBoostingClassifier {
            params: GradientBoostingParams::from_json(jsonio::field(j, "params")?)?,
            init_score: jsonio::as_f64(jsonio::field(j, "init_score")?)?,
            trees: jsonio::field(j, "trees")?
                .as_arr()
                .ok_or_else(|| "trees must be an array".to_string())?
                .iter()
                .map(DecisionTree::from_json)
                .collect::<Result<_, _>>()?,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        // XOR pattern: not linearly separable, easy for boosted trees.
        let mut rng = em_rt::StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random_range(0.0..1.0);
            let b: f64 = rng.random_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(usize::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(pred: &[usize], y: &[usize]) -> f64 {
        pred.iter().zip(y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64
    }

    #[test]
    fn adaboost_learns_xor() {
        let (x, y) = xor_data(300, 1);
        let mut ab = AdaBoostClassifier::new(AdaBoostParams {
            n_estimators: 80,
            max_depth: 2,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, 2, None);
        assert!(accuracy(&ab.predict(&x), &y) > 0.9);
    }

    #[test]
    fn adaboost_early_stops_on_perfect_learner() {
        // Separable data: first stump is perfect.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.9], vec![1.0]]);
        let y = vec![0, 0, 1, 1];
        let mut ab = AdaBoostClassifier::new(AdaBoostParams::default());
        ab.fit(&x, &y, 2, None);
        assert_eq!(ab.n_stages(), 1);
        assert_eq!(ab.predict(&x), y);
    }

    #[test]
    fn adaboost_proba_rows_sum_to_one() {
        let (x, y) = xor_data(100, 2);
        let mut ab = AdaBoostClassifier::new(AdaBoostParams {
            n_estimators: 20,
            max_depth: 2,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, 2, None);
        let p = ab.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gbm_learns_xor() {
        let (x, y) = xor_data(300, 3);
        let mut gb = GradientBoostingClassifier::new(GradientBoostingParams {
            n_estimators: 60,
            learning_rate: 0.2,
            max_depth: 3,
            ..GradientBoostingParams::default()
        });
        gb.fit(&x, &y, 2, None);
        assert!(accuracy(&gb.predict(&x), &y) > 0.95);
    }

    #[test]
    fn gbm_probabilities_valid() {
        let (x, y) = xor_data(150, 4);
        let mut gb = GradientBoostingClassifier::new(GradientBoostingParams {
            n_estimators: 20,
            ..GradientBoostingParams::default()
        });
        gb.fit(&x, &y, 2, None);
        let p = gb.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.get(r, 1) >= 0.0 && p.get(r, 1) <= 1.0);
        }
    }

    #[test]
    fn gbm_subsample_still_learns() {
        let (x, y) = xor_data(300, 5);
        let mut gb = GradientBoostingClassifier::new(GradientBoostingParams {
            n_estimators: 80,
            learning_rate: 0.2,
            subsample: 0.7,
            seed: 1,
            ..GradientBoostingParams::default()
        });
        gb.fit(&x, &y, 2, None);
        assert!(accuracy(&gb.predict(&x), &y) > 0.9);
    }

    #[test]
    fn gbm_deterministic() {
        let (x, y) = xor_data(100, 6);
        let params = GradientBoostingParams {
            n_estimators: 15,
            subsample: 0.8,
            seed: 42,
            ..GradientBoostingParams::default()
        };
        let mut a = GradientBoostingClassifier::new(params.clone());
        let mut b = GradientBoostingClassifier::new(params);
        a.fit(&x, &y, 2, None);
        b.fit(&x, &y, 2, None);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "binary-only")]
    fn gbm_rejects_multiclass() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut gb = GradientBoostingClassifier::new(GradientBoostingParams::default());
        gb.fit(&x, &[0, 1, 2], 3, None);
    }
}
