//! Feature rescaling (auto-sklearn's `rescaling:__choice__`, Figs. 5/11).
//!
//! Provides the three scalers the paper's pipelines use: standardization,
//! min-max, and the quantile-based `RobustScaler` whose `q_min` parameter is
//! tuned in Figure 3c.

use crate::jsonio;
use crate::matrix::Matrix;
use crate::stats::{mean, quantile};
use em_rt::Json;

/// A fitted scaler: per-column `(center, scale)` applied as
/// `(x - center) / scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedScaler {
    kind: ScalerKind,
    centers: Vec<f64>,
    scales: Vec<f64>,
}

/// Which scaler produced a [`FittedScaler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalerKind {
    /// Zero mean, unit variance.
    Standard,
    /// Rescale to `[0, 1]` using the column min/max.
    MinMax,
    /// Center on the median, scale by the `[q_min, q_max]` quantile range —
    /// robust to outliers (sklearn `RobustScaler`). Quantiles in percent.
    Robust {
        /// Lower quantile (percent, e.g. 25.0).
        q_min: f64,
        /// Upper quantile (percent, e.g. 75.0).
        q_max: f64,
    },
    /// Identity (the "none" rescaling choice).
    None,
}

impl FittedScaler {
    /// Learn scaling statistics from `x`. Degenerate columns (zero spread)
    /// get scale 1 so the transform stays finite.
    pub fn fit(kind: ScalerKind, x: &Matrix) -> Self {
        let d = x.ncols();
        let mut centers = vec![0.0; d];
        let mut scales = vec![1.0; d];
        match kind {
            ScalerKind::None => {}
            ScalerKind::Standard => {
                for c in 0..d {
                    let col = x.col(c);
                    centers[c] = mean(&col);
                    let sd = crate::stats::variance(&col).sqrt();
                    scales[c] = if sd > 1e-12 { sd } else { 1.0 };
                }
            }
            ScalerKind::MinMax => {
                for c in 0..d {
                    let col = x.col(c);
                    let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    centers[c] = lo;
                    let range = hi - lo;
                    scales[c] = if range > 1e-12 { range } else { 1.0 };
                }
            }
            ScalerKind::Robust { q_min, q_max } => {
                assert!(q_min < q_max, "robust scaler needs q_min < q_max");
                for c in 0..d {
                    let col = x.col(c);
                    centers[c] = quantile(&col, 0.5);
                    let lo = quantile(&col, q_min / 100.0);
                    let hi = quantile(&col, q_max / 100.0);
                    let iqr = hi - lo;
                    scales[c] = if iqr > 1e-12 { iqr } else { 1.0 };
                }
            }
        }
        FittedScaler {
            kind,
            centers,
            scales,
        }
    }

    /// Apply `(x - center) / scale` per column.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.centers.len(), "column count changed");
        if matches!(self.kind, ScalerKind::None) {
            return x.clone();
        }
        let mut out = x.clone();
        for r in 0..out.nrows() {
            for c in 0..out.ncols() {
                out.set(r, c, (out.get(r, c) - self.centers[c]) / self.scales[c]);
            }
        }
        out
    }

    /// Invert the transform (used by property tests).
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        if matches!(self.kind, ScalerKind::None) {
            return x.clone();
        }
        let mut out = x.clone();
        for r in 0..out.nrows() {
            for c in 0..out.ncols() {
                out.set(r, c, out.get(r, c) * self.scales[c] + self.centers[c]);
            }
        }
        out
    }

    /// Fit and transform in one step.
    pub fn fit_transform(kind: ScalerKind, x: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(kind, x);
        let out = s.transform(x);
        (s, out)
    }

    /// The scaler variant.
    pub fn kind(&self) -> ScalerKind {
        self.kind
    }

    /// Serialize the fitted scaler for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", self.kind.to_json()),
            ("centers", jsonio::nums(&self.centers)),
            ("scales", jsonio::nums(&self.scales)),
        ])
    }

    /// Inverse of [`FittedScaler::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(FittedScaler {
            kind: ScalerKind::from_json(jsonio::field(j, "kind")?)?,
            centers: jsonio::f64_vec(jsonio::field(j, "centers")?)?,
            scales: jsonio::f64_vec(jsonio::field(j, "scales")?)?,
        })
    }
}

impl ScalerKind {
    /// Serialize to the artifact encoding (a tag string, or `{robust}` for
    /// the parameterized variant).
    pub fn to_json(&self) -> Json {
        match *self {
            ScalerKind::Standard => Json::from("standard"),
            ScalerKind::MinMax => Json::from("minmax"),
            ScalerKind::None => Json::from("none"),
            ScalerKind::Robust { q_min, q_max } => Json::obj([(
                "robust",
                Json::obj([("q_min", jsonio::num(q_min)), ("q_max", jsonio::num(q_max))]),
            )]),
        }
    }

    /// Inverse of [`ScalerKind::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if let Some(tag) = j.as_str() {
            return match tag {
                "standard" => Ok(ScalerKind::Standard),
                "minmax" => Ok(ScalerKind::MinMax),
                "none" => Ok(ScalerKind::None),
                other => Err(format!("unknown scaler kind {other:?}")),
            };
        }
        if let Some(r) = j.get("robust") {
            return Ok(ScalerKind::Robust {
                q_min: jsonio::as_f64(jsonio::field(r, "q_min")?)?,
                q_max: jsonio::as_f64(jsonio::field(r, "q_max")?)?,
            });
        }
        Err("unknown scaler kind encoding".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
            vec![5.0, 1000.0], // outlier in column 1
        ])
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let (_, out) = FittedScaler::fit_transform(ScalerKind::Standard, &sample());
        for c in 0..2 {
            let col = out.col(c);
            assert!(mean(&col).abs() < 1e-9);
            assert!((crate::stats::variance(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_scaler_unit_range() {
        let (_, out) = FittedScaler::fit_transform(ScalerKind::MinMax, &sample());
        for c in 0..2 {
            let col = out.col(c);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!((lo - 0.0).abs() < 1e-12);
            assert!((hi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn robust_scaler_centers_on_median() {
        let (s, out) = FittedScaler::fit_transform(
            ScalerKind::Robust {
                q_min: 25.0,
                q_max: 75.0,
            },
            &sample(),
        );
        // Median of column 0 is 3.0 -> its transformed value is 0.
        assert!(out.get(2, 0).abs() < 1e-12);
        // The outlier influences min-max hugely but robust scale mildly:
        // transform of 40 (the 4th value of col 1) stays small.
        assert!(out.get(3, 1).abs() < 2.0);
        assert_eq!(
            s.kind(),
            ScalerKind::Robust {
                q_min: 25.0,
                q_max: 75.0
            }
        );
    }

    #[test]
    fn different_q_min_changes_output() {
        let a = FittedScaler::fit_transform(
            ScalerKind::Robust {
                q_min: 5.0,
                q_max: 95.0,
            },
            &sample(),
        )
        .1;
        let b = FittedScaler::fit_transform(
            ScalerKind::Robust {
                q_min: 45.0,
                q_max: 95.0,
            },
            &sample(),
        )
        .1;
        assert_ne!(a, b);
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]);
        for kind in [
            ScalerKind::Standard,
            ScalerKind::MinMax,
            ScalerKind::Robust {
                q_min: 25.0,
                q_max: 75.0,
            },
        ] {
            let (_, out) = FittedScaler::fit_transform(kind, &x);
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn none_is_identity() {
        let x = sample();
        let (_, out) = FittedScaler::fit_transform(ScalerKind::None, &x);
        assert_eq!(out, x);
    }

    #[test]
    fn round_trip() {
        let x = sample();
        for kind in [
            ScalerKind::Standard,
            ScalerKind::MinMax,
            ScalerKind::Robust {
                q_min: 10.0,
                q_max: 90.0,
            },
        ] {
            let (s, out) = FittedScaler::fit_transform(kind, &x);
            let back = s.inverse_transform(&out);
            for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transform_applies_train_statistics_to_test() {
        let (s, _) = FittedScaler::fit_transform(ScalerKind::Standard, &sample());
        let test = Matrix::from_rows(&[vec![3.0, 220.0]]);
        let out = s.transform(&test);
        // Column 0 mean is 3.0 -> transformed to 0.
        assert!(out.get(0, 0).abs() < 1e-9);
    }
}
