//! Missing-value imputation (auto-sklearn's `imputation:strategy`, Fig. 5).
//!
//! EM feature vectors contain NaN whenever either record's attribute value
//! was missing, so every pipeline starts with an imputer.

use crate::jsonio;
use crate::matrix::Matrix;
use em_rt::Json;

/// Imputation strategy, mirroring sklearn's `SimpleImputer`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean of observed values.
    Mean,
    /// Column median of observed values.
    Median,
    /// Most frequent observed value (mode; ties broken by smaller value).
    MostFrequent,
    /// A constant fill value.
    Constant(f64),
}

/// Fitted imputer holding one fill value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleImputer {
    /// Strategy used at fit time.
    pub strategy: ImputeStrategy,
    statistics: Vec<f64>,
}

impl SimpleImputer {
    /// Learn per-column fill values from `x`. Columns that are entirely NaN
    /// fall back to 0.0 (sklearn drops them; keeping the column with a
    /// neutral fill keeps feature indices stable for the pipeline).
    pub fn fit(strategy: ImputeStrategy, x: &Matrix) -> Self {
        let statistics = (0..x.ncols())
            .map(|c| {
                let observed: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
                if observed.is_empty() {
                    return match strategy {
                        ImputeStrategy::Constant(v) => v,
                        _ => 0.0,
                    };
                }
                match strategy {
                    ImputeStrategy::Mean => crate::stats::mean(&observed),
                    ImputeStrategy::Median => crate::stats::median(&observed),
                    ImputeStrategy::MostFrequent => mode(&observed),
                    ImputeStrategy::Constant(v) => v,
                }
            })
            .collect();
        SimpleImputer {
            strategy,
            statistics,
        }
    }

    /// Replace NaN cells with the learned fill values.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.statistics.len(), "column count changed");
        let mut out = x.clone();
        for r in 0..out.nrows() {
            for c in 0..out.ncols() {
                if out.get(r, c).is_nan() {
                    out.set(r, c, self.statistics[c]);
                }
            }
        }
        out
    }

    /// Fit and transform in one step.
    pub fn fit_transform(strategy: ImputeStrategy, x: &Matrix) -> (Self, Matrix) {
        let imp = Self::fit(strategy, x);
        let out = imp.transform(x);
        (imp, out)
    }

    /// The learned per-column fill values.
    pub fn statistics(&self) -> &[f64] {
        &self.statistics
    }

    /// Serialize the fitted imputer for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.to_json()),
            ("statistics", jsonio::nums(&self.statistics)),
        ])
    }

    /// Inverse of [`SimpleImputer::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(SimpleImputer {
            strategy: ImputeStrategy::from_json(jsonio::field(j, "strategy")?)?,
            statistics: jsonio::f64_vec(jsonio::field(j, "statistics")?)?,
        })
    }
}

impl ImputeStrategy {
    /// Serialize to the artifact encoding (a tag string, or `{constant}`
    /// for the parameterized variant).
    pub fn to_json(&self) -> Json {
        match *self {
            ImputeStrategy::Mean => Json::from("mean"),
            ImputeStrategy::Median => Json::from("median"),
            ImputeStrategy::MostFrequent => Json::from("most_frequent"),
            ImputeStrategy::Constant(v) => Json::obj([("constant", jsonio::num(v))]),
        }
    }

    /// Inverse of [`ImputeStrategy::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if let Some(tag) = j.as_str() {
            return match tag {
                "mean" => Ok(ImputeStrategy::Mean),
                "median" => Ok(ImputeStrategy::Median),
                "most_frequent" => Ok(ImputeStrategy::MostFrequent),
                other => Err(format!("unknown impute strategy {other:?}")),
            };
        }
        if let Some(v) = j.get("constant") {
            return Ok(ImputeStrategy::Constant(jsonio::as_f64(v)?));
        }
        Err("unknown impute strategy encoding".to_string())
    }
}

/// Mode with ties broken toward the smaller value. Values are matched
/// exactly, which suits EM features (many exact 0.0 / 1.0 entries).
fn mode(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded by caller"));
    let mut best_val = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best_val = sorted[i];
        }
        i = j;
    }
    best_val
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_nans() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, f64::NAN, 0.0],
            vec![3.0, 4.0, 0.0],
            vec![f64::NAN, 6.0, 1.0],
            vec![5.0, 2.0, 0.0],
        ])
    }

    #[test]
    fn mean_imputation() {
        let (imp, out) = SimpleImputer::fit_transform(ImputeStrategy::Mean, &with_nans());
        assert_eq!(imp.statistics()[0], 3.0);
        assert_eq!(out.get(2, 0), 3.0);
        assert_eq!(out.get(0, 1), 4.0);
        assert!(!out.has_nan());
    }

    #[test]
    fn median_imputation() {
        let (imp, _) = SimpleImputer::fit_transform(ImputeStrategy::Median, &with_nans());
        assert_eq!(imp.statistics()[0], 3.0);
        assert_eq!(imp.statistics()[1], 4.0);
    }

    #[test]
    fn most_frequent_imputation() {
        let (imp, _) = SimpleImputer::fit_transform(ImputeStrategy::MostFrequent, &with_nans());
        assert_eq!(imp.statistics()[2], 0.0);
    }

    #[test]
    fn constant_imputation() {
        let (_, out) = SimpleImputer::fit_transform(ImputeStrategy::Constant(-1.0), &with_nans());
        assert_eq!(out.get(2, 0), -1.0);
    }

    #[test]
    fn all_nan_column_fills_zero() {
        let x = Matrix::from_rows(&[vec![f64::NAN], vec![f64::NAN]]);
        let (_, out) = SimpleImputer::fit_transform(ImputeStrategy::Mean, &x);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn non_nan_cells_untouched() {
        let x = with_nans();
        let (_, out) = SimpleImputer::fit_transform(ImputeStrategy::Mean, &x);
        assert_eq!(out.get(1, 1), 4.0);
        assert_eq!(out.get(3, 0), 5.0);
    }

    #[test]
    fn transform_on_new_data_uses_train_stats() {
        let (imp, _) = SimpleImputer::fit_transform(ImputeStrategy::Mean, &with_nans());
        let test = Matrix::from_rows(&[vec![f64::NAN, f64::NAN, f64::NAN]]);
        let out = imp.transform(&test);
        assert_eq!(out.row(0), &[3.0, 4.0, 0.25]);
    }

    #[test]
    fn mode_tie_breaks_small() {
        assert_eq!(mode(&[2.0, 1.0, 2.0, 1.0]), 1.0);
        assert_eq!(mode(&[5.0]), 5.0);
    }
}
