//! Data preprocessing: imputation, scaling, and class balancing
//! (the "Data Preprocessing" column of the paper's Figure 4).

pub mod balance;
pub mod impute;
pub mod scale;

pub use balance::{class_weights, sample_weights, BalancingStrategy};
pub use impute::{ImputeStrategy, SimpleImputer};
pub use scale::{FittedScaler, ScalerKind};
