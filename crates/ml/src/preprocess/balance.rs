//! Class balancing (auto-sklearn's `balancing:strategy`, Figs. 5/11).
//!
//! EM training data is heavily imbalanced (few matches among many
//! non-matches), so the `weighting` strategy — sample weights inversely
//! proportional to class frequency — is a standard pipeline component.

/// Balancing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancingStrategy {
    /// No balancing: uniform sample weights.
    None,
    /// sklearn's `class_weight="balanced"`:
    /// `w_c = n_samples / (n_classes * count_c)`.
    Weighting,
}

/// Per-class weights under the given strategy. Classes absent from `y`
/// receive weight 0 (they can never be sampled anyway).
pub fn class_weights(strategy: BalancingStrategy, y: &[usize], n_classes: usize) -> Vec<f64> {
    match strategy {
        BalancingStrategy::None => vec![1.0; n_classes],
        BalancingStrategy::Weighting => {
            let mut counts = vec![0usize; n_classes];
            for &c in y {
                counts[c] += 1;
            }
            let n = y.len() as f64;
            counts
                .iter()
                .map(|&c| {
                    if c == 0 {
                        0.0
                    } else {
                        n / (n_classes as f64 * c as f64)
                    }
                })
                .collect()
        }
    }
}

/// Expand per-class weights into per-sample weights.
pub fn sample_weights(strategy: BalancingStrategy, y: &[usize], n_classes: usize) -> Vec<f64> {
    let cw = class_weights(strategy, y, n_classes);
    y.iter().map(|&c| cw[c]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_uniform() {
        let y = vec![0, 0, 0, 1];
        assert_eq!(sample_weights(BalancingStrategy::None, &y, 2), vec![1.0; 4]);
    }

    #[test]
    fn weighting_balances_total_mass() {
        // 3 negatives, 1 positive.
        let y = vec![0, 0, 0, 1];
        let w = sample_weights(BalancingStrategy::Weighting, &y, 2);
        // w0 = 4 / (2*3) = 2/3; w1 = 4 / (2*1) = 2.
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w[3] - 2.0).abs() < 1e-12);
        // Total weight per class is equal.
        let mass0: f64 = w[..3].iter().sum();
        let mass1 = w[3];
        assert!((mass0 - mass1).abs() < 1e-12);
    }

    #[test]
    fn balanced_data_gets_uniform_weights() {
        let y = vec![0, 1, 0, 1];
        let w = sample_weights(BalancingStrategy::Weighting, &y, 2);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn missing_class_weight_is_zero() {
        let y = vec![0, 0];
        let cw = class_weights(BalancingStrategy::Weighting, &y, 2);
        assert_eq!(cw[1], 0.0);
    }
}
