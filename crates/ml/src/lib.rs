//! # em-ml — from-scratch machine-learning substrate
//!
//! Replaces scikit-learn for the AutoML-EM reproduction: dense matrices,
//! CART trees, random forests / extra-trees (with the tree-agreement
//! confidence the paper's Figure 7 relies on), AdaBoost, gradient boosting,
//! logistic regression, linear SVM, k-NN, Gaussian naive Bayes; imputation,
//! scaling (standard / min-max / robust), class balancing; univariate
//! feature selection with real ANOVA-F and chi² p-values, variance
//! thresholding, PCA, feature agglomeration; F1-family metrics and seeded
//! stratified splits.
//!
//! ```
//! use em_ml::{Matrix, Classifier, RandomForestClassifier, ForestParams};
//!
//! let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.9], vec![1.0]]);
//! let y = vec![0, 0, 1, 1];
//! let mut rf = RandomForestClassifier::new(ForestParams { n_estimators: 10, ..Default::default() });
//! rf.fit(&x, &y, 2, None);
//! assert_eq!(rf.predict(&x), y);
//! ```

pub mod bayes;
mod binned;
pub mod boost;
pub mod decomp;
pub mod featsel;
pub mod forest;
pub mod jsonio;
pub mod knn;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod preprocess;
pub mod split;
pub mod stats;
pub mod tree;

pub use bayes::{GaussianNb, GaussianNbParams};
pub use boost::{
    AdaBoostClassifier, AdaBoostParams, GradientBoostingClassifier, GradientBoostingParams,
};
pub use forest::{
    ExtraTreesClassifier, ForestParams, RandomForestClassifier, RandomForestRegressor,
};
pub use knn::{KNeighborsClassifier, KnnParams, KnnWeights};
pub use linear::{LinearSvm, LinearSvmParams, LogisticRegression, LogisticRegressionParams};
pub use matrix::Matrix;
pub use metrics::{
    accuracy_score, average_precision, f1_score, precision_recall_curve, precision_score,
    recall_score, Confusion, PrPoint,
};
pub use split::{
    paper_split, shuffled_indices, stratified_k_fold, stratified_train_test_indices,
    train_test_indices, ThreeWaySplit,
};
pub use tree::{Criterion, DecisionTree, MaxFeatures, Splitter, TreeParams};

/// Common interface of every classifier in the crate. Implementations are
/// created unfitted with their hyperparameter struct and trained in place.
pub trait Classifier: Send + Sync {
    /// Train on feature matrix `x` and labels `y` (class indices in
    /// `0..n_classes`), with optional per-sample weights.
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>);

    /// Class-probability matrix (`n × n_classes`).
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Hard class predictions (argmax of probabilities).
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.nrows())
            .map(|r| {
                let row = p.row(r);
                let mut best = 0;
                for (c, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Number of classes seen at fit time (0 before fitting).
    fn n_classes(&self) -> usize;

    /// Mean-decrease-in-impurity feature importances over the *model's
    /// input* features, normalized to sum to 1. `None` for models without a
    /// native importance notion (use permutation importance instead).
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }

    /// Serialize the fitted model (hyperparameters + learned weights) to a
    /// JSON value for the `em-serve` model artifact. The value is accepted
    /// by the concrete type's `from_json`; which concrete type to load is
    /// recorded separately (the pipeline's classifier choice).
    fn save_json(&self) -> em_rt::Json;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// Every classifier should handle the same tiny separable problem.
    fn models() -> Vec<Box<dyn Classifier>> {
        vec![
            Box::new(RandomForestClassifier::new(ForestParams {
                n_estimators: 15,
                ..Default::default()
            })),
            Box::new(ExtraTreesClassifier::new(ForestParams {
                n_estimators: 15,
                ..Default::default()
            })),
            Box::new(AdaBoostClassifier::new(AdaBoostParams::default())),
            Box::new(GradientBoostingClassifier::new(GradientBoostingParams {
                n_estimators: 25,
                ..Default::default()
            })),
            Box::new(LogisticRegression::new(LogisticRegressionParams::default())),
            Box::new(LinearSvm::new(LinearSvmParams::default())),
            Box::new(KNeighborsClassifier::new(KnnParams::default())),
            Box::new(GaussianNb::new(GaussianNbParams::default())),
        ]
    }

    #[test]
    fn all_models_solve_separable_problem() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            rows.push(vec![i as f64 * 0.01, 0.3]);
            y.push(0);
            rows.push(vec![1.0 + i as f64 * 0.01, 0.7]);
            y.push(1);
        }
        let x = Matrix::from_rows(&rows);
        for mut m in models() {
            m.fit(&x, &y, 2, None);
            let acc = m.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count();
            assert!(
                acc as f64 / y.len() as f64 > 0.9,
                "model failed separable problem: {acc}/{}",
                y.len()
            );
            assert_eq!(m.n_classes(), 2);
        }
    }
}
