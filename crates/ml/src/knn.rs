//! k-nearest-neighbors classifier (brute force, Euclidean distance) — one of
//! the "all-model" search-space members (paper Fig. 4's `KNeighborsClassifier`).

use crate::jsonio;
use crate::matrix::Matrix;
use crate::Classifier;
use em_rt::Json;

/// Neighbor weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    /// Each neighbor votes equally.
    Uniform,
    /// Votes weighted by inverse distance (exact matches dominate).
    Distance,
}

/// k-NN hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnParams {
    /// Number of neighbors consulted.
    pub k: usize,
    /// Vote weighting.
    pub weights: KnnWeights,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 5,
            weights: KnnWeights::Uniform,
        }
    }
}

/// Brute-force k-NN classifier. Stores the training data; prediction is
/// `O(n_train * n_query * d)`, fine at benchmark scale.
#[derive(Debug, Clone)]
pub struct KNeighborsClassifier {
    /// Hyperparameters.
    pub params: KnnParams,
    x_train: Option<Matrix>,
    y_train: Vec<usize>,
    sample_weight: Vec<f64>,
    n_classes: usize,
}

impl KNeighborsClassifier {
    /// Create an unfitted model.
    pub fn new(params: KnnParams) -> Self {
        KNeighborsClassifier {
            params,
            x_train: None,
            y_train: Vec::new(),
            sample_weight: Vec::new(),
            n_classes: 0,
        }
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KNeighborsClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        assert_eq!(x.nrows(), y.len(), "X/y length mismatch");
        self.x_train = Some(x.clone());
        self.y_train = y.to_vec();
        self.sample_weight = sample_weight.map_or_else(|| vec![1.0; y.len()], <[f64]>::to_vec);
        self.n_classes = n_classes;
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let train = self.x_train.as_ref().expect("fit before predicting");
        let k = self.params.k.clamp(1, train.nrows());
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            // Collect (distance, train index), partial-select the k nearest.
            let mut dists: Vec<(f64, usize)> = train
                .rows_iter()
                .enumerate()
                .map(|(i, t)| (squared_distance(row, t), i))
                .collect();
            dists
                .select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
            let mut votes = vec![0.0f64; self.n_classes];
            for &(d2, i) in &dists[..k] {
                let w = match self.params.weights {
                    KnnWeights::Uniform => self.sample_weight[i],
                    KnnWeights::Distance => self.sample_weight[i] / (d2.sqrt() + 1e-12),
                };
                votes[self.y_train[i]] += w;
            }
            let total: f64 = votes.iter().sum();
            for (c, v) in votes.iter().enumerate() {
                out.set(
                    r,
                    c,
                    if total > 0.0 {
                        v / total
                    } else {
                        1.0 / self.n_classes as f64
                    },
                );
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl KNeighborsClassifier {
    /// Serialize the fitted model for the model artifact. k-NN is a lazy
    /// learner, so the artifact carries the full training matrix.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "params",
                Json::obj([
                    ("k", Json::from(self.params.k)),
                    (
                        "weights",
                        Json::from(match self.params.weights {
                            KnnWeights::Uniform => "uniform",
                            KnnWeights::Distance => "distance",
                        }),
                    ),
                ]),
            ),
            (
                "x_train",
                match &self.x_train {
                    Some(m) => jsonio::matrix_to_json(m),
                    None => Json::Null,
                },
            ),
            (
                "y_train",
                Json::arr(self.y_train.iter().map(|&c| Json::from(c))),
            ),
            ("sample_weight", jsonio::nums(&self.sample_weight)),
            ("n_classes", Json::from(self.n_classes)),
        ])
    }

    /// Inverse of [`KNeighborsClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let p = jsonio::field(j, "params")?;
        let x_train = match jsonio::field(j, "x_train")? {
            Json::Null => None,
            m => Some(jsonio::matrix_from_json(m)?),
        };
        Ok(KNeighborsClassifier {
            params: KnnParams {
                k: jsonio::as_usize(jsonio::field(p, "k")?)?,
                weights: match jsonio::as_str(jsonio::field(p, "weights")?)? {
                    "uniform" => KnnWeights::Uniform,
                    "distance" => KnnWeights::Distance,
                    other => return Err(format!("unknown knn weights {other:?}")),
                },
            },
            x_train,
            y_train: jsonio::usize_vec(jsonio::field(j, "y_train")?)?,
            sample_weight: jsonio::f64_vec(jsonio::field(j, "sample_weight")?)?,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Matrix, Vec<usize>) {
        // Left cluster class 0, right cluster class 1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            y.push(0);
            rows.push(vec![1.0 + 0.01 * i as f64, 0.0]);
            y.push(1);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = grid();
        let mut knn = KNeighborsClassifier::new(KnnParams::default());
        knn.fit(&x, &y, 2, None);
        let q = Matrix::from_rows(&[vec![0.02, 0.0], vec![1.05, 0.0]]);
        assert_eq!(knn.predict(&q), vec![0, 1]);
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (x, y) = grid();
        let mut knn = KNeighborsClassifier::new(KnnParams {
            k: 1,
            ..KnnParams::default()
        });
        knn.fit(&x, &y, 2, None);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn distance_weighting_prefers_closer_class() {
        // Query nearer the single class-1 point than the two class-0 points.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![1.0]]);
        let y = vec![0, 0, 1];
        let mut knn = KNeighborsClassifier::new(KnnParams {
            k: 3,
            weights: KnnWeights::Distance,
        });
        knn.fit(&x, &y, 2, None);
        let q = Matrix::from_rows(&[vec![0.99]]);
        assert_eq!(knn.predict(&q), vec![1]);
        // Uniform weighting with k=3 would say class 0 here.
        let mut uni = KNeighborsClassifier::new(KnnParams {
            k: 3,
            weights: KnnWeights::Uniform,
        });
        uni.fit(&x, &y, 2, None);
        assert_eq!(uni.predict(&q), vec![0]);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut knn = KNeighborsClassifier::new(KnnParams {
            k: 50,
            ..KnnParams::default()
        });
        knn.fit(&x, &[0, 1], 2, None);
        let p = knn.predict_proba(&Matrix::from_rows(&[vec![0.5]]));
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = grid();
        let mut knn = KNeighborsClassifier::new(KnnParams::default());
        knn.fit(&x, &y, 2, None);
        let p = knn.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
