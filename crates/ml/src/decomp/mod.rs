//! Feature decomposition / construction: PCA and feature agglomeration
//! (the remaining "Feature Preprocessing" options of the paper's Figure 4).

pub mod agglom;
pub mod pca;

pub use agglom::FeatureAgglomeration;
pub use pca::Pca;
