//! `FeatureAgglomeration`: average-linkage hierarchical clustering of
//! *features* (by Euclidean distance between columns), pooling each cluster
//! to its mean — a feature-preprocessing option of the search space
//! (paper Fig. 4).

use crate::jsonio;
use crate::matrix::Matrix;
use em_rt::Json;

/// A fitted feature-agglomeration transform.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureAgglomeration {
    /// Cluster id per input feature.
    labels: Vec<usize>,
    /// Number of clusters (= output dimensionality).
    n_clusters: usize,
}

impl FeatureAgglomeration {
    /// Cluster the features of `x` into `n_clusters` groups with
    /// average-linkage agglomeration on column Euclidean distance.
    pub fn fit(x: &Matrix, n_clusters: usize) -> Self {
        let d = x.ncols();
        let k = n_clusters.clamp(1, d.max(1));
        // Pairwise squared distances between feature columns.
        let cols: Vec<Vec<f64>> = (0..d).map(|c| x.col(c)).collect();
        // active clusters: members + centroid-free average linkage via
        // cluster-pair average of pointwise distances. For simplicity and
        // determinism we use the squared Euclidean distance between cluster
        // mean columns (centroid linkage), updated on merge.
        let mut members: Vec<Vec<usize>> = (0..d).map(|c| vec![c]).collect();
        let mut centroids: Vec<Vec<f64>> = cols.clone();
        let mut active: Vec<bool> = vec![true; d];
        let mut n_active = d;
        while n_active > k {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX);
            let mut best_d = f64::INFINITY;
            for i in 0..d {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..d {
                    if !active[j] {
                        continue;
                    }
                    let dist = sq_dist(&centroids[i], &centroids[j]);
                    if dist < best_d {
                        best_d = dist;
                        best = (i, j);
                    }
                }
            }
            let (i, j) = best;
            // Merge j into i: weighted centroid update.
            let wi = members[i].len() as f64;
            let wj = members[j].len() as f64;
            let merged: Vec<f64> = centroids[i]
                .iter()
                .zip(&centroids[j])
                .map(|(a, b)| (a * wi + b * wj) / (wi + wj))
                .collect();
            centroids[i] = merged;
            let moved = std::mem::take(&mut members[j]);
            members[i].extend(moved);
            active[j] = false;
            n_active -= 1;
        }
        // Assign compact cluster ids in order of first member.
        let mut labels = vec![0usize; d];
        let mut next = 0usize;
        for i in 0..d {
            if active[i] {
                for &m in &members[i] {
                    labels[m] = next;
                }
                next += 1;
            }
        }
        FeatureAgglomeration {
            labels,
            n_clusters: next,
        }
    }

    /// Pool each feature cluster to its mean.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.labels.len(), "column count changed");
        let mut out = Matrix::zeros(x.nrows(), self.n_clusters);
        let mut counts = vec![0usize; self.n_clusters];
        for &l in &self.labels {
            counts[l] += 1;
        }
        for (r, row) in x.rows_iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let l = self.labels[j];
                out.set(r, l, out.get(r, l) + v);
            }
            for (l, &c) in counts.iter().enumerate() {
                out.set(r, l, out.get(r, l) / c as f64);
            }
        }
        out
    }

    /// Cluster id per input feature.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Output dimensionality.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Serialize the fitted transform for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "labels",
                Json::arr(self.labels.iter().map(|&l| Json::from(l))),
            ),
            ("n_clusters", Json::from(self.n_clusters)),
        ])
    }

    /// Inverse of [`FeatureAgglomeration::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(FeatureAgglomeration {
            labels: jsonio::usize_vec(jsonio::field(j, "labels")?)?,
            n_clusters: jsonio::as_usize(jsonio::field(j, "n_clusters")?)?,
        })
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Features 0 & 1 nearly identical, feature 2 very different.
    fn data() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64;
                vec![t, t + 0.01, 100.0 - t]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn merges_correlated_features_first() {
        let fa = FeatureAgglomeration::fit(&data(), 2);
        assert_eq!(fa.labels()[0], fa.labels()[1]);
        assert_ne!(fa.labels()[0], fa.labels()[2]);
    }

    #[test]
    fn output_width_matches_clusters() {
        let x = data();
        for k in 1..=3 {
            let fa = FeatureAgglomeration::fit(&x, k);
            assert_eq!(fa.n_clusters(), k);
            assert_eq!(fa.transform(&x).ncols(), k);
        }
    }

    #[test]
    fn pooled_value_is_cluster_mean() {
        let x = data();
        let fa = FeatureAgglomeration::fit(&x, 2);
        let out = fa.transform(&x);
        // Cluster of features {0, 1}: pooled value = (x0 + x1) / 2.
        let merged_col = fa.labels()[0];
        let expect = (x.get(5, 0) + x.get(5, 1)) / 2.0;
        assert!((out.get(5, merged_col) - expect).abs() < 1e-12);
    }

    #[test]
    fn oversized_k_clamps_to_feature_count() {
        let x = data();
        let fa = FeatureAgglomeration::fit(&x, 99);
        assert_eq!(fa.n_clusters(), 3);
    }

    #[test]
    fn single_cluster_averages_everything() {
        let x = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        let fa = FeatureAgglomeration::fit(&x, 1);
        let out = fa.transform(&x);
        assert_eq!(out.col(0), vec![2.0, 3.0]);
    }
}
