//! Principal component analysis via power iteration with deflation — the
//! `pca(...)` feature-preprocessing option of the AutoML search space
//! (paper Fig. 4).

use crate::jsonio;
use crate::matrix::Matrix;
use em_rt::Json;

/// A fitted PCA transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Per-feature training means (data is centered before projection).
    means: Vec<f64>,
    /// Principal axes, one row per component.
    components: Vec<Vec<f64>>,
    /// Eigenvalues (variance explained per component, descending).
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit `n_components` principal components (clamped to the feature
    /// count). Uses the `d × d` covariance matrix and seeded power iteration
    /// with Hotelling deflation, which is plenty for EM's ≤ ~200 features.
    pub fn fit(x: &Matrix, n_components: usize) -> Self {
        let n = x.nrows();
        let d = x.ncols();
        assert!(n >= 2, "PCA needs at least two samples");
        let k = n_components.clamp(1, d);
        let means: Vec<f64> = (0..d).map(|c| crate::stats::mean(&x.col(c))).collect();
        // Covariance matrix (population normalization). Index loops keep
        // the symmetric-update intent obvious.
        #[allow(clippy::needless_range_loop)]
        let mut cov = vec![vec![0.0f64; d]; d];
        #[allow(clippy::needless_range_loop)]
        for row in x.rows_iter() {
            for i in 0..d {
                let xi = row[i] - means[i];
                for j in i..d {
                    cov[i][j] += xi * (row[j] - means[j]);
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= n as f64;
                cov[j][i] = cov[i][j];
            }
        }
        let mut components = Vec::with_capacity(k);
        let mut explained_variance = Vec::with_capacity(k);
        for comp in 0..k {
            let (v, lambda) = dominant_eigenvector(&cov, comp as u64);
            if lambda <= 1e-12 {
                break;
            }
            // Deflate: cov -= lambda * v v^T
            for i in 0..d {
                for j in 0..d {
                    cov[i][j] -= lambda * v[i] * v[j];
                }
            }
            components.push(v);
            explained_variance.push(lambda);
        }
        if components.is_empty() {
            // Degenerate data (all constant): fall back to the first axis.
            let mut v = vec![0.0; d];
            v[0] = 1.0;
            components.push(v);
            explained_variance.push(0.0);
        }
        Pca {
            means,
            components,
            explained_variance,
        }
    }

    /// Project samples onto the principal axes.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.means.len(), "column count changed");
        let mut out = Matrix::zeros(x.nrows(), self.components.len());
        for (r, row) in x.rows_iter().enumerate() {
            for (c, comp) in self.components.iter().enumerate() {
                let mut dot = 0.0;
                for (j, &v) in comp.iter().enumerate() {
                    dot += v * (row[j] - self.means[j]);
                }
                out.set(r, c, dot);
            }
        }
        out
    }

    /// Variance captured by each fitted component (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Number of fitted components (may be fewer than requested for
    /// rank-deficient data).
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Serialize the fitted transform for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("means", jsonio::nums(&self.means)),
            (
                "components",
                Json::arr(self.components.iter().map(|c| jsonio::nums(c))),
            ),
            ("explained_variance", jsonio::nums(&self.explained_variance)),
        ])
    }

    /// Inverse of [`Pca::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(Pca {
            means: jsonio::f64_vec(jsonio::field(j, "means")?)?,
            components: jsonio::field(j, "components")?
                .as_arr()
                .ok_or_else(|| "components must be an array".to_string())?
                .iter()
                .map(jsonio::f64_vec)
                .collect::<Result<_, _>>()?,
            explained_variance: jsonio::f64_vec(jsonio::field(j, "explained_variance")?)?,
        })
    }
}

/// Power iteration with a deterministic pseudo-random start.
fn dominant_eigenvector(m: &[Vec<f64>], seed: u64) -> (Vec<f64>, f64) {
    let d = m.len();
    // Deterministic, seed-dependent start vector.
    let mut v: Vec<f64> = (0..d)
        .map(|i| {
            let h = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
            ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5 + 1e-3
        })
        .collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..500 {
        let mut w = vec![0.0; d];
        for i in 0..d {
            let mut s = 0.0;
            for j in 0..d {
                s += m[i][j] * v[j];
            }
            w[i] = s;
        }
        let new_lambda = norm(&w);
        if new_lambda <= 1e-15 {
            return (v, 0.0);
        }
        for x in w.iter_mut() {
            *x /= new_lambda;
        }
        let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        let delta_neg: f64 = w.iter().zip(&v).map(|(a, b)| (a + b).abs()).sum();
        v = w;
        lambda = new_lambda;
        if delta < 1e-12 || delta_neg < 1e-12 {
            break;
        }
    }
    (v, lambda)
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        v.iter_mut().for_each(|x| *x /= n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along the y = x line with small perpendicular noise.
    fn line_data() -> Matrix {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                vec![t + noise, t - noise]
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn first_component_follows_the_line() {
        let pca = Pca::fit(&line_data(), 2);
        let c = &pca.explained_variance();
        // First component captures vastly more variance.
        assert!(c[0] > 50.0 * c[1], "{c:?}");
    }

    #[test]
    fn transform_shape() {
        let x = line_data();
        let pca = Pca::fit(&x, 1);
        let out = pca.transform(&x);
        assert_eq!(out.ncols(), 1);
        assert_eq!(out.nrows(), 50);
    }

    #[test]
    fn transformed_variance_matches_eigenvalue() {
        let x = line_data();
        let pca = Pca::fit(&x, 2);
        let out = pca.transform(&x);
        for c in 0..pca.n_components() {
            let v = crate::stats::variance(&out.col(c));
            assert!(
                (v - pca.explained_variance()[c]).abs() < 1e-6,
                "component {c}: {v} vs {}",
                pca.explained_variance()[c]
            );
        }
    }

    #[test]
    fn components_are_centered_projections() {
        let x = line_data();
        let pca = Pca::fit(&x, 2);
        let out = pca.transform(&x);
        for c in 0..out.ncols() {
            assert!(crate::stats::mean(&out.col(c)).abs() < 1e-9);
        }
    }

    #[test]
    fn rank_deficient_data_truncates_components() {
        // 1-D data embedded in 3 dims: only one non-zero eigenvalue.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0, 0.0]).collect();
        let pca = Pca::fit(&Matrix::from_rows(&rows), 3);
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn constant_data_does_not_crash() {
        let rows = vec![vec![1.0, 2.0]; 5];
        let pca = Pca::fit(&Matrix::from_rows(&rows), 2);
        let out = pca.transform(&Matrix::from_rows(&rows));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic() {
        let x = line_data();
        let a = Pca::fit(&x, 2).transform(&x);
        let b = Pca::fit(&x, 2).transform(&x);
        assert_eq!(a, b);
    }
}
