//! JSON (de)serialization helpers shared by the model-artifact support.
//!
//! `em_rt::Json` renders non-finite numbers as `null`, so every float that
//! can legitimately be NaN or ±∞ (Gaussian-NB log-priors, stored k-NN
//! training rows) goes through [`num`], which encodes the three non-finite
//! values as the strings `"NaN"`, `"inf"`, and `"-inf"`. Finite values stay
//! `Json::Num` and round-trip exactly (the renderer emits the shortest
//! representation that parses back to the same bits). `u64` seeds are
//! encoded as decimal strings because values above 2^53 cannot survive the
//! `f64` detour a JSON number would take.

use crate::matrix::Matrix;
use em_rt::Json;

/// Encode an `f64`, mapping NaN/±∞ to sentinel strings so they survive the
/// JSON round trip.
pub fn num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("NaN".to_string())
    } else if v > 0.0 {
        Json::Str("inf".to_string())
    } else {
        Json::Str("-inf".to_string())
    }
}

/// Decode an `f64` written by [`num`].
pub fn as_f64(j: &Json) -> Result<f64, String> {
    match j {
        Json::Num(v) => Ok(*v),
        Json::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(format!("expected a number, found string {other:?}")),
        },
        other => Err(format!("expected a number, found {other:?}")),
    }
}

/// Encode a float slice as a JSON array via [`num`].
pub fn nums(vs: &[f64]) -> Json {
    Json::arr(vs.iter().map(|&v| num(v)))
}

/// Decode a float array written by [`nums`].
pub fn f64_vec(j: &Json) -> Result<Vec<f64>, String> {
    j.as_arr()
        .ok_or_else(|| "expected an array of numbers".to_string())?
        .iter()
        .map(as_f64)
        .collect()
}

/// Decode a non-negative integer.
pub fn as_usize(j: &Json) -> Result<usize, String> {
    let v = as_f64(j)?;
    if v.is_finite() && v >= 0.0 && v.fract() == 0.0 {
        Ok(v as usize)
    } else {
        Err(format!("expected a non-negative integer, found {v}"))
    }
}

/// Decode an array of non-negative integers.
pub fn usize_vec(j: &Json) -> Result<Vec<usize>, String> {
    j.as_arr()
        .ok_or_else(|| "expected an array of integers".to_string())?
        .iter()
        .map(as_usize)
        .collect()
}

/// Encode a `u64` exactly (as a decimal string — JSON numbers go through
/// `f64` and lose precision above 2^53).
pub fn u64_str(v: u64) -> Json {
    Json::Str(v.to_string())
}

/// Decode a `u64` written by [`u64_str`] (a plain JSON integer is also
/// accepted when it is exactly representable).
pub fn as_u64(j: &Json) -> Result<u64, String> {
    match j {
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|e| format!("invalid u64 {s:?}: {e}")),
        Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Ok(*v as u64),
        other => Err(format!("expected a u64, found {other:?}")),
    }
}

/// Decode a boolean.
pub fn as_bool(j: &Json) -> Result<bool, String> {
    match j {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("expected a bool, found {other:?}")),
    }
}

/// Decode a string.
pub fn as_str(j: &Json) -> Result<&str, String> {
    j.as_str().ok_or_else(|| "expected a string".to_string())
}

/// Look up a required object field.
pub fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

/// Encode an optional count (`None` → `null`).
pub fn opt_usize(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::from(n),
        None => Json::Null,
    }
}

/// Decode an optional count written by [`opt_usize`].
pub fn as_opt_usize(j: &Json) -> Result<Option<usize>, String> {
    match j {
        Json::Null => Ok(None),
        other => as_usize(other).map(Some),
    }
}

/// Encode a dense matrix as `{rows, cols, data}` (row-major).
pub fn matrix_to_json(m: &Matrix) -> Json {
    Json::obj([
        ("rows", Json::from(m.nrows())),
        ("cols", Json::from(m.ncols())),
        ("data", nums(m.as_slice())),
    ])
}

/// Decode a matrix written by [`matrix_to_json`].
pub fn matrix_from_json(j: &Json) -> Result<Matrix, String> {
    let rows = as_usize(field(j, "rows")?)?;
    let cols = as_usize(field(j, "cols")?)?;
    let data = f64_vec(field(j, "data")?)?;
    if data.len() != rows * cols {
        return Err(format!(
            "matrix data length {} != {rows}x{cols}",
            data.len()
        ));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_floats_round_trip() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.5, -0.25] {
            let j = Json::parse(&num(v).render()).unwrap();
            let back = as_f64(&j).unwrap();
            assert!(back == v || (back.is_nan() && v.is_nan()), "{v} -> {back}");
        }
    }

    #[test]
    fn awkward_floats_round_trip_exactly() {
        for v in [
            0.1 + 0.2,
            1e-300,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.0 / 3.0,
            2f64.powi(60),
        ] {
            let j = Json::parse(&num(v).render()).unwrap();
            assert_eq!(as_f64(&j).unwrap().to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn u64_round_trips_above_2_53() {
        for v in [0u64, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let j = Json::parse(&u64_str(v).render()).unwrap();
            assert_eq!(as_u64(&j).unwrap(), v);
        }
    }

    #[test]
    fn matrix_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, f64::NAN, 0.5, -2.0, 1e-12, 3.0]);
        let j = Json::parse(&matrix_to_json(&m).render()).unwrap();
        let back = matrix_from_json(&j).unwrap();
        assert_eq!(back.nrows(), 2);
        assert_eq!(back.ncols(), 3);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!(a.to_bits() == b.to_bits());
        }
    }
}
