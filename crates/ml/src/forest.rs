//! Random forests and extra-trees — the workhorse models of AutoML-EM
//! (the paper restricts the model space to random forest, §III-C).
//!
//! `RandomForestClassifier::vote_fraction` exposes the tree-agreement
//! confidence the paper's Figure 7 uses to separate active-learning picks
//! (low agreement) from self-training picks (high agreement).

use crate::jsonio;
use crate::matrix::Matrix;
use crate::tree::{Criterion, DecisionTree, MaxFeatures, Splitter, TreeParams};
use crate::Classifier;
use em_rt::Json;
use em_rt::StdRng;

/// Hyperparameters shared by the forest models. Field names and defaults
/// mirror scikit-learn's `RandomForestClassifier` (paper Fig. 5/11).
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Split criterion (gini or entropy).
    pub criterion: Criterion,
    /// Maximum depth per tree.
    pub max_depth: Option<usize>,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Split engine per tree (exact scan, binned histograms, or random
    /// thresholds — extra-trees forces `Random`).
    pub splitter: Splitter,
    /// Bin budget per feature for the binned splitter (see
    /// [`TreeParams::n_bins`]).
    pub n_bins: usize,
    /// Bootstrap-resample the training set per tree.
    pub bootstrap: bool,
    /// Minimum impurity decrease per split.
    pub min_impurity_decrease: f64,
    /// Base RNG seed; tree `t` uses `seed + t`.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub n_jobs: usize,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_estimators: 100,
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            splitter: Splitter::Best,
            n_bins: 256,
            bootstrap: true,
            min_impurity_decrease: 0.0,
            seed: 0,
            n_jobs: 0,
        }
    }
}

/// Train `n` trees on the shared `em-rt` worker pool with per-tree seeds and
/// optional bootstrap. Tree `t` is fully determined by `params.seed` and `t`,
/// so predictions are bit-identical for any `n_jobs`.
fn fit_trees(
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    sample_weight: Option<&[f64]>,
    params: &ForestParams,
) -> Vec<DecisionTree> {
    let _span = em_obs::span!("forest.fit");
    let n = x.nrows();
    let n_trees = params.n_estimators.max(1);
    // Bin the base matrix once for the whole forest: bootstrap resamples
    // only repeat base rows, so each tree gathers its code rows instead of
    // re-sorting every feature.
    let prebinned = (params.splitter.effective() == Splitter::Binned)
        .then(|| crate::binned::bin_matrix(x, params.n_bins));
    let mut results: Vec<Option<DecisionTree>> = vec![None; n_trees];
    let writer = em_rt::SliceWriter::new(&mut results);
    em_rt::parallel_for_chunked(n_trees, params.n_jobs, 1, |t| {
        let tree_params = TreeParams {
            criterion: params.criterion,
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            min_samples_leaf: params.min_samples_leaf,
            max_features: params.max_features,
            splitter: params.splitter,
            n_bins: params.n_bins,
            min_impurity_decrease: params.min_impurity_decrease,
            seed: params
                .seed
                .wrapping_add(t as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let tree = if params.bootstrap {
            let mut rng = StdRng::seed_from_u64(tree_params.seed ^ BOOTSTRAP_SALT);
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let xb = x.select_rows(&idx);
            let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            let wb: Option<Vec<f64>> = sample_weight.map(|w| idx.iter().map(|&i| w[i]).collect());
            let pb = prebinned.as_ref().map(|b| b.gather(&idx));
            DecisionTree::fit_classifier_prebinned(
                &xb,
                &yb,
                n_classes,
                wb.as_deref(),
                tree_params,
                pb,
            )
        } else {
            DecisionTree::fit_classifier_prebinned(
                x,
                y,
                n_classes,
                sample_weight,
                tree_params,
                prebinned.clone(),
            )
        };
        // Safety: `parallel_for` hands out each index exactly once.
        unsafe { writer.write(t, Some(tree)) };
    });
    results
        .into_iter()
        .map(|t| t.expect("all trees trained"))
        .collect()
}

/// Salt mixed into per-tree seeds so the bootstrap RNG and the split RNG
/// draw independent streams.
const BOOTSTRAP_SALT: u64 = 0xB001_57A9;

/// Random forest classifier (bagging + per-split feature subsampling).
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    /// Hyperparameters (read-only after `fit`).
    pub params: ForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Create an unfitted forest with the given hyperparameters.
    pub fn new(params: ForestParams) -> Self {
        RandomForestClassifier {
            params,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// The fitted trees (empty before `fit`).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean-decrease-in-impurity importances averaged over the trees
    /// (sklearn's `feature_importances_`), normalized to sum to 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit before inspecting importances");
        let d = self.trees[0].n_features();
        let mut out = vec![0.0; d];
        for tree in &self.trees {
            for (o, v) in out.iter_mut().zip(tree.feature_importances()) {
                *o += v;
            }
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            out.iter_mut().for_each(|v| *v /= total);
        }
        out
    }

    /// Out-of-bag F1: evaluate each training sample only with the trees
    /// whose bootstrap draw excluded it — an unbiased generalization
    /// estimate without a held-out split.
    ///
    /// Must be called with the *same* `(x, y)` the forest was fitted on
    /// (the bootstrap draws are reconstructed from the per-tree seeds).
    /// Returns `None` when the forest was fitted without bootstrap or some
    /// sample never fell out of bag.
    pub fn oob_f1(&self, x: &Matrix, y: &[usize]) -> Option<f64> {
        if !self.params.bootstrap || self.trees.is_empty() {
            return None;
        }
        let n = x.nrows();
        assert_eq!(n, y.len(), "X/y length mismatch");
        let mut votes = vec![vec![0.0f64; self.n_classes]; n];
        let mut seen = vec![false; n];
        for (t, tree) in self.trees.iter().enumerate() {
            // Reconstruct tree t's bootstrap draw (same arithmetic as fit).
            let tree_seed = self
                .params
                .seed
                .wrapping_add(t as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(tree_seed ^ BOOTSTRAP_SALT);
            let mut in_bag = vec![false; n];
            for _ in 0..n {
                in_bag[rng.random_range(0..n)] = true;
            }
            for (i, row) in x.rows_iter().enumerate() {
                if !in_bag[i] {
                    seen[i] = true;
                    for (c, &p) in tree.predict_proba_row(row).iter().enumerate() {
                        votes[i][c] += p;
                    }
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return None;
        }
        let pred: Vec<usize> = votes
            .iter()
            .map(|v| {
                let mut best = 0;
                for (c, &p) in v.iter().enumerate() {
                    if p > v[best] {
                        best = c;
                    }
                }
                best
            })
            .collect();
        Some(crate::metrics::f1_score(y, &pred))
    }

    /// Per-sample agreement of the ensemble: the fraction of trees whose
    /// individual hard prediction equals the majority prediction. This is
    /// the confidence score of the paper's Figure 7 — low values fall into
    /// the "inconsistent" regions R2/R3 (active-learning targets), high
    /// values into R1/R4 (self-training targets).
    pub fn vote_fraction(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let n = x.nrows();
        let mut votes = vec![vec![0usize; self.n_classes]; n];
        for tree in &self.trees {
            for (r, row) in x.rows_iter().enumerate() {
                let dist = tree.predict_proba_row(row);
                let mut best = 0;
                for (c, &p) in dist.iter().enumerate() {
                    if p > dist[best] {
                        best = c;
                    }
                }
                votes[r][best] += 1;
            }
        }
        votes
            .iter()
            .map(|v| *v.iter().max().unwrap() as f64 / self.trees.len() as f64)
            .collect()
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        self.n_classes = n_classes;
        self.trees = fit_trees(x, y, n_classes, sample_weight, &self.params);
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        for tree in &self.trees {
            for (r, row) in x.rows_iter().enumerate() {
                let dist = tree.predict_proba_row(row);
                for (c, &p) in dist.iter().enumerate() {
                    out.set(r, c, out.get(r, c) + p);
                }
            }
        }
        let k = self.trees.len() as f64;
        for r in 0..out.nrows() {
            for c in 0..out.ncols() {
                out.set(r, c, out.get(r, c) / k);
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        Some(RandomForestClassifier::feature_importances(self))
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

/// Extra-trees classifier: no bootstrap by default, random split thresholds.
#[derive(Debug, Clone)]
pub struct ExtraTreesClassifier {
    /// Hyperparameters (read-only after `fit`).
    pub params: ForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl ExtraTreesClassifier {
    /// Create an unfitted extra-trees ensemble.
    pub fn new(mut params: ForestParams) -> Self {
        // sklearn's ExtraTrees default: no bootstrap, random thresholds.
        params.bootstrap = false;
        params.splitter = Splitter::Random;
        ExtraTreesClassifier {
            params,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for ExtraTreesClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        self.n_classes = n_classes;
        self.trees = fit_trees(x, y, n_classes, sample_weight, &self.params);
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        for tree in &self.trees {
            for (r, row) in x.rows_iter().enumerate() {
                let dist = tree.predict_proba_row(row);
                for (c, &p) in dist.iter().enumerate() {
                    out.set(r, c, out.get(r, c) + p);
                }
            }
        }
        let k = self.trees.len() as f64;
        for r in 0..out.nrows() {
            for c in 0..out.ncols() {
                out.set(r, c, out.get(r, c) / k);
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        let d = self.trees.first()?.n_features();
        let mut out = vec![0.0; d];
        for tree in &self.trees {
            for (o, v) in out.iter_mut().zip(tree.feature_importances()) {
                *o += v;
            }
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            out.iter_mut().for_each(|v| *v /= total);
        }
        Some(out)
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl ForestParams {
    /// Serialize the hyperparameters to the artifact encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n_estimators", Json::from(self.n_estimators)),
            ("criterion", Json::from(self.criterion.as_str())),
            ("max_depth", jsonio::opt_usize(self.max_depth)),
            ("min_samples_split", Json::from(self.min_samples_split)),
            ("min_samples_leaf", Json::from(self.min_samples_leaf)),
            ("max_features", self.max_features.to_json()),
            ("splitter", Json::from(self.splitter.as_str())),
            ("n_bins", Json::from(self.n_bins)),
            ("bootstrap", Json::from(self.bootstrap)),
            (
                "min_impurity_decrease",
                jsonio::num(self.min_impurity_decrease),
            ),
            ("seed", jsonio::u64_str(self.seed)),
            ("n_jobs", Json::from(self.n_jobs)),
        ])
    }

    /// Inverse of [`ForestParams::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ForestParams {
            n_estimators: jsonio::as_usize(jsonio::field(j, "n_estimators")?)?,
            criterion: Criterion::parse(jsonio::as_str(jsonio::field(j, "criterion")?)?)?,
            max_depth: jsonio::as_opt_usize(jsonio::field(j, "max_depth")?)?,
            min_samples_split: jsonio::as_usize(jsonio::field(j, "min_samples_split")?)?,
            min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
            max_features: MaxFeatures::from_json(jsonio::field(j, "max_features")?)?,
            // Both introduced after the first artifact format; older
            // artifacts load with the values they were fitted with.
            splitter: match j.get("splitter") {
                Some(v) => Splitter::parse(jsonio::as_str(v)?)?,
                None => Splitter::Best,
            },
            n_bins: match j.get("n_bins") {
                Some(v) => jsonio::as_usize(v)?,
                None => 256,
            },
            bootstrap: jsonio::as_bool(jsonio::field(j, "bootstrap")?)?,
            min_impurity_decrease: jsonio::as_f64(jsonio::field(j, "min_impurity_decrease")?)?,
            seed: jsonio::as_u64(jsonio::field(j, "seed")?)?,
            n_jobs: jsonio::as_usize(jsonio::field(j, "n_jobs")?)?,
        })
    }
}

/// Shared (de)serialization for the two tree-ensemble classifiers (they
/// differ only in splitter/bootstrap, which live inside the params/trees).
fn ensemble_to_json(params: &ForestParams, trees: &[DecisionTree], n_classes: usize) -> Json {
    Json::obj([
        ("params", params.to_json()),
        ("n_classes", Json::from(n_classes)),
        ("trees", Json::arr(trees.iter().map(DecisionTree::to_json))),
    ])
}

fn ensemble_from_json(j: &Json) -> Result<(ForestParams, Vec<DecisionTree>, usize), String> {
    let params = ForestParams::from_json(jsonio::field(j, "params")?)?;
    let n_classes = jsonio::as_usize(jsonio::field(j, "n_classes")?)?;
    let trees = jsonio::field(j, "trees")?
        .as_arr()
        .ok_or_else(|| "trees must be an array".to_string())?
        .iter()
        .map(DecisionTree::from_json)
        .collect::<Result<_, _>>()?;
    Ok((params, trees, n_classes))
}

impl RandomForestClassifier {
    /// Serialize the fitted forest for the model artifact.
    pub fn to_json(&self) -> Json {
        ensemble_to_json(&self.params, &self.trees, self.n_classes)
    }

    /// Inverse of [`RandomForestClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let (params, trees, n_classes) = ensemble_from_json(j)?;
        Ok(RandomForestClassifier {
            params,
            trees,
            n_classes,
        })
    }
}

impl ExtraTreesClassifier {
    /// Serialize the fitted ensemble for the model artifact.
    pub fn to_json(&self) -> Json {
        ensemble_to_json(&self.params, &self.trees, self.n_classes)
    }

    /// Inverse of [`ExtraTreesClassifier::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let (mut params, trees, n_classes) = ensemble_from_json(j)?;
        // Pre-splitter artifacts default to `Best`; extra-trees always
        // means random thresholds (a refit must not change engines).
        params.splitter = Splitter::Random;
        Ok(ExtraTreesClassifier {
            params,
            trees,
            n_classes,
        })
    }
}

/// Random forest regressor (used as the SMAC surrogate in `em-automl`).
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    /// Hyperparameters (criterion is forced to MSE).
    pub params: ForestParams,
    trees: Vec<DecisionTree>,
}

impl RandomForestRegressor {
    /// Create an unfitted regressor.
    pub fn new(mut params: ForestParams) -> Self {
        params.criterion = Criterion::Mse;
        RandomForestRegressor {
            params,
            trees: Vec::new(),
        }
    }

    /// Fit on continuous targets (trees train on the shared `em-rt` pool).
    pub fn fit(&mut self, x: &Matrix, targets: &[f64]) {
        let _span = em_obs::span!("forest.fit_regressor");
        let n = x.nrows();
        let n_trees = self.params.n_estimators.max(1);
        let prebinned = (self.params.splitter.effective() == Splitter::Binned)
            .then(|| crate::binned::bin_matrix(x, self.params.n_bins));
        let mut results: Vec<Option<DecisionTree>> = vec![None; n_trees];
        let writer = em_rt::SliceWriter::new(&mut results);
        let params = &self.params;
        em_rt::parallel_for_chunked(n_trees, params.n_jobs, 1, |t| {
            let tree_params = TreeParams {
                criterion: Criterion::Mse,
                max_depth: params.max_depth,
                min_samples_split: params.min_samples_split,
                min_samples_leaf: params.min_samples_leaf,
                max_features: params.max_features,
                splitter: params.splitter,
                n_bins: params.n_bins,
                min_impurity_decrease: params.min_impurity_decrease,
                seed: params
                    .seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let tree = if params.bootstrap {
                let mut rng = StdRng::seed_from_u64(tree_params.seed ^ BOOTSTRAP_SALT);
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let xb = x.select_rows(&idx);
                let tb: Vec<f64> = idx.iter().map(|&i| targets[i]).collect();
                let pb = prebinned.as_ref().map(|b| b.gather(&idx));
                DecisionTree::fit_regressor_prebinned(&xb, &tb, None, tree_params, pb)
            } else {
                DecisionTree::fit_regressor_prebinned(
                    x,
                    targets,
                    None,
                    tree_params,
                    prebinned.clone(),
                )
            };
            // Safety: `parallel_for` hands out each index exactly once.
            unsafe { writer.write(t, Some(tree)) };
        });
        self.trees = results
            .into_iter()
            .map(|t| t.expect("all trees trained"))
            .collect();
    }

    /// Mean prediction across trees.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let mut out = vec![0.0; x.nrows()];
        for tree in &self.trees {
            for (r, v) in tree.predict_values(x).into_iter().enumerate() {
                out[r] += v;
            }
        }
        let k = self.trees.len() as f64;
        out.iter_mut().for_each(|v| *v /= k);
        out
    }

    /// Per-sample mean and variance of the tree predictions — the surrogate
    /// uncertainty SMAC's expected-improvement acquisition needs.
    pub fn predict_with_variance(&self, x: &Matrix) -> Vec<(f64, f64)> {
        assert!(!self.trees.is_empty(), "fit before predicting");
        let per_tree: Vec<Vec<f64>> = self.trees.iter().map(|t| t.predict_values(x)).collect();
        (0..x.nrows())
            .map(|r| {
                let vals: Vec<f64> = per_tree.iter().map(|p| p[r]).collect();
                let m = crate::stats::mean(&vals);
                let v = crate::stats::variance(&vals);
                (m, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy two-cluster data in 4 dimensions.
    fn clusters(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { 0.0 } else { 1.0 };
            rows.push(
                (0..4)
                    .map(|_| center + rng.random_range(-0.3..0.3))
                    .collect(),
            );
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    fn small_forest(seed: u64) -> RandomForestClassifier {
        RandomForestClassifier::new(ForestParams {
            n_estimators: 25,
            seed,
            ..ForestParams::default()
        })
    }

    #[test]
    fn forest_learns_clusters() {
        let (x, y) = clusters(200, 1);
        let mut rf = small_forest(0);
        rf.fit(&x, &y, 2, None);
        let acc = rf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn forest_deterministic_under_seed() {
        let (x, y) = clusters(100, 2);
        let mut a = small_forest(7);
        let mut b = small_forest(7);
        a.fit(&x, &y, 2, None);
        b.fit(&x, &y, 2, None);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        // Overlapping clusters: probabilities on ambiguous points depend on
        // the bootstrap draws, so different seeds must diverge somewhere.
        let mut rng = StdRng::seed_from_u64(2);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 2;
            let center = c as f64 * 0.5;
            rows.push(vec![center + rng.random_range(-0.6..0.6)]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let mut a = small_forest(7);
        let mut b = small_forest(8);
        a.fit(&x, &y, 2, None);
        b.fit(&x, &y, 2, None);
        assert_ne!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn vote_fraction_confidence_structure() {
        let (x, y) = clusters(200, 3);
        let mut rf = small_forest(1);
        rf.fit(&x, &y, 2, None);
        let conf = rf.vote_fraction(&x);
        // Every agreement fraction is in [0.5, 1] for binary problems.
        for &c in &conf {
            assert!((0.5..=1.0).contains(&c), "confidence {c}");
        }
        // A point far from both clusters' boundary is high-confidence.
        let easy = Matrix::from_rows(&[vec![-0.5; 4], vec![1.5; 4]]);
        for c in rf.vote_fraction(&easy) {
            assert!(c > 0.9, "easy point confidence {c}");
        }
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = clusters(80, 4);
        let mut rf = small_forest(0);
        rf.fit(&x, &y, 2, None);
        let p = rf.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extra_trees_learn_too() {
        let (x, y) = clusters(200, 5);
        let mut et = ExtraTreesClassifier::new(ForestParams {
            n_estimators: 30,
            seed: 0,
            ..ForestParams::default()
        });
        et.fit(&x, &y, 2, None);
        let acc = et
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_linear_signal() {
        let x = Matrix::from_rows(&(0..100).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>());
        let t: Vec<f64> = (0..100).map(|i| 2.0 * (i as f64 / 10.0) + 1.0).collect();
        let mut rf = RandomForestRegressor::new(ForestParams {
            n_estimators: 30,
            max_features: MaxFeatures::All,
            seed: 0,
            ..ForestParams::default()
        });
        rf.fit(&x, &t);
        let pred = rf.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&t)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / t.len() as f64;
        assert!(mse < 0.5, "mse {mse}");
    }

    #[test]
    fn regressor_variance_nonnegative() {
        let x = Matrix::from_rows(&(0..50).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let t: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let mut rf = RandomForestRegressor::new(ForestParams {
            n_estimators: 10,
            seed: 0,
            ..ForestParams::default()
        });
        rf.fit(&x, &t);
        for (m, v) in rf.predict_with_variance(&x) {
            assert!(v >= 0.0);
            assert!(m.is_finite());
        }
    }

    #[test]
    fn oob_f1_approximates_holdout_f1() {
        let (x, y) = clusters(300, 7);
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 40,
            seed: 2,
            ..ForestParams::default()
        });
        rf.fit(&x, &y, 2, None);
        let oob = rf.oob_f1(&x, &y).expect("bootstrap forest has OOB");
        // Fresh data from the same distribution as an oracle comparison.
        let (xt, yt) = clusters(300, 77);
        let holdout = crate::metrics::f1_score(&yt, &rf.predict(&xt));
        assert!(
            (oob - holdout).abs() < 0.1,
            "oob {oob} vs holdout {holdout}"
        );
    }

    #[test]
    fn oob_is_none_without_bootstrap() {
        let (x, y) = clusters(60, 8);
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 10,
            bootstrap: false,
            ..ForestParams::default()
        });
        rf.fit(&x, &y, 2, None);
        assert!(rf.oob_f1(&x, &y).is_none());
    }

    #[test]
    fn forest_importances_rank_informative_features_first() {
        // Feature 0 carries the class; features 1-3 are noise.
        let mut rng = StdRng::seed_from_u64(9);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 2;
            rows.push(vec![
                c as f64 + rng.random_range(-0.2..0.2),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let mut rf = small_forest(3);
        rf.fit(&x, &y, 2, None);
        let imp = rf.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[0] > imp[1] && imp[0] > imp[2] && imp[0] > imp[3],
            "{imp:?}"
        );
        assert!(imp[0] > 0.5, "{imp:?}");
    }

    #[test]
    fn single_job_matches_parallel() {
        let (x, y) = clusters(100, 6);
        let mut par = small_forest(11);
        let mut ser = RandomForestClassifier::new(ForestParams {
            n_jobs: 1,
            ..par.params.clone()
        });
        par.fit(&x, &y, 2, None);
        ser.fit(&x, &y, 2, None);
        assert_eq!(par.predict_proba(&x), ser.predict_proba(&x));
    }
}
