//! Linear models: logistic regression (full-batch gradient descent with L2)
//! and a linear SVM trained with the Pegasos SGD scheme. Both are members of
//! the "all-model" AutoML search space (paper Fig. 4).

use crate::jsonio;
use crate::matrix::Matrix;
use crate::Classifier;
use em_rt::Json;
use em_rt::SliceRandom;
use em_rt::StdRng;

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionParams {
    /// L2 regularization strength (sklearn's `1/C`).
    pub alpha: f64,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch iterations.
    pub max_iter: usize,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            alpha: 1e-4,
            learning_rate: 0.5,
            max_iter: 300,
        }
    }
}

/// Binary logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Hyperparameters.
    pub params: LogisticRegressionParams,
    weights: Vec<f64>,
    bias: f64,
    n_classes: usize,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Create an unfitted model.
    pub fn new(params: LogisticRegressionParams) -> Self {
        LogisticRegression {
            params,
            weights: Vec::new(),
            bias: 0.0,
            n_classes: 0,
        }
    }

    /// Raw decision function `w·x + b` per sample.
    pub fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "fit before predicting");
        x.rows_iter()
            .map(|row| {
                row.iter()
                    .zip(&self.weights)
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>()
                    + self.bias
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        assert_eq!(n_classes, 2, "LogisticRegression is binary-only");
        self.n_classes = 2;
        let n = x.nrows();
        let d = x.ncols();
        let w_samples: Vec<f64> = sample_weight.map_or_else(|| vec![1.0; n], <[f64]>::to_vec);
        let wsum: f64 = w_samples.iter().sum();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        for _ in 0..self.params.max_iter {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (r, row) in x.rows_iter().enumerate() {
                let z: f64 = row
                    .iter()
                    .zip(&self.weights)
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>()
                    + self.bias;
                let err = sigmoid(z) - y[r] as f64;
                let scaled = w_samples[r] * err;
                for (g, xi) in grad_w.iter_mut().zip(row) {
                    *g += scaled * xi;
                }
                grad_b += scaled;
            }
            let lr = self.params.learning_rate;
            for (wi, g) in self.weights.iter_mut().zip(&grad_w) {
                *wi -= lr * (g / wsum + self.params.alpha * *wi);
            }
            self.bias -= lr * grad_b / wsum;
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let f = self.decision_function(x);
        let mut out = Matrix::zeros(x.nrows(), 2);
        for (r, &z) in f.iter().enumerate() {
            let p = sigmoid(z);
            out.set(r, 0, 1.0 - p);
            out.set(r, 1, p);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl LogisticRegression {
    /// Serialize the fitted model (weights + bias) for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "params",
                Json::obj([
                    ("alpha", jsonio::num(self.params.alpha)),
                    ("learning_rate", jsonio::num(self.params.learning_rate)),
                    ("max_iter", Json::from(self.params.max_iter)),
                ]),
            ),
            ("weights", jsonio::nums(&self.weights)),
            ("bias", jsonio::num(self.bias)),
            ("n_classes", Json::from(self.n_classes)),
        ])
    }

    /// Inverse of [`LogisticRegression::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let p = jsonio::field(j, "params")?;
        Ok(LogisticRegression {
            params: LogisticRegressionParams {
                alpha: jsonio::as_f64(jsonio::field(p, "alpha")?)?,
                learning_rate: jsonio::as_f64(jsonio::field(p, "learning_rate")?)?,
                max_iter: jsonio::as_usize(jsonio::field(p, "max_iter")?)?,
            },
            weights: jsonio::f64_vec(jsonio::field(j, "weights")?)?,
            bias: jsonio::as_f64(jsonio::field(j, "bias")?)?,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

/// Linear-SVM hyperparameters (Pegasos).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvmParams {
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// RNG seed for the per-epoch shuffle.
    pub seed: u64,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams {
            lambda: 1e-3,
            epochs: 30,
            seed: 0,
        }
    }
}

/// Binary linear SVM trained with the Pegasos stochastic subgradient method.
/// `predict_proba` maps the margin through a sigmoid (a cheap Platt-style
/// calibration) so the model can participate in probability-based pipelines.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Hyperparameters.
    pub params: LinearSvmParams,
    weights: Vec<f64>,
    bias: f64,
    n_classes: usize,
}

impl LinearSvm {
    /// Create an unfitted model.
    pub fn new(params: LinearSvmParams) -> Self {
        LinearSvm {
            params,
            weights: Vec::new(),
            bias: 0.0,
            n_classes: 0,
        }
    }

    /// Raw margin `w·x + b` per sample.
    pub fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "fit before predicting");
        x.rows_iter()
            .map(|row| {
                row.iter()
                    .zip(&self.weights)
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>()
                    + self.bias
            })
            .collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        assert_eq!(n_classes, 2, "LinearSvm is binary-only");
        self.n_classes = 2;
        let n = x.nrows();
        let d = x.ncols();
        let w_samples: Vec<f64> = sample_weight.map_or_else(|| vec![1.0; n], <[f64]>::to_vec);
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let lambda = self.params.lambda.max(1e-9);
        let mut t = 0usize;
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let yi = if y[i] == 1 { 1.0 } else { -1.0 };
                let row = x.row(i);
                let margin: f64 = row
                    .iter()
                    .zip(&self.weights)
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>()
                    + self.bias;
                // Subgradient step with L2 shrinkage.
                for wi in self.weights.iter_mut() {
                    *wi *= 1.0 - eta * lambda;
                }
                if yi * margin < 1.0 {
                    let scale = eta * yi * w_samples[i];
                    for (wi, xi) in self.weights.iter_mut().zip(row) {
                        *wi += scale * xi;
                    }
                    self.bias += scale;
                }
            }
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let f = self.decision_function(x);
        let mut out = Matrix::zeros(x.nrows(), 2);
        for (r, &z) in f.iter().enumerate() {
            let p = sigmoid(z);
            out.set(r, 0, 1.0 - p);
            out.set(r, 1, p);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl LinearSvm {
    /// Serialize the fitted model (weights + bias) for the model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "params",
                Json::obj([
                    ("lambda", jsonio::num(self.params.lambda)),
                    ("epochs", Json::from(self.params.epochs)),
                    ("seed", jsonio::u64_str(self.params.seed)),
                ]),
            ),
            ("weights", jsonio::nums(&self.weights)),
            ("bias", jsonio::num(self.bias)),
            ("n_classes", Json::from(self.n_classes)),
        ])
    }

    /// Inverse of [`LinearSvm::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let p = jsonio::field(j, "params")?;
        Ok(LinearSvm {
            params: LinearSvmParams {
                lambda: jsonio::as_f64(jsonio::field(p, "lambda")?)?,
                epochs: jsonio::as_usize(jsonio::field(p, "epochs")?)?,
                seed: jsonio::as_u64(jsonio::field(p, "seed")?)?,
            },
            weights: jsonio::f64_vec(jsonio::field(j, "weights")?)?,
            bias: jsonio::as_f64(jsonio::field(j, "bias")?)?,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random_range(-1.0..1.0);
            let b: f64 = rng.random_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push(usize::from(a + b > 0.0));
        }
        (Matrix::from_rows(&rows), y)
    }

    fn accuracy(pred: &[usize], y: &[usize]) -> f64 {
        pred.iter().zip(y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64
    }

    #[test]
    fn logistic_learns_linear_boundary() {
        let (x, y) = linear_data(400, 1);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, 2, None);
        assert!(accuracy(&lr.predict(&x), &y) > 0.95);
    }

    #[test]
    fn logistic_probabilities_calibrated_direction() {
        let (x, y) = linear_data(400, 2);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, 2, None);
        let deep_pos = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let deep_neg = Matrix::from_rows(&[vec![-1.0, -1.0]]);
        assert!(lr.predict_proba(&deep_pos).get(0, 1) > 0.9);
        assert!(lr.predict_proba(&deep_neg).get(0, 1) < 0.1);
    }

    #[test]
    fn logistic_sample_weights_shift_boundary() {
        // Same point twice with conflicting labels: the heavier one wins.
        let x = Matrix::from_rows(&[vec![0.5], vec![0.5]]);
        let y = vec![0, 1];
        let mut lr = LogisticRegression::new(LogisticRegressionParams {
            max_iter: 500,
            ..LogisticRegressionParams::default()
        });
        lr.fit(&x, &y, 2, Some(&[10.0, 1.0]));
        assert_eq!(lr.predict(&Matrix::from_rows(&[vec![0.5]]))[0], 0);
    }

    #[test]
    fn svm_learns_linear_boundary() {
        let (x, y) = linear_data(400, 3);
        let mut svm = LinearSvm::new(LinearSvmParams::default());
        svm.fit(&x, &y, 2, None);
        assert!(accuracy(&svm.predict(&x), &y) > 0.93);
    }

    #[test]
    fn svm_deterministic() {
        let (x, y) = linear_data(200, 4);
        let mut a = LinearSvm::new(LinearSvmParams {
            seed: 5,
            ..LinearSvmParams::default()
        });
        let mut b = LinearSvm::new(LinearSvmParams {
            seed: 5,
            ..LinearSvmParams::default()
        });
        a.fit(&x, &y, 2, None);
        b.fit(&x, &y, 2, None);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = linear_data(100, 6);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, 2, None);
        let p = lr.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "binary-only")]
    fn logistic_rejects_multiclass() {
        let x = Matrix::from_rows(&[vec![0.0]]);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &[2], 3, None);
    }
}
