//! Seeded train/validation/test splitting with optional stratification.
//!
//! The paper splits each benchmark 4:1 into train/test and then the training
//! portion 4:1 again into train/validation (§V-A), i.e. 64/16/20 overall.

use em_rt::SliceRandom;
use em_rt::StdRng;

/// Shuffle `0..n` deterministically with the given seed.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Split `0..n` into two index sets with `test_fraction` of the items in the
/// second set, after a seeded shuffle.
pub fn train_test_indices(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction out of range"
    );
    let idx = shuffled_indices(n, seed);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_test = n_test.min(n);
    let (test, train) = idx.split_at(n_test);
    (train.to_vec(), test.to_vec())
}

/// Stratified variant of [`train_test_indices`]: the class proportions of
/// `y` are preserved (as closely as rounding allows) in both output sets.
pub fn stratified_train_test_indices(
    y: &[usize],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "fraction out of range"
    );
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        per_class[c].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for members in per_class.iter_mut() {
        members.shuffle(&mut rng);
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(members.len());
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    // Re-shuffle so downstream consumers don't see class-sorted data.
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

/// Stratified k-fold splitter: returns `k` `(train, test)` index pairs in
/// which each class is spread as evenly as possible across folds. The paper
/// uses one hold-out split (§V-A); k-fold is provided for library
/// completeness and more stable model comparison on small datasets.
pub fn stratified_k_fold(y: &[usize], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(y.len() >= k, "fewer samples than folds");
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        per_class[c].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; y.len()];
    for members in per_class.iter_mut() {
        members.shuffle(&mut rng);
        for (pos, &i) in members.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, test)
        })
        .collect()
}

/// Three-way split used throughout the experiments: train / validation /
/// test with the paper's 64/16/20 proportions (stratified).
#[derive(Debug, Clone)]
pub struct ThreeWaySplit {
    /// Training indices (~64%).
    pub train: Vec<usize>,
    /// Validation indices (~16%).
    pub valid: Vec<usize>,
    /// Test indices (~20%).
    pub test: Vec<usize>,
}

/// Produce the paper's 64/16/20 stratified split.
pub fn paper_split(y: &[usize], seed: u64) -> ThreeWaySplit {
    let (train_pool, test) = stratified_train_test_indices(y, 0.2, seed);
    // Split the 80% pool 4:1 into train/valid, stratified on the pool labels.
    let pool_y: Vec<usize> = train_pool.iter().map(|&i| y[i]).collect();
    let (tr_local, va_local) = stratified_train_test_indices(&pool_y, 0.2, seed.wrapping_add(1));
    let train = tr_local.iter().map(|&i| train_pool[i]).collect();
    let valid = va_local.iter().map(|&i| train_pool[i]).collect();
    ThreeWaySplit { train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_indices(100, 0.2, 7);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(
            train_test_indices(50, 0.3, 42),
            train_test_indices(50, 0.3, 42)
        );
        assert_ne!(
            train_test_indices(50, 0.3, 42).1,
            train_test_indices(50, 0.3, 43).1
        );
    }

    #[test]
    fn stratified_preserves_ratio() {
        // 20% positives.
        let y: Vec<usize> = (0..200).map(|i| usize::from(i % 5 == 0)).collect();
        let (train, test) = stratified_train_test_indices(&y, 0.25, 1);
        let pos_test = test.iter().filter(|&&i| y[i] == 1).count();
        let pos_train = train.iter().filter(|&&i| y[i] == 1).count();
        assert_eq!(test.len(), 50);
        assert_eq!(pos_test, 10);
        assert_eq!(pos_train, 30);
    }

    #[test]
    fn paper_split_proportions() {
        let y: Vec<usize> = (0..1000).map(|i| usize::from(i % 10 == 0)).collect();
        let s = paper_split(&y, 3);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 1000);
        assert!(
            (s.test.len() as i64 - 200).abs() <= 2,
            "test {}",
            s.test.len()
        );
        assert!(
            (s.valid.len() as i64 - 160).abs() <= 3,
            "valid {}",
            s.valid.len()
        );
        // Disjointness.
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn k_fold_partitions_and_stratifies() {
        let y: Vec<usize> = (0..100).map(|i| usize::from(i % 4 == 0)).collect();
        let folds = stratified_k_fold(&y, 5, 1);
        assert_eq!(folds.len(), 5);
        // Test sets partition the data.
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..100).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 100);
            // Every fold holds its proportional share of positives.
            let pos = test.iter().filter(|&&i| y[i] == 1).count();
            assert_eq!(pos, 5, "fold positives {pos}");
            // Disjoint train/test.
            let ts: std::collections::BTreeSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !ts.contains(i)));
        }
    }

    #[test]
    fn k_fold_is_deterministic() {
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 0];
        assert_eq!(stratified_k_fold(&y, 2, 3), stratified_k_fold(&y, 2, 3));
        assert_ne!(stratified_k_fold(&y, 2, 3), stratified_k_fold(&y, 2, 4));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k1() {
        let _ = stratified_k_fold(&[0, 1], 1, 0);
    }

    #[test]
    fn zero_fraction() {
        let (train, test) = train_test_indices(10, 0.0, 0);
        assert!(test.is_empty());
        assert_eq!(train.len(), 10);
    }
}
