//! Histogram-based split finding (`Splitter::Binned`) — the LightGBM-style
//! answer to the exact CART scan's per-node re-sorting:
//!
//! * **Bin once per fit.** Every feature is quantile-binned into at most
//!   `n_bins` (≤ 256) bins and each sample stores one `u8` code per feature.
//!   When a feature has at most `n_bins` distinct values the binning is
//!   lossless: one bin per distinct value, and the candidate thresholds are
//!   exactly the midpoints the exact scan would pick.
//! * **Per-node histograms.** A split candidate is a boundary between two
//!   non-empty bins; scanning a node costs `O(features × touched bins)`
//!   instead of `O(features × n log n)`.
//! * **Sibling subtraction.** A parent's histogram is the elementwise sum of
//!   its children's (every sample lands in exactly one child), so only the
//!   smaller child is ever scanned — the larger child's histogram is
//!   `parent − smaller`, in place, reusing the parent's buffer.
//! * **Scratch pool.** Histogram and partition-index buffers are recycled
//!   through a free list; released histograms are zeroed only over the bin
//!   ranges they actually touched.
//! * **Per-node task splitting.** Large sibling subtrees run as separate
//!   tasks on the `em-rt` pool. Every node derives a private RNG seed from
//!   its parent's (`derive_seed`), and importances merge in fixed pre-order,
//!   so the fitted tree is bit-identical at any `EM_THREADS`.
//!
//! Small nodes fall back to the exact sorted scan (`exact_best_threshold`):
//! below `cutoff` samples, zeroing and walking `max_bins` bins costs more
//! than sorting the node outright.

use crate::matrix::Matrix;
use crate::tree::{
    exact_best_threshold, impurity_from_counts, midpoint, variance_from_sums, Node, Target,
    TreeParams,
};
use em_rt::{SliceRandom, StdRng};
use std::sync::{Arc, Mutex};

/// Minimum size of *both* children before sibling subtrees are spawned as
/// separate pool tasks (below this, dispatch overhead beats the win).
const SPAWN_MIN: usize = 256;

static HIST_SUBTRACTIONS: em_obs::Counter = em_obs::Counter::new("tree.hist_subtractions");
static SUBTREE_TASKS: em_obs::Counter = em_obs::Counter::new("tree.subtree_tasks");

/// Quantile-bin `x` for the binned engine, once. Ensembles call this on the
/// base matrix and hand each member a [`BinnedMatrix::gather`] (bootstrap) or
/// clone (shared rows) so the per-feature sorts are paid once per fit, not
/// once per tree.
pub(crate) fn bin_matrix(x: &Matrix, n_bins: usize) -> BinnedMatrix {
    let _span = em_obs::span!("tree.binning");
    BinnedMatrix::build(x, n_bins.clamp(2, 256))
}

/// Fit a tree with the binned engine. Returns the node array (same pre-order
/// layout as the exact builder) and the unnormalized per-feature importances.
/// `prebinned`, when given, must be the binning of exactly `x`'s rows.
pub(crate) fn fit_binned(
    x: &Matrix,
    target: &Target<'_>,
    w: &[f64],
    params: &TreeParams,
    prebinned: Option<BinnedMatrix>,
) -> (Vec<Node>, Vec<f64>) {
    let bm = prebinned.unwrap_or_else(|| bin_matrix(x, params.n_bins));
    debug_assert_eq!(bm.codes.len(), x.nrows() * x.ncols());
    let d = x.ncols();
    let sw = match target {
        // Slot 0 of every bin is the (unweighted) sample count used for
        // `min_samples_leaf`; the rest are the weighted class masses or the
        // weighted moment sums.
        Target::Classes { n_classes, .. } => n_classes + 1,
        Target::Values(_) => 4,
    };
    let stride = bm.max_bins * sw;
    let cutoff = (bm.max_bins / 4).max(8);
    let ctx = Ctx {
        x,
        target,
        w,
        params,
        d,
        sw,
        stride,
        cutoff,
        scratch: Scratch {
            hists: Mutex::new(Vec::new()),
            idxs: Mutex::new(Vec::new()),
            hist_len: d * stride,
            stride,
            sw,
            d,
        },
        bm,
    };
    let idx: Vec<usize> = (0..x.nrows()).collect();
    let root_hist = (idx.len() >= ctx.cutoff).then(|| ctx.scan_hist(&idx));
    let (root, imp_list) = ctx.build(idx, root_hist, 0, params.seed);
    let mut nodes = Vec::new();
    flatten(root, &mut nodes);
    let mut importances = vec![0.0; d];
    for (f, v) in imp_list {
        importances[f] += v;
    }
    (nodes, importances)
}

/// The per-fit binning: u8 codes plus, per feature and bin, the extreme
/// observed values (thresholds are midpoints between adjacent bins' `hi` and
/// `lo`, which by construction never coincide with a sample value except in
/// sub-ulp degenerate ranges). Cheap to clone: codes and edges are shared.
#[derive(Clone)]
pub(crate) struct BinnedMatrix {
    /// Row-major codes: `codes[i * d + f]`.
    codes: Arc<Vec<u8>>,
    /// Number of features (the code-row stride).
    d: usize,
    /// Widest per-feature bin count (histogram width).
    max_bins: usize,
    edges: Arc<BinEdges>,
}

/// Per feature, per bin: the extreme observed values of the binning's base
/// matrix (shared untouched by [`BinnedMatrix::gather`]).
struct BinEdges {
    /// Smallest observed value in the bin.
    bin_lo: Vec<Vec<f64>>,
    /// Largest observed value in the bin (the bin's upper edge — bin `k`
    /// holds values in `(hi[k-1], hi[k]]`).
    bin_hi: Vec<Vec<f64>>,
}

impl BinnedMatrix {
    fn build(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        let n = x.nrows();
        let d = x.ncols();
        let mut codes = vec![0u8; n * d];
        let mut bin_lo = Vec::with_capacity(d);
        let mut bin_hi = Vec::with_capacity(d);
        let mut widest = 1usize;
        let mut col: Vec<(f64, u32)> = Vec::with_capacity(n);
        for f in 0..d {
            col.clear();
            col.extend((0..n).map(|i| (x.get(i, f), i as u32)));
            col.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            // `total_cmp` sorts NaNs to the ends instead of panicking
            // mid-sort; reject them here (the exact engine rejects NaN too).
            assert!(!col[0].0.is_nan() && !col[n - 1].0.is_nan(), "NaN feature");
            let mut distinct = 1usize;
            for k in 1..n {
                if col[k].0 != col[k - 1].0 {
                    distinct += 1;
                }
            }
            // Bin upper edges: every distinct value when they fit (lossless),
            // otherwise ~equal-frequency quantile positions of the sorted
            // column (duplicates collapse, so heavy ties cost bins, not
            // correctness).
            let mut uppers: Vec<f64> = Vec::with_capacity(distinct.min(max_bins));
            if distinct <= max_bins {
                uppers.push(col[0].0);
                for k in 1..n {
                    if col[k].0 != col[k - 1].0 {
                        uppers.push(col[k].0);
                    }
                }
            } else {
                for j in 1..=max_bins {
                    let v = col[j * n / max_bins - 1].0;
                    if uppers.last() != Some(&v) {
                        uppers.push(v);
                    }
                }
            }
            // One walk in sorted order assigns every row's code (the index
            // of the bin `(hi[k-1], hi[k]]` containing its value — the last
            // edge is the column maximum, so codes always fit) and records
            // each bin's smallest observed value. Every bin contains at
            // least its own upper edge, so every `lo` slot is written.
            let mut lo = vec![0.0f64; uppers.len()];
            let mut code = 0usize;
            let mut prev_code = usize::MAX;
            for &(v, i) in &col {
                while v > uppers[code] {
                    code += 1;
                }
                if code != prev_code {
                    lo[code] = v;
                    prev_code = code;
                }
                codes[i as usize * d + f] = code as u8;
            }
            widest = widest.max(uppers.len());
            bin_lo.push(lo);
            bin_hi.push(uppers);
        }
        BinnedMatrix {
            codes: Arc::new(codes),
            d,
            max_bins: widest,
            edges: Arc::new(BinEdges { bin_lo, bin_hi }),
        }
    }

    /// The binning of `base.select_rows(idx)`: code rows are gathered, bin
    /// edges are shared. A bootstrap resample only ever repeats base rows, so
    /// its codes are exactly the base codes — no re-sort, no re-quantile.
    /// (Edges computed from the full base can differ from what binning the
    /// resample directly would produce — more bins, never coarser — but any
    /// fixed edge set is a valid binning, and in the lossless regime the
    /// split thresholds are identical either way.)
    pub(crate) fn gather(&self, idx: &[usize]) -> BinnedMatrix {
        let d = self.d;
        let mut codes = vec![0u8; idx.len() * d];
        for (r, &i) in idx.iter().enumerate() {
            codes[r * d..(r + 1) * d].copy_from_slice(&self.codes[i * d..(i + 1) * d]);
        }
        BinnedMatrix {
            codes: Arc::new(codes),
            d,
            max_bins: self.max_bins,
            edges: self.edges.clone(),
        }
    }
}

/// A node histogram: for feature `f` and bin `b`, slots
/// `buf[f * stride + b * sw ..][.. sw]`. `range[f]` is the inclusive code
/// span the node's samples touch for feature `f` (`(u16::MAX, 0)` = none).
struct HistBuf {
    buf: Vec<f64>,
    range: Vec<(u16, u16)>,
}

/// Free lists for histogram and partition-index buffers. Invariant: every
/// pooled histogram buffer is all-zero (release zeroes only the touched
/// ranges), so acquisition never pays a full clear.
struct Scratch {
    hists: Mutex<Vec<Vec<f64>>>,
    idxs: Mutex<Vec<Vec<usize>>>,
    hist_len: usize,
    stride: usize,
    sw: usize,
    d: usize,
}

impl Scratch {
    fn acquire_hist(&self) -> HistBuf {
        let buf = self
            .hists
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| vec![0.0; self.hist_len]);
        HistBuf {
            buf,
            range: vec![(u16::MAX, 0); self.d],
        }
    }

    fn release_hist(&self, mut h: HistBuf) {
        for f in 0..self.d {
            let (lo, hi) = h.range[f];
            if lo <= hi {
                let a = f * self.stride + lo as usize * self.sw;
                let b = f * self.stride + (hi as usize + 1) * self.sw;
                h.buf[a..b].fill(0.0);
            }
        }
        self.hists.lock().unwrap().push(h.buf);
    }

    fn acquire_idx(&self) -> Vec<usize> {
        self.idxs.lock().unwrap().pop().unwrap_or_default()
    }

    fn release_idx(&self, mut v: Vec<usize>) {
        v.clear();
        self.idxs.lock().unwrap().push(v);
    }
}

/// Everything a node build needs; shared immutably across subtree tasks.
struct Ctx<'a> {
    x: &'a Matrix,
    target: &'a Target<'a>,
    w: &'a [f64],
    params: &'a TreeParams,
    d: usize,
    /// Slots per bin.
    sw: usize,
    /// Slots per feature (`max_bins * sw`).
    stride: usize,
    /// Nodes smaller than this take the exact sorted-scan fallback.
    cutoff: usize,
    scratch: Scratch,
    bm: BinnedMatrix,
}

/// Built tree as boxed nodes; flattened to the exact builder's pre-order
/// array layout at the end (children can be built concurrently this way).
enum BNode {
    Leaf {
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<BNode>,
        right: Box<BNode>,
    },
}

/// Importance contributions in pre-order: `(feature, node_weight * gain)`.
type ImpList = Vec<(usize, f64)>;

/// Everything one sample-order pass over a node yields: the exact engine's
/// `node_stats` outputs plus the raw totals the histogram boundary scan
/// needs, so no per-feature totals accumulation is required.
struct NodeStats {
    impurity: f64,
    leaf_dist: Vec<f64>,
    /// `Σ w[i]` in sample order — bitwise the exact engine's `total_w`.
    total_w: f64,
    /// Classification: raw weighted class counts. Regression:
    /// `[Σw, Σwt, Σwt²]`. (In the lossless integer regime these equal the
    /// bin-order histogram sums bit for bit.)
    totals: Vec<f64>,
}

/// Mirror of `tree::node_stats` (same accumulation order, so lossless fits
/// stay bit-identical to the exact engine) that also returns the totals.
fn node_stats_totals(
    target: &Target<'_>,
    w: &[f64],
    idx: &[usize],
    criterion: crate::tree::Criterion,
) -> NodeStats {
    match target {
        Target::Classes { y, n_classes } => {
            let mut counts = vec![0.0f64; *n_classes];
            let mut tw = 0.0f64;
            for &i in idx {
                counts[y[i]] += w[i];
                tw += w[i];
            }
            let total: f64 = counts.iter().sum();
            let impurity = impurity_from_counts(&counts, total, criterion);
            let leaf_dist = if total > 0.0 {
                counts.iter().map(|c| c / total).collect()
            } else {
                vec![1.0 / *n_classes as f64; *n_classes]
            };
            NodeStats {
                impurity,
                leaf_dist,
                total_w: tw,
                totals: counts,
            }
        }
        Target::Values(t) => {
            let mut sw = 0.0;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for &i in idx {
                sw += w[i];
                sum += w[i] * t[i];
                sum_sq += w[i] * t[i] * t[i];
            }
            let mean = if sw > 0.0 { sum / sw } else { 0.0 };
            let var = if sw > 0.0 {
                (sum_sq / sw - mean * mean).max(0.0)
            } else {
                0.0
            };
            NodeStats {
                impurity: var,
                leaf_dist: vec![mean],
                total_w: sw,
                totals: vec![sw, sum, sum_sq],
            }
        }
    }
}

impl Ctx<'_> {
    /// Grow one node. `hist` is `Some` when the node runs the binned engine
    /// (`None` ⇒ this whole subtree uses the exact scan — node sizes only
    /// shrink, so the choice is consistent). `seed` is the node's private
    /// RNG stream; children derive theirs from it, so the result does not
    /// depend on which thread builds which subtree.
    fn build(
        &self,
        idx: Vec<usize>,
        hist: Option<HistBuf>,
        depth: usize,
        seed: u64,
    ) -> (BNode, ImpList) {
        let p = self.params;
        let stats = node_stats_totals(self.target, self.w, &idx, p.criterion);
        let (impurity, leaf_dist) = (stats.impurity, stats.leaf_dist);
        let stop = idx.len() < p.min_samples_split
            || p.max_depth.is_some_and(|d| depth >= d)
            || impurity <= 1e-12;
        if stop {
            return self.leaf(idx, hist, leaf_dist);
        }
        let total_w = stats.total_w;
        if total_w <= 0.0 {
            return self.leaf(idx, hist, leaf_dist);
        }
        // Same feature-subsampling semantics as the exact path, but drawn
        // from the per-node stream instead of one DFS-threaded RNG.
        let k = p.max_features.resolve(self.d);
        let mut features: Vec<usize> = (0..self.d).collect();
        if k < self.d {
            let mut rng = StdRng::seed_from_u64(seed);
            features.shuffle(&mut rng);
            features.truncate(k);
        }
        let best = match &hist {
            Some(h) => self.best_split_hist(
                h,
                &features,
                impurity,
                total_w,
                &stats.totals,
                idx.len() as f64,
            ),
            None => self.best_split_exact(&idx, &features, impurity, total_w),
        };
        let Some((feature, threshold, gain)) = best else {
            return self.leaf(idx, hist, leaf_dist);
        };
        if gain < p.min_impurity_decrease.max(1e-12) {
            return self.leaf(idx, hist, leaf_dist);
        }
        // Stable value partition — the same predicate `apply` routes by.
        let mut left_idx = self.scratch.acquire_idx();
        let mut right_idx = self.scratch.acquire_idx();
        for &i in &idx {
            if self.x.get(i, feature) <= threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        if left_idx.len() < p.min_samples_leaf || right_idx.len() < p.min_samples_leaf {
            self.scratch.release_idx(left_idx);
            self.scratch.release_idx(right_idx);
            return self.leaf(idx, hist, leaf_dist);
        }
        self.scratch.release_idx(idx);
        let (l_hist, r_hist) = self.child_hists(hist, &left_idx, &right_idx);
        let l_seed = em_rt::derive_seed(seed, 1);
        let r_seed = em_rt::derive_seed(seed, 2);
        // `threads()` (not `pool_workers()`): the runtime knob decides
        // whether subtree tasks are worth routing through the pool, so
        // `set_threads(1)` exercises the pure-recursion path in-process.
        let spawn = left_idx.len().min(right_idx.len()) >= SPAWN_MIN && em_rt::threads() > 1;
        let ((l_node, l_imp), (r_node, r_imp)) = if spawn {
            SUBTREE_TASKS.add(2);
            let l_in = Mutex::new(Some((left_idx, l_hist)));
            let r_in = Mutex::new(Some((right_idx, r_hist)));
            let l_out = Mutex::new(None);
            let r_out = Mutex::new(None);
            let l_task = || {
                let (idx, hist) = l_in.lock().unwrap().take().expect("left input");
                *l_out.lock().unwrap() = Some(self.build(idx, hist, depth + 1, l_seed));
            };
            let r_task = || {
                let (idx, hist) = r_in.lock().unwrap().take().expect("right input");
                *r_out.lock().unwrap() = Some(self.build(idx, hist, depth + 1, r_seed));
            };
            let tasks: [&(dyn Fn() + Sync); 2] = [&l_task, &r_task];
            em_rt::scope(0, &tasks);
            (
                l_out.into_inner().unwrap().expect("left subtree"),
                r_out.into_inner().unwrap().expect("right subtree"),
            )
        } else {
            (
                self.build(left_idx, l_hist, depth + 1, l_seed),
                self.build(right_idx, r_hist, depth + 1, r_seed),
            )
        };
        // Merge in fixed pre-order (self, left, right): the final
        // per-feature sums see one accumulation order at any thread count.
        let mut imp = Vec::with_capacity(1 + l_imp.len() + r_imp.len());
        imp.push((feature, total_w * gain));
        imp.extend(l_imp);
        imp.extend(r_imp);
        (
            BNode::Split {
                feature,
                threshold,
                left: Box::new(l_node),
                right: Box::new(r_node),
            },
            imp,
        )
    }

    fn leaf(&self, idx: Vec<usize>, hist: Option<HistBuf>, dist: Vec<f64>) -> (BNode, ImpList) {
        self.scratch.release_idx(idx);
        if let Some(h) = hist {
            self.scratch.release_hist(h);
        }
        (BNode::Leaf { dist }, Vec::new())
    }

    /// Histogram of `idx`: one sequential pass in index order (each node's
    /// histogram is owned by a single task — no parallel accumulation, no
    /// order divergence).
    fn scan_hist(&self, idx: &[usize]) -> HistBuf {
        let mut h = self.scratch.acquire_hist();
        let codes = &self.bm.codes;
        let d = self.d;
        let touch = |range: &mut (u16, u16), c: u16| {
            if c < range.0 {
                range.0 = c;
            }
            if c > range.1 {
                range.1 = c;
            }
        };
        match self.target {
            Target::Classes { y, .. } => {
                for &i in idx {
                    let wi = self.w[i];
                    let yi = y[i];
                    for (f, &c) in codes[i * d..(i + 1) * d].iter().enumerate() {
                        let off = f * self.stride + c as usize * self.sw;
                        h.buf[off] += 1.0;
                        h.buf[off + 1 + yi] += wi;
                        touch(&mut h.range[f], c as u16);
                    }
                }
            }
            Target::Values(t) => {
                for &i in idx {
                    let wi = self.w[i];
                    let wt = wi * t[i];
                    let wt2 = wi * t[i] * t[i];
                    for (f, &c) in codes[i * d..(i + 1) * d].iter().enumerate() {
                        let off = f * self.stride + c as usize * self.sw;
                        h.buf[off] += 1.0;
                        h.buf[off + 1] += wi;
                        h.buf[off + 2] += wt;
                        h.buf[off + 3] += wt2;
                        touch(&mut h.range[f], c as u16);
                    }
                }
            }
        }
        h
    }

    /// Children histograms from the parent's, consuming the parent buffer.
    /// A child below `cutoff` gets `None` (exact-fallback subtree). The
    /// larger child is derived by sibling subtraction when the parent's
    /// touched span is narrower than a direct scan.
    fn child_hists(
        &self,
        parent: Option<HistBuf>,
        left: &[usize],
        right: &[usize],
    ) -> (Option<HistBuf>, Option<HistBuf>) {
        let Some(parent) = parent else {
            return (None, None);
        };
        let l_need = left.len() >= self.cutoff;
        let r_need = right.len() >= self.cutoff;
        if !l_need && !r_need {
            self.scratch.release_hist(parent);
            return (None, None);
        }
        let left_is_small = left.len() <= right.len();
        let (small, large) = if left_is_small {
            (left, right)
        } else {
            (right, left)
        };
        let small_need = if left_is_small { l_need } else { r_need };
        let large_need = if left_is_small { r_need } else { l_need };
        let mut small_hist = None;
        let mut large_hist = None;
        if large_need {
            let parent_span: usize = parent
                .range
                .iter()
                .map(|&(lo, hi)| {
                    if lo <= hi {
                        hi as usize - lo as usize + 1
                    } else {
                        0
                    }
                })
                .sum();
            // Marginal cost of the subtraction route (the small scan is sunk
            // when the small child needs its histogram anyway) vs a direct
            // scan of the larger child. Pure size arithmetic — deterministic.
            let sub_cost = parent_span + if small_need { 0 } else { small.len() * self.d };
            if sub_cost <= large.len() * self.d {
                let sh = self.scan_hist(small);
                let mut lh = parent;
                self.subtract(&mut lh, &sh);
                HIST_SUBTRACTIONS.incr();
                large_hist = Some(lh);
                if small_need {
                    small_hist = Some(sh);
                } else {
                    self.scratch.release_hist(sh);
                }
            } else {
                large_hist = Some(self.scan_hist(large));
                if small_need {
                    small_hist = Some(self.scan_hist(small));
                }
                self.scratch.release_hist(parent);
            }
        } else {
            small_hist = Some(self.scan_hist(small));
            self.scratch.release_hist(parent);
        }
        if left_is_small {
            (small_hist, large_hist)
        } else {
            (large_hist, small_hist)
        }
    }

    /// `parent -= child`, elementwise over the child's touched ranges. The
    /// result is the sibling's histogram: the partition assigns every parent
    /// sample to exactly one child, so `hist(parent) = hist(l) + hist(r)`
    /// slot for slot (the integer count slots are exact; fully-subtracted
    /// float slots cancel to +0.0). The buffer keeps the parent's
    /// conservative ranges for release-time zeroing.
    fn subtract(&self, parent: &mut HistBuf, child: &HistBuf) {
        for f in 0..self.d {
            let (lo, hi) = child.range[f];
            if lo > hi {
                continue;
            }
            let a = f * self.stride + lo as usize * self.sw;
            let b = f * self.stride + (hi as usize + 1) * self.sw;
            for (pv, cv) in parent.buf[a..b].iter_mut().zip(&child.buf[a..b]) {
                *pv -= *cv;
            }
        }
    }

    /// Best split over the histogram: candidates are boundaries between
    /// consecutive non-empty bins, scanned left to right per feature with
    /// the exact engine's strict-improvement tie-break. Thresholds are
    /// midpoints of adjacent bins' extreme observed values — in the lossless
    /// regime these are exactly the exact scan's sample midpoints. `totals`
    /// and `n_tot` come from the node's sample-order stats pass; rights are
    /// totals minus lefts.
    #[allow(clippy::too_many_arguments)]
    fn best_split_hist(
        &self,
        h: &HistBuf,
        features: &[usize],
        parent_imp: f64,
        total_w: f64,
        totals: &[f64],
        n_tot: f64,
    ) -> Option<(usize, f64, f64)> {
        let min_leaf = self.params.min_samples_leaf as f64;
        let criterion = self.params.criterion;
        let mut best: Option<(usize, f64, f64)> = None;
        let push = |best: &mut Option<(usize, f64, f64)>, f: usize, thr: f64, gain: f64| {
            if best.is_none_or(|(_, _, g)| gain > g) {
                *best = Some((f, thr, gain));
            }
        };
        match self.target {
            Target::Classes { n_classes, .. } => {
                let nc = *n_classes;
                let tot = totals;
                let mut lc = vec![0.0f64; nc];
                let mut rc = vec![0.0f64; nc];
                for &f in features {
                    let (rmin, rmax) = h.range[f];
                    if rmin >= rmax {
                        continue;
                    }
                    let base = f * self.stride;
                    lc.fill(0.0);
                    let mut lw = 0.0f64;
                    let mut n_left = 0.0f64;
                    let mut last_present: Option<usize> = None;
                    for b in rmin as usize..=rmax as usize {
                        let off = base + b * self.sw;
                        if h.buf[off] == 0.0 {
                            continue;
                        }
                        if let Some(prev) = last_present {
                            if n_left >= min_leaf && n_tot - n_left >= min_leaf {
                                let rw = total_w - lw;
                                for ((r, &t), &l) in rc.iter_mut().zip(tot).zip(&lc) {
                                    *r = t - l;
                                }
                                let imp_l = impurity_from_counts(&lc, lw, criterion);
                                let imp_r = impurity_from_counts(&rc, rw, criterion);
                                let gain = parent_imp - (lw * imp_l + rw * imp_r) / total_w;
                                let thr = midpoint(
                                    self.bm.edges.bin_hi[f][prev],
                                    self.bm.edges.bin_lo[f][b],
                                );
                                push(&mut best, f, thr, gain);
                            }
                        }
                        n_left += h.buf[off];
                        for (c, l) in lc.iter_mut().enumerate() {
                            let v = h.buf[off + 1 + c];
                            *l += v;
                            lw += v;
                        }
                        last_present = Some(b);
                    }
                }
            }
            Target::Values(_) => {
                let (tw, tsum, tsq) = (totals[0], totals[1], totals[2]);
                for &f in features {
                    let (rmin, rmax) = h.range[f];
                    if rmin >= rmax {
                        continue;
                    }
                    let base = f * self.stride;
                    let (mut n_left, mut lw, mut lsum, mut lsq) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                    let mut last_present: Option<usize> = None;
                    for b in rmin as usize..=rmax as usize {
                        let off = base + b * self.sw;
                        if h.buf[off] == 0.0 {
                            continue;
                        }
                        if let Some(prev) = last_present {
                            if n_left >= min_leaf && n_tot - n_left >= min_leaf {
                                let (rw, rsum, rsq) = (tw - lw, tsum - lsum, tsq - lsq);
                                let imp_l = variance_from_sums(lw, lsum, lsq);
                                let imp_r = variance_from_sums(rw, rsum, rsq);
                                let gain = parent_imp - (lw * imp_l + rw * imp_r) / total_w;
                                let thr = midpoint(
                                    self.bm.edges.bin_hi[f][prev],
                                    self.bm.edges.bin_lo[f][b],
                                );
                                push(&mut best, f, thr, gain);
                            }
                        }
                        n_left += h.buf[off];
                        lw += h.buf[off + 1];
                        lsum += h.buf[off + 2];
                        lsq += h.buf[off + 3];
                        last_present = Some(b);
                    }
                }
            }
        }
        best
    }

    /// Exact-fallback split search for small nodes — the CART scan verbatim.
    fn best_split_exact(
        &self,
        idx: &[usize],
        features: &[usize],
        parent_imp: f64,
        total_w: f64,
    ) -> Option<(usize, f64, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in features {
            if let Some((threshold, gain)) = exact_best_threshold(
                self.x,
                self.target,
                self.w,
                idx,
                f,
                parent_imp,
                total_w,
                self.params.min_samples_leaf,
                self.params.criterion,
            ) {
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }
}

/// Pre-order flattening to the exact builder's array layout (parent, left
/// subtree, right subtree).
fn flatten(node: BNode, nodes: &mut Vec<Node>) -> usize {
    match node {
        BNode::Leaf { dist } => {
            let my = nodes.len();
            nodes.push(Node::Leaf { dist });
            my
        }
        BNode::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let my = nodes.len();
            nodes.push(Node::Leaf { dist: Vec::new() });
            let l = flatten(*left, nodes);
            let r = flatten(*right, nodes);
            nodes[my] = Node::Split {
                feature,
                threshold,
                left: l,
                right: r,
            };
            my
        }
    }
}
