//! Evaluation metrics: the paper's evaluation function is F1 on the positive
//! (matching) class (§II-A).

/// Binary confusion-matrix counts for the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Count a prediction/truth pair list. Labels are class indices;
    /// class 1 is "matching" (positive).
    pub fn from_predictions(y_true: &[usize], y_pred: &[usize]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t == 1, p == 1) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP); 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when there are no true positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// F1 score of class 1 directly from label vectors.
pub fn f1_score(y_true: &[usize], y_pred: &[usize]) -> f64 {
    Confusion::from_predictions(y_true, y_pred).f1()
}

/// Precision of class 1 directly from label vectors.
pub fn precision_score(y_true: &[usize], y_pred: &[usize]) -> f64 {
    Confusion::from_predictions(y_true, y_pred).precision()
}

/// Recall of class 1 directly from label vectors.
pub fn recall_score(y_true: &[usize], y_pred: &[usize]) -> f64 {
    Confusion::from_predictions(y_true, y_pred).recall()
}

/// Accuracy directly from label vectors.
pub fn accuracy_score(y_true: &[usize], y_pred: &[usize]) -> f64 {
    Confusion::from_predictions(y_true, y_pred).accuracy()
}

/// A point on the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Precision-recall curve from match probabilities: one point per distinct
/// score, thresholds descending (recall ascending). Useful for picking
/// operating points on imbalanced EM data.
pub fn precision_recall_curve(y_true: &[usize], scores: &[f64]) -> Vec<PrPoint> {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let total_pos = y_true.iter().filter(|&&c| c == 1).count();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let mut out = Vec::new();
    let mut tp = 0usize;
    let mut predicted = 0usize;
    let mut i = 0;
    while i < order.len() {
        // Consume all samples sharing this score before emitting a point.
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            predicted += 1;
            tp += usize::from(y_true[order[i]] == 1);
            i += 1;
        }
        out.push(PrPoint {
            threshold,
            precision: tp as f64 / predicted as f64,
            recall: if total_pos == 0 {
                0.0
            } else {
                tp as f64 / total_pos as f64
            },
        });
    }
    out
}

/// Average precision: the area under the PR curve via the step-wise
/// interpolation sklearn uses (`sum (R_i - R_{i-1}) * P_i`).
pub fn average_precision(y_true: &[usize], scores: &[f64]) -> f64 {
    let curve = precision_recall_curve(y_true, scores);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = vec![1, 0, 1, 0];
        assert_eq!(f1_score(&y, &y), 1.0);
        assert_eq!(accuracy_score(&y, &y), 1.0);
    }

    #[test]
    fn known_confusion() {
        // tp=2 fp=1 fn=1 tn=1
        let y_true = vec![1, 1, 1, 0, 0];
        let y_pred = vec![1, 1, 0, 1, 0];
        let c = Confusion::from_predictions(&y_true, &y_pred);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        // No predicted positives.
        assert_eq!(f1_score(&[1, 1], &[0, 0]), 0.0);
        // No true positives at all.
        assert_eq!(f1_score(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(precision_score(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(recall_score(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let y_true = vec![1, 1, 1, 1, 0, 0, 0, 0];
        let y_pred = vec![1, 1, 0, 0, 1, 0, 0, 0];
        let p = precision_score(&y_true, &y_pred);
        let r = recall_score(&y_true, &y_pred);
        let f = f1_score(&y_true, &y_pred);
        assert!((f - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_perfect_ranking() {
        let y = vec![1, 1, 0, 0];
        let s = vec![0.9, 0.8, 0.2, 0.1];
        let curve = precision_recall_curve(&y, &s);
        // Recall climbs to 1.0 while precision stays 1.0, then decays.
        assert_eq!(curve[1].recall, 1.0);
        assert_eq!(curve[1].precision, 1.0);
        assert_eq!(average_precision(&y, &s), 1.0);
    }

    #[test]
    fn pr_curve_worst_ranking() {
        let y = vec![0, 0, 1];
        let s = vec![0.9, 0.8, 0.1];
        let ap = average_precision(&y, &s);
        assert!((ap - 1.0 / 3.0).abs() < 1e-12, "{ap}");
    }

    #[test]
    fn pr_curve_handles_ties() {
        let y = vec![1, 0, 1, 0];
        let s = vec![0.5, 0.5, 0.5, 0.5];
        let curve = precision_recall_curve(&y, &s);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].precision, 0.5);
        assert_eq!(curve[0].recall, 1.0);
    }

    #[test]
    fn average_precision_is_bounded() {
        let y = vec![1, 0, 1, 0, 0, 1];
        let s = vec![0.7, 0.6, 0.9, 0.3, 0.2, 0.4];
        let ap = average_precision(&y, &s);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = f1_score(&[1], &[1, 0]);
    }
}
