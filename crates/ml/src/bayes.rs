//! Gaussian naive Bayes — one of the "all-model" search-space members
//! (paper Fig. 4 lists Naive Bayes among Magellan's candidate models).

use crate::jsonio;
use crate::matrix::Matrix;
use crate::Classifier;
use em_rt::Json;

/// Gaussian-NB hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNbParams {
    /// Portion of the largest feature variance added to every variance for
    /// numerical stability (sklearn's `var_smoothing`).
    pub var_smoothing: f64,
}

impl Default for GaussianNbParams {
    fn default() -> Self {
        GaussianNbParams {
            var_smoothing: 1e-9,
        }
    }
}

/// Gaussian naive Bayes classifier with weighted maximum-likelihood
/// estimates of per-class feature means and variances.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Hyperparameters.
    pub params: GaussianNbParams,
    // per class: prior, per-feature mean, per-feature variance
    class_log_prior: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
    n_classes: usize,
}

impl GaussianNb {
    /// Create an unfitted model.
    pub fn new(params: GaussianNbParams) -> Self {
        GaussianNb {
            params,
            class_log_prior: Vec::new(),
            means: Vec::new(),
            variances: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize, sample_weight: Option<&[f64]>) {
        let n = x.nrows();
        let d = x.ncols();
        let w: Vec<f64> = sample_weight.map_or_else(|| vec![1.0; n], <[f64]>::to_vec);
        self.n_classes = n_classes;
        let mut class_w = vec![0.0f64; n_classes];
        let mut sums = vec![vec![0.0f64; d]; n_classes];
        let mut sq_sums = vec![vec![0.0f64; d]; n_classes];
        for (r, row) in x.rows_iter().enumerate() {
            let c = y[r];
            class_w[c] += w[r];
            for (j, &v) in row.iter().enumerate() {
                sums[c][j] += w[r] * v;
                sq_sums[c][j] += w[r] * v * v;
            }
        }
        let total_w: f64 = class_w.iter().sum();
        self.means = Vec::with_capacity(n_classes);
        self.variances = Vec::with_capacity(n_classes);
        self.class_log_prior = Vec::with_capacity(n_classes);
        let mut max_var = 0.0f64;
        let mut raw_vars = vec![vec![0.0f64; d]; n_classes];
        for c in 0..n_classes {
            for j in 0..d {
                if class_w[c] > 0.0 {
                    let m = sums[c][j] / class_w[c];
                    let v = (sq_sums[c][j] / class_w[c] - m * m).max(0.0);
                    raw_vars[c][j] = v;
                    max_var = max_var.max(v);
                }
            }
        }
        let eps = self.params.var_smoothing * max_var.max(1e-12);
        for c in 0..n_classes {
            let prior = if total_w > 0.0 && class_w[c] > 0.0 {
                (class_w[c] / total_w).ln()
            } else {
                f64::NEG_INFINITY
            };
            self.class_log_prior.push(prior);
            let mean_c: Vec<f64> = (0..d)
                .map(|j| {
                    if class_w[c] > 0.0 {
                        sums[c][j] / class_w[c]
                    } else {
                        0.0
                    }
                })
                .collect();
            let var_c: Vec<f64> = (0..d).map(|j| raw_vars[c][j] + eps).collect();
            self.means.push(mean_c);
            self.variances.push(var_c);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.means.is_empty(), "fit before predicting");
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            let log_probs: Vec<f64> = (0..self.n_classes)
                .map(|c| {
                    let mut lp = self.class_log_prior[c];
                    if lp.is_finite() {
                        for (j, &v) in row.iter().enumerate() {
                            let var = self.variances[c][j];
                            let diff = v - self.means[c][j];
                            lp += -0.5
                                * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                        }
                    }
                    lp
                })
                .collect();
            // Log-sum-exp normalization.
            let m = log_probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let denom: f64 = log_probs.iter().map(|&lp| (lp - m).exp()).sum();
            for (c, &lp) in log_probs.iter().enumerate() {
                out.set(r, c, (lp - m).exp() / denom);
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn save_json(&self) -> Json {
        self.to_json()
    }
}

impl GaussianNb {
    /// Serialize the fitted model for the model artifact. Log-priors can be
    /// `-inf` (a class absent from the training data), which the shared
    /// helpers encode as the string `"-inf"`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "params",
                Json::obj([("var_smoothing", jsonio::num(self.params.var_smoothing))]),
            ),
            ("class_log_prior", jsonio::nums(&self.class_log_prior)),
            (
                "means",
                Json::arr(self.means.iter().map(|m| jsonio::nums(m))),
            ),
            (
                "variances",
                Json::arr(self.variances.iter().map(|v| jsonio::nums(v))),
            ),
            ("n_classes", Json::from(self.n_classes)),
        ])
    }

    /// Inverse of [`GaussianNb::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let p = jsonio::field(j, "params")?;
        let rows = |key: &str| -> Result<Vec<Vec<f64>>, String> {
            jsonio::field(j, key)?
                .as_arr()
                .ok_or_else(|| format!("{key} must be an array"))?
                .iter()
                .map(jsonio::f64_vec)
                .collect()
        };
        Ok(GaussianNb {
            params: GaussianNbParams {
                var_smoothing: jsonio::as_f64(jsonio::field(p, "var_smoothing")?)?,
            },
            class_log_prior: jsonio::f64_vec(jsonio::field(j, "class_log_prior")?)?,
            means: rows("means")?,
            variances: rows("variances")?,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = em_rt::StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let mu = if c == 0 { -1.0 } else { 1.0 };
            rows.push(vec![
                mu + rng.random_range(-0.5..0.5),
                mu + rng.random_range(-0.5..0.5),
            ]);
            y.push(c);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = gaussian_blobs(300, 1);
        let mut nb = GaussianNb::new(GaussianNbParams::default());
        nb.fit(&x, &y, 2, None);
        let acc = nb
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn priors_reflect_imbalance() {
        // 90/10 class split, identical features: prediction follows the prior.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            rows.push(vec![0.0]);
            y.push(usize::from(i >= 90));
        }
        let x = Matrix::from_rows(&rows);
        let mut nb = GaussianNb::new(GaussianNbParams::default());
        nb.fit(&x, &y, 2, None);
        let p = nb.predict_proba(&Matrix::from_rows(&[vec![0.0]]));
        assert!(p.get(0, 0) > 0.85);
    }

    #[test]
    fn sample_weights_change_priors() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]);
        let y = vec![0, 1];
        let mut nb = GaussianNb::new(GaussianNbParams::default());
        nb.fit(&x, &y, 2, Some(&[9.0, 1.0]));
        let p = nb.predict_proba(&Matrix::from_rows(&[vec![0.0]]));
        assert!((p.get(0, 0) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let (x, y) = gaussian_blobs(100, 2);
        let mut nb = GaussianNb::new(GaussianNbParams::default());
        nb.fit(&x, &y, 2, None);
        let p = nb.predict_proba(&x);
        for r in 0..p.nrows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_variance_features_do_not_crash() {
        // Constant feature alongside an informative one.
        let x = Matrix::from_rows(&[
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![1.0, -1.2],
            vec![1.0, 1.2],
        ]);
        let y = vec![0, 1, 0, 1];
        let mut nb = GaussianNb::new(GaussianNbParams::default());
        nb.fit(&x, &y, 2, None);
        assert_eq!(nb.predict(&x), y);
    }
}
