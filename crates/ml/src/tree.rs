//! CART decision trees: the building block of every tree ensemble in this
//! crate (random forest, extra-trees, AdaBoost, gradient boosting) and of the
//! SMAC surrogate model in `em-automl`.
//!
//! Supports weighted samples, gini/entropy impurity for classification and
//! MSE for regression, per-node random feature subsampling (`max_features`),
//! and the extra-trees "random threshold" splitter.

use crate::jsonio;
use crate::matrix::Matrix;
use em_rt::Json;
use em_rt::SliceRandom;
use em_rt::StdRng;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity (classification).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Variance reduction (regression).
    Mse,
}

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART).
    All,
    /// `ceil(sqrt(d))` features (random-forest default).
    Sqrt,
    /// `ceil(log2(d))` features.
    Log2,
    /// A fraction of the features, `ceil(fraction * d)` (auto-sklearn encodes
    /// `max_features` this way — see paper Fig. 11's 0.9008...).
    Fraction(f64),
    /// An absolute count, clamped to `[1, d]`.
    Count(usize),
}

impl MaxFeatures {
    /// Resolve to a concrete feature count for dimensionality `d`.
    pub fn resolve(&self, d: usize) -> usize {
        if d == 0 {
            return 0;
        }
        let k = match *self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Fraction(f) => ((f.clamp(0.0, 1.0)) * d as f64).ceil() as usize,
            MaxFeatures::Count(c) => c,
        };
        k.clamp(1, d)
    }
}

/// Threshold-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Splitter {
    /// Exhaustive best split per candidate feature (CART / random forest).
    Best,
    /// One uniformly random threshold per candidate feature (extra-trees).
    Random,
    /// Histogram-based best split: features are quantile-binned once per fit
    /// into u8 codes and split candidates are scanned per bin instead of per
    /// sorted sample (see `crate::binned`). When every feature has at most
    /// `n_bins` distinct values the binning is lossless and the fitted tree
    /// matches [`Splitter::Best`]; otherwise it is a (deterministic)
    /// approximation that trades threshold resolution for speed.
    Binned,
}

impl Splitter {
    /// Stable artifact name of the splitter.
    pub fn as_str(&self) -> &'static str {
        match self {
            Splitter::Best => "best",
            Splitter::Random => "random",
            Splitter::Binned => "binned",
        }
    }

    /// Inverse of [`Splitter::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "best" => Ok(Splitter::Best),
            "random" => Ok(Splitter::Random),
            "binned" => Ok(Splitter::Binned),
            other => Err(format!("unknown splitter {other:?}")),
        }
    }

    /// Apply the `EM_BINNED` environment override: `on`/`1`/`true` swaps
    /// [`Splitter::Best`] for [`Splitter::Binned`] at fit time,
    /// `off`/`0`/`false` swaps `Binned` back to the exact path, anything
    /// else (or unset) leaves the requested splitter alone.
    /// [`Splitter::Random`] is never overridden — extra-trees semantics are
    /// a different estimator, not an execution strategy.
    ///
    /// The override affects only which engine runs; `TreeParams` keeps (and
    /// serializes) the splitter that was requested.
    pub(crate) fn effective(self) -> Splitter {
        if self == Splitter::Random {
            return self;
        }
        match std::env::var("EM_BINNED") {
            Ok(v) => match v.as_str() {
                "on" | "1" | "true" => Splitter::Binned,
                "off" | "0" | "false" => Splitter::Best,
                _ => self,
            },
            Err(_) => self,
        }
    }
}

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Split-quality criterion.
    pub criterion: Criterion,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Per-split feature subsampling.
    pub max_features: MaxFeatures,
    /// Threshold-selection strategy.
    pub splitter: Splitter,
    /// Minimum impurity decrease required to accept a split.
    pub min_impurity_decrease: f64,
    /// RNG seed for feature subsampling / random thresholds.
    pub seed: u64,
    /// Maximum histogram bins per feature for [`Splitter::Binned`]
    /// (clamped to `2..=256` so codes fit in a `u8`; ignored by the other
    /// splitters).
    pub n_bins: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            criterion: Criterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            splitter: Splitter::Best,
            min_impurity_decrease: 0.0,
            seed: 0,
            n_bins: 256,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        /// Classification: weighted class distribution (normalized).
        /// Regression: single-element vector holding the leaf mean.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree (classification or regression depending on
/// which `fit_*` constructor was used).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    /// Number of classes (0 for a regression tree).
    n_classes: usize,
    n_features: usize,
    /// Unnormalized mean-decrease-in-impurity per feature, accumulated at
    /// fit time (weight-of-node × impurity decrease per split).
    importances: Vec<f64>,
}

/// Target wrapper so classification and regression share one builder.
pub(crate) enum Target<'a> {
    Classes { y: &'a [usize], n_classes: usize },
    Values(&'a [f64]),
}

impl DecisionTree {
    /// Fit a classification tree.
    ///
    /// `y` holds class indices in `0..n_classes`; `sample_weight` defaults to
    /// uniform weights. NaN feature values are rejected: run an imputer first.
    ///
    /// # Panics
    /// On shape mismatches, NaN features, or an MSE criterion.
    pub fn fit_classifier(
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        sample_weight: Option<&[f64]>,
        params: TreeParams,
    ) -> Self {
        assert_ne!(
            params.criterion,
            Criterion::Mse,
            "use fit_regressor for MSE"
        );
        assert_eq!(x.nrows(), y.len(), "X/y length mismatch");
        assert!(!x.has_nan(), "NaN features: impute before fitting trees");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        Self::fit_inner(
            x,
            Target::Classes { y, n_classes },
            sample_weight,
            params,
            None,
        )
    }

    /// [`DecisionTree::fit_classifier`] with a pre-computed binning of `x`
    /// (ignored unless the binned engine runs). Ensembles use this to pay
    /// the per-feature binning sorts once per fit instead of once per tree.
    pub(crate) fn fit_classifier_prebinned(
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        sample_weight: Option<&[f64]>,
        params: TreeParams,
        prebinned: Option<crate::binned::BinnedMatrix>,
    ) -> Self {
        assert_ne!(
            params.criterion,
            Criterion::Mse,
            "use fit_regressor for MSE"
        );
        assert_eq!(x.nrows(), y.len(), "X/y length mismatch");
        assert!(!x.has_nan(), "NaN features: impute before fitting trees");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        Self::fit_inner(
            x,
            Target::Classes { y, n_classes },
            sample_weight,
            params,
            prebinned,
        )
    }

    /// [`DecisionTree::fit_regressor`] with a pre-computed binning of `x`
    /// (ignored unless the binned engine runs).
    pub(crate) fn fit_regressor_prebinned(
        x: &Matrix,
        targets: &[f64],
        sample_weight: Option<&[f64]>,
        mut params: TreeParams,
        prebinned: Option<crate::binned::BinnedMatrix>,
    ) -> Self {
        params.criterion = Criterion::Mse;
        assert_eq!(x.nrows(), targets.len(), "X/y length mismatch");
        assert!(!x.has_nan(), "NaN features: impute before fitting trees");
        Self::fit_inner(x, Target::Values(targets), sample_weight, params, prebinned)
    }

    /// Fit a regression tree (criterion is forced to MSE).
    ///
    /// # Panics
    /// On shape mismatches or NaN features.
    pub fn fit_regressor(
        x: &Matrix,
        targets: &[f64],
        sample_weight: Option<&[f64]>,
        mut params: TreeParams,
    ) -> Self {
        params.criterion = Criterion::Mse;
        assert_eq!(x.nrows(), targets.len(), "X/y length mismatch");
        assert!(!x.has_nan(), "NaN features: impute before fitting trees");
        Self::fit_inner(x, Target::Values(targets), sample_weight, params, None)
    }

    fn fit_inner(
        x: &Matrix,
        target: Target<'_>,
        sample_weight: Option<&[f64]>,
        params: TreeParams,
        prebinned: Option<crate::binned::BinnedMatrix>,
    ) -> Self {
        let n = x.nrows();
        assert!(n > 0, "cannot fit a tree on zero samples");
        let default_w;
        let w: &[f64] = match sample_weight {
            Some(w) => {
                assert_eq!(w.len(), n, "weight length mismatch");
                w
            }
            None => {
                default_w = vec![1.0; n];
                &default_w
            }
        };
        let n_classes = match &target {
            Target::Classes { n_classes, .. } => *n_classes,
            Target::Values(_) => 0,
        };
        let mut tree = DecisionTree {
            params: params.clone(),
            nodes: Vec::new(),
            n_classes,
            n_features: x.ncols(),
            importances: vec![0.0; x.ncols()],
        };
        // `EM_BINNED` swaps the split engine without touching the stored
        // (and serialized) hyperparameters.
        let splitter = params.splitter.effective();
        if splitter == Splitter::Binned {
            BINNED_FITS.incr();
            let (nodes, importances) =
                crate::binned::fit_binned(x, &target, w, &tree.params, prebinned);
            tree.nodes = nodes;
            tree.importances = importances;
        } else {
            EXACT_FITS.incr();
            let mut rng = StdRng::seed_from_u64(params.seed);
            let idx: Vec<usize> = (0..n).collect();
            tree.build(x, &target, w, idx, 0, &mut rng, splitter);
        }
        NODES.add(tree.nodes.len() as u64);
        tree
    }

    /// Recursively grow the tree; returns the new node's index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        target: &Target<'_>,
        w: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut StdRng,
        splitter: Splitter,
    ) -> usize {
        let (impurity, leaf_dist) = self.node_stats(target, w, &idx);
        let stop = idx.len() < self.params.min_samples_split
            || self.params.max_depth.is_some_and(|d| depth >= d)
            || impurity <= 1e-12;
        if !stop {
            if let Some((feature, threshold, gain)) =
                self.best_split(x, target, w, &idx, rng, splitter)
            {
                if gain >= self.params.min_impurity_decrease.max(1e-12) {
                    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                        idx.iter().partition(|&&i| x.get(i, feature) <= threshold);
                    if left_idx.len() >= self.params.min_samples_leaf
                        && right_idx.len() >= self.params.min_samples_leaf
                    {
                        // Mean-decrease-in-impurity accounting: gains are
                        // weighted by the node's sample mass, matching
                        // sklearn's `feature_importances_`.
                        let node_w: f64 = idx.iter().map(|&i| w[i]).sum();
                        self.importances[feature] += node_w * gain;
                        // Reserve a slot so children see stable parent index.
                        let my = self.nodes.len();
                        self.nodes.push(Node::Leaf { dist: Vec::new() });
                        let left = self.build(x, target, w, left_idx, depth + 1, rng, splitter);
                        let right = self.build(x, target, w, right_idx, depth + 1, rng, splitter);
                        self.nodes[my] = Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        };
                        return my;
                    }
                }
            }
        }
        let my = self.nodes.len();
        self.nodes.push(Node::Leaf { dist: leaf_dist });
        my
    }

    /// Impurity and leaf payload for a node's sample set.
    fn node_stats(&self, target: &Target<'_>, w: &[f64], idx: &[usize]) -> (f64, Vec<f64>) {
        node_stats(target, w, idx, self.params.criterion)
    }

    /// Search candidate features for the best split.
    /// Returns `(feature, threshold, weighted impurity decrease)`.
    fn best_split(
        &self,
        x: &Matrix,
        target: &Target<'_>,
        w: &[f64],
        idx: &[usize],
        rng: &mut StdRng,
        splitter: Splitter,
    ) -> Option<(usize, f64, f64)> {
        let d = x.ncols();
        let k = self.params.max_features.resolve(d);
        let mut features: Vec<usize> = (0..d).collect();
        if k < d {
            features.shuffle(rng);
            features.truncate(k);
        }
        let (parent_imp, _) = self.node_stats(target, w, idx);
        let total_w: f64 = idx.iter().map(|&i| w[i]).sum();
        if total_w <= 0.0 {
            return None;
        }
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &features {
            let candidate = match splitter {
                Splitter::Best | Splitter::Binned => exact_best_threshold(
                    x,
                    target,
                    w,
                    idx,
                    f,
                    parent_imp,
                    total_w,
                    self.params.min_samples_leaf,
                    self.params.criterion,
                ),
                Splitter::Random => {
                    self.random_threshold_for(x, target, w, idx, f, parent_imp, total_w, rng)
                }
            };
            if let Some((threshold, gain)) = candidate {
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }

    /// Extra-trees: a single uniform threshold in the node's value range.
    /// One fused pass accumulates both children's statistics — no partition
    /// vectors, no second sweep — with the identical accumulation order (and
    /// therefore bit-identical gains) as partitioning followed by
    /// [`node_stats`].
    #[allow(clippy::too_many_arguments)]
    fn random_threshold_for(
        &self,
        x: &Matrix,
        target: &Target<'_>,
        w: &[f64],
        idx: &[usize],
        f: usize,
        parent_imp: f64,
        total_w: f64,
        rng: &mut StdRng,
    ) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in idx {
            let v = x.get(i, f);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi <= lo {
            return None;
        }
        let threshold = rng.random_range(lo..hi);
        let min_leaf = self.params.min_samples_leaf;
        match target {
            Target::Classes { y, n_classes } => {
                let mut left_counts = vec![0.0f64; *n_classes];
                let mut right_counts = vec![0.0f64; *n_classes];
                let (mut lw, mut rw) = (0.0f64, 0.0f64);
                let (mut n_left, mut n_right) = (0usize, 0usize);
                for &i in idx {
                    if x.get(i, f) <= threshold {
                        left_counts[y[i]] += w[i];
                        lw += w[i];
                        n_left += 1;
                    } else {
                        right_counts[y[i]] += w[i];
                        rw += w[i];
                        n_right += 1;
                    }
                }
                if n_left < min_leaf || n_right < min_leaf {
                    return None;
                }
                let left_total: f64 = left_counts.iter().sum();
                let right_total: f64 = right_counts.iter().sum();
                let imp_l = impurity_from_counts(&left_counts, left_total, self.params.criterion);
                let imp_r = impurity_from_counts(&right_counts, right_total, self.params.criterion);
                let gain = parent_imp - (lw * imp_l + rw * imp_r) / total_w;
                Some((threshold, gain))
            }
            Target::Values(t) => {
                let (mut lw, mut lsum, mut lsq) = (0.0f64, 0.0f64, 0.0f64);
                let (mut rw, mut rsum, mut rsq) = (0.0f64, 0.0f64, 0.0f64);
                let (mut n_left, mut n_right) = (0usize, 0usize);
                for &i in idx {
                    if x.get(i, f) <= threshold {
                        lw += w[i];
                        lsum += w[i] * t[i];
                        lsq += w[i] * t[i] * t[i];
                        n_left += 1;
                    } else {
                        rw += w[i];
                        rsum += w[i] * t[i];
                        rsq += w[i] * t[i] * t[i];
                        n_right += 1;
                    }
                }
                if n_left < min_leaf || n_right < min_leaf {
                    return None;
                }
                let imp_l = variance_from_sums(lw, lsum, lsq);
                let imp_r = variance_from_sums(rw, rsum, rsq);
                let gain = parent_imp - (lw * imp_l + rw * imp_r) / total_w;
                Some((threshold, gain))
            }
        }
    }

    /// Leaf index reached by sample `row` (used by gradient boosting).
    pub fn apply(&self, row: &[f64]) -> usize {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // NaN goes left by convention.
                    let v = row[*feature];
                    node = if v <= *threshold || v.is_nan() {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class-probability distribution for one sample (classification only).
    pub fn predict_proba_row(&self, row: &[f64]) -> &[f64] {
        match &self.nodes[self.apply(row)] {
            Node::Leaf { dist } => dist,
            Node::Split { .. } => unreachable!("apply returns leaves"),
        }
    }

    /// Class-probability matrix (n × n_classes).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(self.n_classes > 0, "regression tree has no probabilities");
        let mut out = Matrix::zeros(x.nrows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.predict_proba_row(row));
        }
        out
    }

    /// Hard class predictions (classification only).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(x);
        (0..proba.nrows()).map(|r| argmax(proba.row(r))).collect()
    }

    /// Regression predictions (regression trees only).
    pub fn predict_values(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(self.n_classes, 0, "classification tree has no values");
        x.rows_iter()
            .map(|row| match &self.nodes[self.apply(row)] {
                Node::Leaf { dist } => dist[0],
                Node::Split { .. } => unreachable!(),
            })
            .collect()
    }

    /// Overwrite the value of leaf `leaf` (gradient boosting's Newton step).
    pub fn set_leaf_value(&mut self, leaf: usize, value: f64) {
        match &mut self.nodes[leaf] {
            Node::Leaf { dist } => {
                dist.clear();
                dist.push(value);
            }
            Node::Split { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Total node count (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (diagnostics).
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// The number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Mean-decrease-in-impurity feature importances, normalized to sum to
    /// 1 (all-zero for a tree that never split).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.n_features];
        }
        self.importances.iter().map(|v| v / total).collect()
    }
}

impl Criterion {
    /// Stable artifact name of the criterion.
    pub fn as_str(&self) -> &'static str {
        match self {
            Criterion::Gini => "gini",
            Criterion::Entropy => "entropy",
            Criterion::Mse => "mse",
        }
    }

    /// Inverse of [`Criterion::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gini" => Ok(Criterion::Gini),
            "entropy" => Ok(Criterion::Entropy),
            "mse" => Ok(Criterion::Mse),
            other => Err(format!("unknown criterion {other:?}")),
        }
    }
}

impl MaxFeatures {
    /// Serialize to the artifact encoding (a tag string, or `{fraction}` /
    /// `{count}` objects for the parameterized variants).
    pub fn to_json(&self) -> Json {
        match *self {
            MaxFeatures::All => Json::from("all"),
            MaxFeatures::Sqrt => Json::from("sqrt"),
            MaxFeatures::Log2 => Json::from("log2"),
            MaxFeatures::Fraction(f) => Json::obj([("fraction", jsonio::num(f))]),
            MaxFeatures::Count(c) => Json::obj([("count", Json::from(c))]),
        }
    }

    /// Inverse of [`MaxFeatures::to_json`].
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if let Some(s) = j.as_str() {
            return match s {
                "all" => Ok(MaxFeatures::All),
                "sqrt" => Ok(MaxFeatures::Sqrt),
                "log2" => Ok(MaxFeatures::Log2),
                other => Err(format!("unknown max_features {other:?}")),
            };
        }
        if let Some(f) = j.get("fraction") {
            return Ok(MaxFeatures::Fraction(jsonio::as_f64(f)?));
        }
        if let Some(c) = j.get("count") {
            return Ok(MaxFeatures::Count(jsonio::as_usize(c)?));
        }
        Err("unknown max_features encoding".to_string())
    }
}

impl TreeParams {
    /// Serialize the hyperparameters to the artifact encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("criterion", Json::from(self.criterion.as_str())),
            ("max_depth", jsonio::opt_usize(self.max_depth)),
            ("min_samples_split", Json::from(self.min_samples_split)),
            ("min_samples_leaf", Json::from(self.min_samples_leaf)),
            ("max_features", self.max_features.to_json()),
            ("splitter", Json::from(self.splitter.as_str())),
            (
                "min_impurity_decrease",
                jsonio::num(self.min_impurity_decrease),
            ),
            ("seed", jsonio::u64_str(self.seed)),
            ("n_bins", Json::from(self.n_bins)),
        ])
    }

    /// Inverse of [`TreeParams::to_json`]. `n_bins` is optional so model
    /// artifacts written before the binned splitter existed still load.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(TreeParams {
            criterion: Criterion::parse(jsonio::as_str(jsonio::field(j, "criterion")?)?)?,
            max_depth: jsonio::as_opt_usize(jsonio::field(j, "max_depth")?)?,
            min_samples_split: jsonio::as_usize(jsonio::field(j, "min_samples_split")?)?,
            min_samples_leaf: jsonio::as_usize(jsonio::field(j, "min_samples_leaf")?)?,
            max_features: MaxFeatures::from_json(jsonio::field(j, "max_features")?)?,
            splitter: Splitter::parse(jsonio::as_str(jsonio::field(j, "splitter")?)?)?,
            min_impurity_decrease: jsonio::as_f64(jsonio::field(j, "min_impurity_decrease")?)?,
            seed: jsonio::as_u64(jsonio::field(j, "seed")?)?,
            n_bins: match j.get("n_bins") {
                Some(v) => jsonio::as_usize(v)?,
                None => 256,
            },
        })
    }
}

fn node_to_json(node: &Node) -> Json {
    match node {
        Node::Leaf { dist } => Json::obj([("dist", jsonio::nums(dist))]),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => Json::obj([
            ("f", Json::from(*feature)),
            ("t", jsonio::num(*threshold)),
            ("l", Json::from(*left)),
            ("r", Json::from(*right)),
        ]),
    }
}

fn node_from_json(j: &Json) -> Result<Node, String> {
    if let Some(dist) = j.get("dist") {
        return Ok(Node::Leaf {
            dist: jsonio::f64_vec(dist)?,
        });
    }
    Ok(Node::Split {
        feature: jsonio::as_usize(jsonio::field(j, "f")?)?,
        threshold: jsonio::as_f64(jsonio::field(j, "t")?)?,
        left: jsonio::as_usize(jsonio::field(j, "l")?)?,
        right: jsonio::as_usize(jsonio::field(j, "r")?)?,
    })
}

impl DecisionTree {
    /// Serialize the fitted tree (params, node array, importances) for the
    /// model artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("params", self.params.to_json()),
            ("n_classes", Json::from(self.n_classes)),
            ("n_features", Json::from(self.n_features)),
            ("importances", jsonio::nums(&self.importances)),
            ("nodes", Json::arr(self.nodes.iter().map(node_to_json))),
        ])
    }

    /// Inverse of [`DecisionTree::to_json`]. Child indices are validated so
    /// a corrupt artifact fails here rather than panicking at predict time.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let nodes: Vec<Node> = jsonio::field(j, "nodes")?
            .as_arr()
            .ok_or_else(|| "nodes must be an array".to_string())?
            .iter()
            .map(node_from_json)
            .collect::<Result<_, _>>()?;
        for node in &nodes {
            if let Node::Split { left, right, .. } = node {
                if *left >= nodes.len() || *right >= nodes.len() {
                    return Err("tree node child index out of range".to_string());
                }
            }
        }
        if nodes.is_empty() {
            return Err("tree has no nodes".to_string());
        }
        Ok(DecisionTree {
            params: TreeParams::from_json(jsonio::field(j, "params")?)?,
            nodes,
            n_classes: jsonio::as_usize(jsonio::field(j, "n_classes")?)?,
            n_features: jsonio::as_usize(jsonio::field(j, "n_features")?)?,
            importances: jsonio::f64_vec(jsonio::field(j, "importances")?)?,
        })
    }
}

/// Fit-path counters (no-ops unless `em-obs` tracing is active).
static EXACT_FITS: em_obs::Counter = em_obs::Counter::new("tree.exact_fits");
static BINNED_FITS: em_obs::Counter = em_obs::Counter::new("tree.binned_fits");
static NODES: em_obs::Counter = em_obs::Counter::new("tree.nodes");

/// Impurity and leaf payload for a sample set (free-function form shared by
/// the exact builder and the binned engine in `crate::binned`).
pub(crate) fn node_stats(
    target: &Target<'_>,
    w: &[f64],
    idx: &[usize],
    criterion: Criterion,
) -> (f64, Vec<f64>) {
    match target {
        Target::Classes { y, n_classes } => {
            let mut counts = vec![0.0f64; *n_classes];
            for &i in idx {
                counts[y[i]] += w[i];
            }
            let total: f64 = counts.iter().sum();
            let imp = impurity_from_counts(&counts, total, criterion);
            let dist = if total > 0.0 {
                counts.iter().map(|c| c / total).collect()
            } else {
                vec![1.0 / *n_classes as f64; *n_classes]
            };
            (imp, dist)
        }
        Target::Values(t) => {
            let mut sw = 0.0;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for &i in idx {
                sw += w[i];
                sum += w[i] * t[i];
                sum_sq += w[i] * t[i] * t[i];
            }
            let mean = if sw > 0.0 { sum / sw } else { 0.0 };
            let var = if sw > 0.0 {
                (sum_sq / sw - mean * mean).max(0.0)
            } else {
                0.0
            };
            (var, vec![mean])
        }
    }
}

/// Exhaustive scan over sorted values of feature `f` — the CART inner loop.
/// Free-function form so the binned engine can fall back to it verbatim for
/// small nodes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exact_best_threshold(
    x: &Matrix,
    target: &Target<'_>,
    w: &[f64],
    idx: &[usize],
    f: usize,
    parent_imp: f64,
    total_w: f64,
    min_leaf: usize,
    criterion: Criterion,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| x.get(a, f).partial_cmp(&x.get(b, f)).expect("NaN feature"));
    let n = order.len();
    match target {
        Target::Classes { y, n_classes } => {
            let mut left_counts = vec![0.0f64; *n_classes];
            let mut right_counts = vec![0.0f64; *n_classes];
            for &i in &order {
                right_counts[y[i]] += w[i];
            }
            let mut left_w = 0.0;
            let mut best: Option<(f64, f64)> = None;
            for pos in 0..n - 1 {
                let i = order[pos];
                left_counts[y[i]] += w[i];
                right_counts[y[i]] -= w[i];
                left_w += w[i];
                let v_here = x.get(i, f);
                let v_next = x.get(order[pos + 1], f);
                if v_here == v_next {
                    continue;
                }
                if pos + 1 < min_leaf || n - pos - 1 < min_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                let imp_l = impurity_from_counts(&left_counts, left_w, criterion);
                let imp_r = impurity_from_counts(&right_counts, right_w, criterion);
                let gain = parent_imp - (left_w * imp_l + right_w * imp_r) / total_w;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((midpoint(v_here, v_next), gain));
                }
            }
            best
        }
        Target::Values(t) => {
            let mut left_w = 0.0;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let (mut right_w, mut right_sum, mut right_sq) = (0.0, 0.0, 0.0);
            for &i in &order {
                right_w += w[i];
                right_sum += w[i] * t[i];
                right_sq += w[i] * t[i] * t[i];
            }
            let mut best: Option<(f64, f64)> = None;
            for pos in 0..n - 1 {
                let i = order[pos];
                left_w += w[i];
                left_sum += w[i] * t[i];
                left_sq += w[i] * t[i] * t[i];
                right_w -= w[i];
                right_sum -= w[i] * t[i];
                right_sq -= w[i] * t[i] * t[i];
                let v_here = x.get(i, f);
                let v_next = x.get(order[pos + 1], f);
                if v_here == v_next {
                    continue;
                }
                if pos + 1 < min_leaf || n - pos - 1 < min_leaf {
                    continue;
                }
                let imp_l = variance_from_sums(left_w, left_sum, left_sq);
                let imp_r = variance_from_sums(right_w, right_sum, right_sq);
                let gain = parent_imp - (left_w * imp_l + right_w * imp_r) / total_w;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((midpoint(v_here, v_next), gain));
                }
            }
            best
        }
    }
}

pub(crate) fn midpoint(a: f64, b: f64) -> f64 {
    a + (b - a) / 2.0
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

pub(crate) fn impurity_from_counts(counts: &[f64], total: f64, criterion: Criterion) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    match criterion {
        Criterion::Gini => {
            let mut s = 0.0;
            for &c in counts {
                let p = c / total;
                s += p * p;
            }
            1.0 - s
        }
        Criterion::Entropy => {
            let mut h = 0.0;
            for &c in counts {
                if c > 0.0 {
                    let p = c / total;
                    h -= p * p.log2();
                }
            }
            h
        }
        Criterion::Mse => unreachable!("MSE uses variance_from_sums"),
    }
}

pub(crate) fn variance_from_sums(w: f64, sum: f64, sum_sq: f64) -> f64 {
    if w <= 0.0 {
        return 0.0;
    }
    let mean = sum / w;
    (sum_sq / w - mean * mean).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters on one feature.
    fn separable() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 / 100.0, 0.5]);
            y.push(0);
        }
        for i in 0..20 {
            rows.push(vec![0.8 + i as f64 / 100.0, 0.5]);
            y.push(1);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (x, y) = separable();
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, TreeParams::default());
        assert_eq!(t.predict(&x), y);
        // Should need exactly one split.
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, TreeParams::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn max_depth_limits_growth() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 1, 0, 1]; // needs depth >= 2
        let p = TreeParams {
            max_depth: Some(1),
            ..TreeParams::default()
        };
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = separable();
        let p = TreeParams {
            min_samples_leaf: 15,
            ..TreeParams::default()
        };
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        // 40 samples, leaves must have >= 15 each: the 20/20 split is legal.
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn weighted_samples_shift_the_split() {
        // One mislabeled point with huge weight dominates.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 1, 1];
        let w = vec![1.0, 100.0, 1.0, 1.0];
        let t = DecisionTree::fit_classifier(&x, &y, 2, Some(&w), TreeParams::default());
        // Prediction at x=1 must be class 0 with high confidence.
        let p = t.predict_proba(&Matrix::from_rows(&[vec![1.0]]));
        assert!(p.get(0, 0) > 0.9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = separable();
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, TreeParams::default());
        let p = t.predict_proba(&x);
        for r in 0..p.nrows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn entropy_criterion_works() {
        let (x, y) = separable();
        let p = TreeParams {
            criterion: Criterion::Entropy,
            ..TreeParams::default()
        };
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let t_vals: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let tree = DecisionTree::fit_regressor(&x, &t_vals, None, TreeParams::default());
        let pred = tree.predict_values(&x);
        for (p, t) in pred.iter().zip(&t_vals) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn random_splitter_still_learns() {
        let (x, y) = separable();
        let p = TreeParams {
            splitter: Splitter::Random,
            seed: 3,
            ..TreeParams::default()
        };
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        let acc =
            t.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = separable();
        let p = TreeParams {
            max_features: MaxFeatures::Count(1),
            seed: 9,
            ..TreeParams::default()
        };
        let a = DecisionTree::fit_classifier(&x, &y, 2, None, p.clone());
        let b = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.n_nodes(), b.n_nodes());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Log2.resolve(8), 3);
        assert_eq!(MaxFeatures::Fraction(0.5).resolve(10), 5);
        assert_eq!(MaxFeatures::Fraction(0.0).resolve(10), 1);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
    }

    #[test]
    #[should_panic(expected = "NaN features")]
    fn nan_features_rejected() {
        let x = Matrix::from_rows(&[vec![f64::NAN], vec![1.0]]);
        let _ = DecisionTree::fit_classifier(&x, &[0, 1], 2, None, TreeParams::default());
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let (x, y) = separable();
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, TreeParams::default());
        let imp = t.feature_importances();
        // Feature 0 separates the classes; feature 1 is constant.
        assert!(imp[0] > 0.99, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn importances_zero_without_splits() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let t = DecisionTree::fit_classifier(&x, &[1, 1], 2, None, TreeParams::default());
        assert_eq!(t.feature_importances(), vec![0.0]);
    }

    #[test]
    fn min_impurity_decrease_prunes() {
        // Nearly-pure data: a split would gain almost nothing.
        let x = Matrix::from_rows(&(0..100).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let mut y = vec![0usize; 100];
        y[99] = 1;
        let p = TreeParams {
            min_impurity_decrease: 0.5,
            ..TreeParams::default()
        };
        let t = DecisionTree::fit_classifier(&x, &y, 2, None, p);
        assert_eq!(t.n_nodes(), 1);
    }
}
