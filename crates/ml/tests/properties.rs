//! Property-based tests for the ML substrate: scaler invertibility, imputer
//! totality, metric bounds, tree/forest invariants, selector bounds, and
//! special-function identities.
//!
//! Each property runs over `CASES` deterministically seeded random inputs
//! drawn from the `em-rt` RNG; on failure the offending seed is printed so
//! the case can be replayed with `StdRng::seed_from_u64(seed)`.

use em_ml::featsel::{select_percentile, variance_threshold, ScoreFunc};
use em_ml::preprocess::{FittedScaler, ImputeStrategy, ScalerKind, SimpleImputer};
use em_ml::stats::{betainc, chi2_sf, f_sf, ln_gamma};
use em_ml::{f1_score, Classifier, ForestParams, Matrix, RandomForestClassifier, TreeParams};
use em_rt::StdRng;

const CASES: u64 = 64;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0x3147_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// A small random matrix with values in a bounded range. At least 4 rows so
/// ANOVA (which needs more samples than classes) is always applicable.
fn random_matrix(rng: &mut StdRng, max_rows: usize, cols: usize) -> Matrix {
    let rows = rng.random_range(4..max_rows);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| rng.random_range(-100.0f64..100.0))
                .collect()
        })
        .collect();
    Matrix::from_rows(&data)
}

/// Binary labels with at least one member of each class.
fn random_labels(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut y: Vec<usize> = (0..n).map(|_| rng.random_range(0..2usize)).collect();
    if y.iter().all(|&c| c == 0) {
        y[0] = 1;
    } else if y.iter().all(|&c| c == 1) {
        y[0] = 0;
    }
    y
}

#[test]
fn scalers_round_trip() {
    check(|rng| {
        let x = random_matrix(rng, 20, 3);
        for kind in [
            ScalerKind::Standard,
            ScalerKind::MinMax,
            ScalerKind::Robust {
                q_min: 25.0,
                q_max: 75.0,
            },
        ] {
            let (s, out) = FittedScaler::fit_transform(kind, &x);
            let back = s.inverse_transform(&out);
            for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    });
}

#[test]
fn imputer_always_removes_nan() {
    check(|rng| {
        let n_rows = rng.random_range(2..15usize);
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        // 1-in-4 cells missing, as in the old prop_oneof weights.
                        if rng.random_bool(0.25) {
                            f64::NAN
                        } else {
                            rng.random_range(-10.0f64..10.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        for strat in [
            ImputeStrategy::Mean,
            ImputeStrategy::Median,
            ImputeStrategy::MostFrequent,
            ImputeStrategy::Constant(0.5),
        ] {
            let (_, out) = SimpleImputer::fit_transform(strat, &x);
            assert!(!out.has_nan());
        }
    });
}

#[test]
fn f1_is_bounded_and_perfect_on_identity() {
    check(|rng| {
        let n = rng.random_range(1..40usize);
        let y: Vec<usize> = (0..n).map(|_| rng.random_range(0..2usize)).collect();
        assert!((0.0..=1.0).contains(&f1_score(&y, &y)));
        if y.contains(&1) {
            assert_eq!(f1_score(&y, &y), 1.0);
        }
    });
}

#[test]
fn forest_probabilities_are_distributions() {
    check(|rng| {
        let x = random_matrix(rng, 24, 2);
        let n = x.nrows();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 5,
            seed: 1,
            ..Default::default()
        });
        rf.fit(&x, &y, 2, None);
        let p = rf.predict_proba(&x);
        for r in 0..n {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
        // Vote fractions are in [1/2, 1] for binary classification.
        for c in rf.vote_fraction(&x) {
            assert!((0.5 - 1e-12..=1.0 + 1e-12).contains(&c));
        }
    });
}

#[test]
fn tree_training_accuracy_is_perfect_without_limits() {
    check(|rng| {
        let x = random_matrix(rng, 24, 2);
        // Deduplicate identical rows (which could carry conflicting labels).
        let n = x.nrows();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut unique = std::collections::BTreeMap::new();
        for (i, row) in x.rows_iter().enumerate() {
            let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            unique.entry(key).or_insert(i);
        }
        let keep: Vec<usize> = unique.into_values().collect();
        let xu = x.select_rows(&keep);
        let yu: Vec<usize> = keep.iter().map(|&i| y[i]).collect();
        if yu.contains(&0) && yu.contains(&1) {
            let t = em_ml::DecisionTree::fit_classifier(&xu, &yu, 2, None, TreeParams::default());
            assert_eq!(t.predict(&xu), yu);
        }
    });
}

#[test]
fn percentile_selector_respects_bounds() {
    check(|rng| {
        let x = random_matrix(rng, 30, 5);
        let pct = rng.random_range(0.0f64..100.0);
        let n = x.nrows();
        let y = (0..n).map(|i| i % 2).collect::<Vec<_>>();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, pct);
        let k = sel.selected().len();
        assert!((1..=5).contains(&k));
        // Selected indices are sorted and unique.
        let mut sorted = sel.selected().to_vec();
        sorted.dedup();
        assert_eq!(sorted.as_slice(), sel.selected());
    });
}

#[test]
fn variance_threshold_never_empty() {
    check(|rng| {
        let x = random_matrix(rng, 20, 4);
        let sel = variance_threshold(&x, 0.0);
        assert!(!sel.selected().is_empty());
        let out = sel.transform(&x);
        assert_eq!(out.ncols(), sel.selected().len());
    });
}

#[test]
fn gamma_recurrence() {
    check(|rng| {
        let x = rng.random_range(0.5f64..20.0);
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    });
}

#[test]
fn betainc_monotone_in_x() {
    check(|rng| {
        let a = rng.random_range(0.5f64..10.0);
        let b = rng.random_range(0.5f64..10.0);
        let x1 = rng.random_range(0.01f64..0.99);
        let dx = rng.random_range(0.0f64..0.5);
        let x2 = (x1 + dx).min(1.0);
        assert!(betainc(a, b, x1) <= betainc(a, b, x2) + 1e-9);
    });
}

#[test]
fn survival_functions_are_valid_probabilities() {
    check(|rng| {
        let v = rng.random_range(0.0f64..100.0);
        let d1 = rng.random_range(1.0f64..30.0);
        let d2 = rng.random_range(1.0f64..30.0);
        let p = f_sf(v, d1, d2);
        assert!((0.0..=1.0).contains(&p));
        let q = chi2_sf(v, d1);
        assert!((0.0..=1.0).contains(&q));
    });
}

#[test]
fn stratified_split_partitions() {
    check(|rng| {
        let n_pos = rng.random_range(2..20usize);
        let n_neg = rng.random_range(2..40usize);
        let seed = rng.random_range(0..100u64);
        let mut y = vec![0usize; n_neg];
        y.extend(vec![1usize; n_pos]);
        let (train, test) = em_ml::stratified_train_test_indices(&y, 0.25, seed);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..y.len()).collect();
        assert_eq!(all, expect);
    });
}

#[test]
fn labels_generator_smoke() {
    // Exercise the helper so it isn't dead code if generators shift.
    let mut rng = StdRng::seed_from_u64(42);
    let y = random_labels(&mut rng, 6);
    assert!(y.contains(&0) && y.contains(&1));
}
