//! Property-based tests for the ML substrate: scaler invertibility, imputer
//! totality, metric bounds, tree/forest invariants, selector bounds, and
//! special-function identities.

use em_ml::featsel::{select_percentile, variance_threshold, ScoreFunc};
use em_ml::preprocess::{FittedScaler, ImputeStrategy, ScalerKind, SimpleImputer};
use em_ml::stats::{betainc, chi2_sf, f_sf, ln_gamma};
use em_ml::{
    f1_score, Classifier, ForestParams, Matrix, RandomForestClassifier, TreeParams,
};
use proptest::prelude::*;

/// A small random matrix with values in a bounded range. At least 4 rows so
/// ANOVA (which needs more samples than classes) is always applicable.
fn matrix_strategy(max_rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0f64..100.0, cols..=cols),
        4..max_rows,
    )
    .prop_map(|rows| Matrix::from_rows(&rows))
}

/// Binary labels with at least one member of each class.
fn labels_for(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..2, n..=n).prop_map(|mut y| {
        if y.iter().all(|&c| c == 0) {
            y[0] = 1;
        } else if y.iter().all(|&c| c == 1) {
            y[0] = 0;
        }
        y
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scalers_round_trip(x in matrix_strategy(20, 3)) {
        for kind in [
            ScalerKind::Standard,
            ScalerKind::MinMax,
            ScalerKind::Robust { q_min: 25.0, q_max: 75.0 },
        ] {
            let (s, out) = FittedScaler::fit_transform(kind, &x);
            let back = s.inverse_transform(&out);
            for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
                prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn imputer_always_removes_nan(
        rows in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![3 => -10.0f64..10.0, 1 => Just(f64::NAN)], 3..=3,
            ),
            2..15,
        )
    ) {
        let x = Matrix::from_rows(&rows);
        for strat in [
            ImputeStrategy::Mean,
            ImputeStrategy::Median,
            ImputeStrategy::MostFrequent,
            ImputeStrategy::Constant(0.5),
        ] {
            let (_, out) = SimpleImputer::fit_transform(strat, &x);
            prop_assert!(!out.has_nan());
        }
    }

    #[test]
    fn f1_is_bounded_and_perfect_on_identity(y in proptest::collection::vec(0usize..2, 1..40)) {
        prop_assert!((0.0..=1.0).contains(&f1_score(&y, &y)));
        if y.contains(&1) {
            prop_assert_eq!(f1_score(&y, &y), 1.0);
        }
    }

    #[test]
    fn forest_probabilities_are_distributions(
        x in matrix_strategy(24, 2),
    ) {
        let n = x.nrows();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut rf = RandomForestClassifier::new(ForestParams {
            n_estimators: 5,
            seed: 1,
            ..Default::default()
        });
        rf.fit(&x, &y, 2, None);
        let p = rf.predict_proba(&x);
        for r in 0..n {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
        // Vote fractions are in [1/2, 1] for binary classification.
        for c in rf.vote_fraction(&x) {
            prop_assert!((0.5 - 1e-12..=1.0 + 1e-12).contains(&c));
        }
    }

    #[test]
    fn tree_training_accuracy_is_perfect_without_limits(
        x in matrix_strategy(24, 2),
    ) {
        // Deduplicate identical rows (which could carry conflicting labels).
        let n = x.nrows();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut unique = std::collections::BTreeMap::new();
        for (i, row) in x.rows_iter().enumerate() {
            let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            unique.entry(key).or_insert(i);
        }
        let keep: Vec<usize> = unique.into_values().collect();
        let xu = x.select_rows(&keep);
        let yu: Vec<usize> = keep.iter().map(|&i| y[i]).collect();
        if yu.iter().any(|&c| c == 0) && yu.iter().any(|&c| c == 1) {
            let t = em_ml::DecisionTree::fit_classifier(&xu, &yu, 2, None, TreeParams::default());
            prop_assert_eq!(t.predict(&xu), yu);
        }
    }

    #[test]
    fn percentile_selector_respects_bounds(
        x in matrix_strategy(30, 5),
        pct in 0.0f64..100.0,
    ) {
        let n = x.nrows();
        let y = (0..n).map(|i| i % 2).collect::<Vec<_>>();
        let sel = select_percentile(&x, &y, 2, ScoreFunc::FClassif, pct);
        let k = sel.selected().len();
        prop_assert!(k >= 1 && k <= 5);
        // Selected indices are sorted and unique.
        let mut sorted = sel.selected().to_vec();
        sorted.dedup();
        prop_assert_eq!(sorted.as_slice(), sel.selected());
    }

    #[test]
    fn variance_threshold_never_empty(x in matrix_strategy(20, 4)) {
        let sel = variance_threshold(&x, 0.0);
        prop_assert!(!sel.selected().is_empty());
        let out = sel.transform(&x);
        prop_assert_eq!(out.ncols(), sel.selected().len());
    }

    #[test]
    fn gamma_recurrence(x in 0.5f64..20.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn betainc_monotone_in_x(a in 0.5f64..10.0, b in 0.5f64..10.0, x1 in 0.01f64..0.99, dx in 0.0f64..0.5) {
        let x2 = (x1 + dx).min(1.0);
        prop_assert!(betainc(a, b, x1) <= betainc(a, b, x2) + 1e-9);
    }

    #[test]
    fn survival_functions_are_valid_probabilities(v in 0.0f64..100.0, d1 in 1.0f64..30.0, d2 in 1.0f64..30.0) {
        let p = f_sf(v, d1, d2);
        prop_assert!((0.0..=1.0).contains(&p));
        let q = chi2_sf(v, d1);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn stratified_split_partitions(n_pos in 2usize..20, n_neg in 2usize..40, seed in 0u64..100) {
        let mut y = vec![0usize; n_neg];
        y.extend(vec![1usize; n_pos]);
        let (train, test) = em_ml::stratified_train_test_indices(&y, 0.25, seed);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..y.len()).collect();
        prop_assert_eq!(all, expect);
    }
}

#[test]
fn labels_strategy_smoke() {
    // Exercise the helper so it isn't dead code if strategies shift.
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let tree = labels_for(6).new_tree(&mut runner).unwrap();
    let y = proptest::strategy::ValueTree::current(&tree);
    assert!(y.contains(&0) && y.contains(&1));
}
