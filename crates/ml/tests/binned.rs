//! Binned-splitter equivalence and regression tests.
//!
//! The binned engine is lossless when every feature has at most `n_bins`
//! distinct values (one bin per value ⇒ the candidate thresholds are exactly
//! the exact scan's midpoints), and with unit weights and integer-valued
//! targets every accumulated statistic is an integer-exact f64 sum — so the
//! fitted trees must match the exact splitter *bit for bit*, not just
//! approximately. The exact path itself is pinned against a pre-PR golden
//! fixture so the refactor can't silently change it.

use em_ml::{
    AdaBoostClassifier, AdaBoostParams, Classifier, DecisionTree, ExtraTreesClassifier,
    ForestParams, GradientBoostingClassifier, GradientBoostingParams, Matrix, MaxFeatures,
    RandomForestClassifier, Splitter, TreeParams,
};
use em_rt::{Json, StdRng};

const CASES: u64 = 48;

/// Run a property over `CASES` seeded RNGs, reporting the failing seed.
fn check(f: impl Fn(&mut StdRng) + std::panic::RefUnwindSafe) {
    for case in 0..CASES {
        let seed = 0xB117_0000 ^ case;
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed for seed {seed} (case {case}/{CASES})");
            std::panic::resume_unwind(e);
        }
    }
}

/// True when `EM_BINNED` overrides the requested splitter, which would make
/// an exact-vs-binned comparison vacuous (both fits run the same engine).
fn em_binned_overridden() -> bool {
    std::env::var("EM_BINNED").is_ok()
}

/// A matrix whose features take at most `levels` distinct values — the
/// lossless regime for any `n_bins >= levels`. Values are multiples of 0.5,
/// so midpoints and sums are exact binary floats.
fn grid_matrix(rng: &mut StdRng, rows: usize, cols: usize, levels: usize) -> Matrix {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| rng.random_range(0..levels) as f64 * 0.5 - 1.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&data)
}

/// Binary labels with both classes present.
fn labels(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut y: Vec<usize> = (0..n).map(|_| rng.random_range(0..2usize)).collect();
    y[0] = 0;
    y[n - 1] = 1;
    y
}

/// Assert two fitted trees are identical: same structure, thresholds, leaf
/// payloads, and importances, all compared through bit-exact channels.
fn assert_trees_identical(a: &DecisionTree, b: &DecisionTree, what: &str) {
    assert_eq!(a.n_nodes(), b.n_nodes(), "{what}: node count");
    assert_eq!(a.depth(), b.depth(), "{what}: depth");
    let (ia, ib) = (a.feature_importances(), b.feature_importances());
    for (va, vb) in ia.iter().zip(&ib) {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{what}: importances {ia:?} vs {ib:?}"
        );
    }
    // The node arrays themselves, through the canonical JSON rendering
    // (params are excluded: the two trees intentionally differ in
    // `splitter`).
    let na = a.to_json().get("nodes").unwrap().render();
    let nb = b.to_json().get("nodes").unwrap().render();
    assert_eq!(na, nb, "{what}: node arrays");
}

#[test]
fn lossless_classification_matches_exact_bit_for_bit() {
    if em_binned_overridden() {
        eprintln!("skipping: EM_BINNED override active");
        return;
    }
    check(|rng| {
        let n = rng.random_range(20..120usize);
        let levels = rng.random_range(2..12usize);
        let x = grid_matrix(rng, n, 3, levels);
        let y = labels(rng, n);
        let criterion = if rng.random_bool(0.5) {
            em_ml::Criterion::Gini
        } else {
            em_ml::Criterion::Entropy
        };
        let params = TreeParams {
            criterion,
            max_depth: if rng.random_bool(0.3) { Some(4) } else { None },
            min_samples_leaf: rng.random_range(1..4usize),
            // `All` keeps both engines' candidate feature sets identical
            // (subsampled fits draw from differently-threaded RNG streams
            // by design).
            max_features: MaxFeatures::All,
            splitter: Splitter::Best,
            ..TreeParams::default()
        };
        let exact = DecisionTree::fit_classifier(&x, &y, 2, None, params.clone());
        let binned = DecisionTree::fit_classifier(
            &x,
            &y,
            2,
            None,
            TreeParams {
                splitter: Splitter::Binned,
                ..params
            },
        );
        assert_trees_identical(&exact, &binned, "classification");
        let (pa, pb) = (exact.predict_proba(&x), binned.predict_proba(&x));
        for (va, vb) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    });
}

#[test]
fn lossless_regression_matches_exact_bit_for_bit() {
    if em_binned_overridden() {
        eprintln!("skipping: EM_BINNED override active");
        return;
    }
    check(|rng| {
        let n = rng.random_range(20..120usize);
        let levels = rng.random_range(2..12usize);
        let x = grid_matrix(rng, n, 3, levels);
        // Integer targets keep every weighted sum (Σw, Σwt, Σwt²) exact, so
        // bin-order and sample-order accumulation agree bitwise.
        let t: Vec<f64> = (0..n).map(|_| rng.random_range(0..7u32) as f64).collect();
        let params = TreeParams {
            max_depth: if rng.random_bool(0.3) { Some(5) } else { None },
            min_samples_leaf: rng.random_range(1..4usize),
            max_features: MaxFeatures::All,
            splitter: Splitter::Best,
            ..TreeParams::default()
        };
        let exact = DecisionTree::fit_regressor(&x, &t, None, params.clone());
        let binned = DecisionTree::fit_regressor(
            &x,
            &t,
            None,
            TreeParams {
                splitter: Splitter::Binned,
                ..params
            },
        );
        assert_trees_identical(&exact, &binned, "regression");
        let (pa, pb) = (exact.predict_values(&x), binned.predict_values(&x));
        for (va, vb) in pa.iter().zip(&pb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    });
}

#[test]
fn lossy_binned_is_deterministic_and_learns() {
    // Continuous features (more distinct values than bins): the binned tree
    // may differ from exact, but it must be reproducible and still separate
    // two clear clusters, even with a tiny bin budget.
    let mut rng = StdRng::seed_from_u64(404);
    let n = 400;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let c = (i % 2) as f64;
            (0..4).map(|_| c + rng.random_range(-0.4..0.4)).collect()
        })
        .collect();
    let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
    let x = Matrix::from_rows(&rows);
    for n_bins in [16, 256] {
        let params = TreeParams {
            splitter: Splitter::Binned,
            n_bins,
            max_features: MaxFeatures::Sqrt,
            seed: 7,
            ..TreeParams::default()
        };
        let a = DecisionTree::fit_classifier(&x, &y, 2, None, params.clone());
        let b = DecisionTree::fit_classifier(&x, &y, 2, None, params);
        assert_trees_identical(&a, &b, "repeat fit");
        let acc = a.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / n as f64;
        assert!(acc > 0.95, "n_bins={n_bins} accuracy {acc}");
    }
}

#[test]
fn binned_tree_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(11);
    let x = grid_matrix(&mut rng, 60, 3, 20);
    let y = labels(&mut rng, 60);
    let tree = DecisionTree::fit_classifier(
        &x,
        &y,
        2,
        None,
        TreeParams {
            splitter: Splitter::Binned,
            n_bins: 64,
            ..TreeParams::default()
        },
    );
    let json = tree.to_json().render();
    let back = DecisionTree::from_json(&Json::parse(&json).unwrap()).unwrap();
    assert_eq!(tree.predict(&x), back.predict(&x));
    let rejson = back.to_json().render();
    assert_eq!(json, rejson, "serialization is a fixed point");
    assert!(json.contains("\"splitter\": \"binned\"") || json.contains("\"splitter\":\"binned\""));
    // Pre-n_bins tree params (older artifact) still parse, with the default.
    let old = Json::parse(
        r#"{"criterion":"gini","max_depth":null,"min_samples_split":2,
            "min_samples_leaf":1,"max_features":"all","splitter":"best",
            "min_impurity_decrease":0,"seed":"0"}"#,
    )
    .unwrap();
    let parsed = TreeParams::from_json(&old).unwrap();
    assert_eq!(parsed.n_bins, 256);
}

/// Regenerate the pre-PR seeded ensembles and compare `predict_proba`
/// against the committed golden fixture bit for bit — the exact splitter's
/// output must be byte-for-byte unchanged by the binned-engine refactor.
#[test]
fn exact_fit_matches_pre_binned_golden() {
    if em_binned_overridden() {
        eprintln!("skipping: EM_BINNED override active");
        return;
    }
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/exact_fit_golden.json"
    ))
    .expect("golden fixture present");
    let golden = Json::parse(&text).unwrap();
    let (x, y) = golden_data(240, 6, 11);

    let mut rf = RandomForestClassifier::new(ForestParams {
        n_estimators: 12,
        seed: 5,
        ..ForestParams::default()
    });
    rf.fit(&x, &y, 2, None);
    assert_matches_golden(&golden, "random_forest", &rf.predict_proba(&x));

    let mut et = ExtraTreesClassifier::new(ForestParams {
        n_estimators: 8,
        seed: 6,
        ..ForestParams::default()
    });
    et.fit(&x, &y, 2, None);
    assert_matches_golden(&golden, "extra_trees", &et.predict_proba(&x));

    let mut gb = GradientBoostingClassifier::new(GradientBoostingParams {
        n_estimators: 10,
        subsample: 0.8,
        seed: 3,
        ..GradientBoostingParams::default()
    });
    gb.fit(&x, &y, 2, None);
    assert_matches_golden(&golden, "gradient_boosting", &gb.predict_proba(&x));

    let mut ab = AdaBoostClassifier::new(AdaBoostParams {
        n_estimators: 10,
        max_depth: 2,
        ..AdaBoostParams::default()
    });
    ab.fit(&x, &y, 2, None);
    assert_matches_golden(&golden, "adaboost", &ab.predict_proba(&x));
}

/// The dataset the golden fixture was generated on (recipe must not change).
fn golden_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 2;
        rows.push(
            (0..d)
                .map(|_| c as f64 * 0.7 + rng.random_range(-0.6..0.6))
                .collect(),
        );
        y.push(c);
    }
    (Matrix::from_rows(&rows), y)
}

fn assert_matches_golden(golden: &Json, key: &str, proba: &Matrix) {
    let rows = golden
        .get(key)
        .and_then(Json::as_arr)
        .expect("fixture rows");
    assert_eq!(rows.len(), proba.nrows(), "{key}: row count");
    for (r, row) in rows.iter().enumerate() {
        let want: Vec<f64> = row
            .as_arr()
            .expect("row array")
            .iter()
            .map(|v| v.as_f64().expect("number"))
            .collect();
        let got = proba.row(r);
        assert_eq!(want.len(), got.len());
        for (c, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "{key}: row {r} col {c}: {w} vs {g}"
            );
        }
    }
}
