//! Baseline blocking strategies.
//!
//! The paper treats blocking as orthogonal to the matching phase (§II-A),
//! but end-to-end examples need one, so this module provides the two common
//! baseline blockers Magellan offers: attribute equivalence and token
//! overlap. Both avoid the quadratic all-pairs enumeration by hashing.
//!
//! Candidate generation runs on the shared `em-rt` pool: the right-table
//! index is built once, then the left table is sharded into contiguous
//! record ranges probed in parallel, each shard appending to its own output
//! buffer. Shards are concatenated in range order, so the candidate list is
//! byte-for-byte the serial one for every thread count — each record's
//! candidates are self-contained (no state crosses a shard boundary).

use crate::pairs::RecordPair;
use crate::table::Table;
use std::collections::HashMap;

/// Candidate pairs emitted by blocking (all blockers, traced runs only).
static PAIRS_EMITTED: em_obs::Counter = em_obs::Counter::new("blocking.pairs_emitted");

/// A blocker produces the candidate pairs the matcher will score.
pub trait Blocker {
    /// Generate candidate pairs between tables `a` and `b`.
    fn candidates(&self, a: &Table, b: &Table) -> Vec<RecordPair>;

    /// [`Blocker::candidates`] with an explicit worker cap for the shared
    /// `em-rt` pool (0 = the pool's [`em_rt::threads`] count, 1 = serial).
    /// Implementations must return the same pairs in the same order for
    /// every `jobs` value; the default ignores `jobs` and runs serially.
    fn candidates_with_jobs(&self, a: &Table, b: &Table, _jobs: usize) -> Vec<RecordPair> {
        self.candidates(a, b)
    }
}

/// Left-table records per parallel shard. Small enough to balance skewed
/// per-record cost (a hub record whose key matches half the right table),
/// large enough that per-shard buffer overhead is noise.
const SHARD_SIZE: usize = 256;

/// Probe every left record in `0..n_left` through `probe(record, out)`,
/// sharded over the pool, and return the concatenation of all shard buffers
/// in record order — exactly the serial output, for any `jobs`.
///
/// Public so index-backed candidate generation outside this crate (the
/// `em-serve` incremental blocking index) shares the same deterministic
/// sharding discipline as the built-in blockers.
pub fn sharded_probe<F>(n_left: usize, jobs: usize, probe: F) -> Vec<RecordPair>
where
    F: Fn(usize, &mut Vec<RecordPair>) + Sync,
{
    sharded_probe_scratch(n_left, jobs, || (), |i, (), out| probe(i, out))
}

/// [`sharded_probe`] with per-shard scratch state: `make_scratch` runs once
/// per shard (once total on the serial path) so probes can reuse buffers
/// without allocating per record. Scratch must not influence output values
/// — it exists purely so the hot loop is allocation-free.
pub fn sharded_probe_scratch<S, M, F>(
    n_left: usize,
    jobs: usize,
    make_scratch: M,
    probe: F,
) -> Vec<RecordPair>
where
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S, &mut Vec<RecordPair>) + Sync,
{
    let _span = em_obs::span!("blocking.candidates");
    let out = sharded_probe_inner(n_left, jobs, make_scratch, probe);
    PAIRS_EMITTED.add(out.len() as u64);
    out
}

fn sharded_probe_inner<S, M, F>(
    n_left: usize,
    jobs: usize,
    make_scratch: M,
    probe: F,
) -> Vec<RecordPair>
where
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut S, &mut Vec<RecordPair>) + Sync,
{
    let n_shards = n_left.div_ceil(SHARD_SIZE);
    if n_shards <= 1 || jobs == 1 {
        let mut out = Vec::new();
        let mut scratch = make_scratch();
        for i in 0..n_left {
            probe(i, &mut scratch, &mut out);
        }
        return out;
    }
    let mut shards: Vec<Vec<RecordPair>> = vec![Vec::new(); n_shards];
    let writer = em_rt::SliceWriter::new(&mut shards);
    em_rt::parallel_for(n_shards, jobs, |s| {
        // Safety: each shard index is handed out exactly once, so this is
        // the only thread touching slot `s`.
        let buf = unsafe { &mut writer.slice_mut(s, 1)[0] };
        let mut scratch = make_scratch();
        let end = ((s + 1) * SHARD_SIZE).min(n_left);
        for i in s * SHARD_SIZE..end {
            probe(i, &mut scratch, buf);
        }
    });
    let total = shards.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for shard in &mut shards {
        out.append(shard);
    }
    out
}

/// Pairs records whose values on one attribute are exactly equal
/// (e.g. "put the restaurants with the same `city` into the same block").
/// Records with a null blocking key produce no candidates.
#[derive(Debug, Clone)]
pub struct AttrEquivalenceBlocker {
    /// Name of the blocking attribute (must exist in both schemas).
    pub attribute: String,
}

impl Blocker for AttrEquivalenceBlocker {
    fn candidates(&self, a: &Table, b: &Table) -> Vec<RecordPair> {
        self.candidates_with_jobs(a, b, 0)
    }

    fn candidates_with_jobs(&self, a: &Table, b: &Table, jobs: usize) -> Vec<RecordPair> {
        let col_a = a
            .schema()
            .index_of(&self.attribute)
            .unwrap_or_else(|| panic!("attribute {} missing in left table", self.attribute));
        let col_b = b
            .schema()
            .index_of(&self.attribute)
            .unwrap_or_else(|| panic!("attribute {} missing in right table", self.attribute));
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for rec in b.records() {
            if let Some(key) = rec.get(col_b).to_display_string() {
                index.entry(key).or_default().push(rec.index());
            }
        }
        sharded_probe(a.len(), jobs, |i, out| {
            if let Some(key) = a.record(i).get(col_a).to_display_string() {
                if let Some(rights) = index.get(&key) {
                    out.extend(rights.iter().map(|&r| RecordPair::new(i, r)));
                }
            }
        })
    }
}

/// Pairs records sharing at least `min_overlap` lowercase word tokens on one
/// attribute — the standard "overlap blocker".
///
/// The inverted index is keyed by interned `u32` token ids
/// ([`em_text::TokenInterner`]) rather than token strings: the right table
/// interns its tokens while building postings, and probing resolves each
/// left token to an id without allocating (unknown tokens miss the interner
/// and can match nothing). Per-shard scratch buffers make the probe loop
/// allocation-free in steady state.
#[derive(Debug, Clone)]
pub struct OverlapBlocker {
    /// Name of the blocking attribute.
    pub attribute: String,
    /// Minimum number of shared word tokens required.
    pub min_overlap: usize,
}

/// Reusable per-shard probe buffers for [`OverlapBlocker`].
#[derive(Default)]
struct OverlapScratch {
    /// Lowercased token being resolved against the interner.
    buf: String,
    /// Deduped token ids of the probe record.
    ids: Vec<u32>,
    /// Right-record ids gathered from postings (with duplicates), sorted so
    /// overlap counts fall out of a run-length scan.
    hits: Vec<usize>,
}

/// Lowercase `word` into `buf` (ASCII, matching `str::to_ascii_lowercase`).
fn lowercase_into(word: &str, buf: &mut String) {
    buf.clear();
    buf.extend(word.chars().map(|c| c.to_ascii_lowercase()));
}

impl Blocker for OverlapBlocker {
    fn candidates(&self, a: &Table, b: &Table) -> Vec<RecordPair> {
        self.candidates_with_jobs(a, b, 0)
    }

    fn candidates_with_jobs(&self, a: &Table, b: &Table, jobs: usize) -> Vec<RecordPair> {
        let col_a = a
            .schema()
            .index_of(&self.attribute)
            .unwrap_or_else(|| panic!("attribute {} missing in left table", self.attribute));
        let col_b = b
            .schema()
            .index_of(&self.attribute)
            .unwrap_or_else(|| panic!("attribute {} missing in right table", self.attribute));
        // Inverted index: interned token id -> right-record ids containing
        // it. Postings are naturally sorted by record id.
        let mut interner = em_text::TokenInterner::new();
        let mut postings: Vec<Vec<usize>> = Vec::new();
        let mut buf = String::new();
        let mut ids: Vec<u32> = Vec::new();
        for rec in b.records() {
            if let Some(s) = rec.get(col_b).to_display_string() {
                ids.clear();
                for w in s.split_whitespace() {
                    lowercase_into(w, &mut buf);
                    ids.push(interner.intern(&buf));
                }
                ids.sort_unstable();
                ids.dedup();
                postings.resize(interner.len(), Vec::new());
                for &id in &ids {
                    postings[id as usize].push(rec.index());
                }
            }
        }
        sharded_probe_scratch(a.len(), jobs, OverlapScratch::default, |i, scr, out| {
            let Some(s) = a.record(i).get(col_a).to_display_string() else {
                return;
            };
            scr.ids.clear();
            for w in s.split_whitespace() {
                lowercase_into(w, &mut scr.buf);
                if let Some(id) = interner.get(&scr.buf) {
                    scr.ids.push(id);
                }
            }
            scr.ids.sort_unstable();
            scr.ids.dedup();
            scr.hits.clear();
            for &id in &scr.ids {
                scr.hits.extend_from_slice(&postings[id as usize]);
            }
            scr.hits.sort_unstable();
            // Run-length scan: each right id appears once per shared token.
            let mut k = 0;
            while k < scr.hits.len() {
                let r = scr.hits[k];
                let mut j = k + 1;
                while j < scr.hits.len() && scr.hits[j] == r {
                    j += 1;
                }
                if j - k >= self.min_overlap {
                    out.push(RecordPair::new(i, r));
                }
                k = j;
            }
        })
    }
}

/// Candidate pairs for *deduplication* (a single table matched against
/// itself, the paper's "clean a customer table by detecting duplicate
/// customers" scenario): runs the blocker on `(t, t)` and keeps only one
/// orientation of each pair (`left < right`), dropping self-pairs.
pub fn self_join_candidates(blocker: &dyn Blocker, t: &Table) -> Vec<RecordPair> {
    self_join_candidates_with_jobs(blocker, t, 0)
}

/// [`self_join_candidates`] with an explicit worker cap (0 = the pool's
/// [`em_rt::threads`] count, 1 = serial).
pub fn self_join_candidates_with_jobs(
    blocker: &dyn Blocker,
    t: &Table,
    jobs: usize,
) -> Vec<RecordPair> {
    let mut out: Vec<RecordPair> = blocker
        .candidates_with_jobs(t, t, jobs)
        .into_iter()
        .filter(|p| p.left < p.right)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Standard blocking-quality metrics (Christen; Papadakis et al. — the
/// paper's reference \[29\] evaluates blockers with exactly these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Fraction of the full cross product pruned away:
    /// `1 - |candidates| / (|A| × |B|)`. Higher is cheaper.
    pub reduction_ratio: f64,
    /// Fraction of true matches retained among the candidates
    /// (blocking recall). Higher is safer.
    pub pair_completeness: f64,
    /// Candidate count.
    pub candidates: usize,
}

impl BlockingStats {
    /// Evaluate a candidate set against gold matching pairs.
    pub fn evaluate(
        candidates: &[RecordPair],
        true_matches: &[RecordPair],
        n_left: usize,
        n_right: usize,
    ) -> Self {
        let cross = (n_left * n_right).max(1);
        let candidate_set: std::collections::HashSet<(usize, usize)> =
            candidates.iter().map(|p| (p.left, p.right)).collect();
        let retained = true_matches
            .iter()
            .filter(|p| candidate_set.contains(&(p.left, p.right)))
            .count();
        BlockingStats {
            reduction_ratio: 1.0 - candidate_set.len() as f64 / cross as f64,
            pair_completeness: if true_matches.is_empty() {
                1.0
            } else {
                retained as f64 / true_matches.len() as f64
            },
            candidates: candidate_set.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn tables() -> (Table, Table) {
        let schema = Schema::new(["name", "city"]);
        let mut a = Table::new(schema.clone());
        a.push_row(vec!["arts delicatessen".into(), "studio city".into()])
            .unwrap();
        a.push_row(vec!["fenix".into(), "west hollywood".into()])
            .unwrap();
        a.push_row(vec!["nowhere".into(), Value::Null]).unwrap();
        let mut b = Table::new(schema);
        b.push_row(vec!["arts deli".into(), "studio city".into()])
            .unwrap();
        b.push_row(vec!["fenix at the argyle".into(), "w. hollywood".into()])
            .unwrap();
        (a, b)
    }

    #[test]
    fn attr_equivalence() {
        let (a, b) = tables();
        let blocker = AttrEquivalenceBlocker {
            attribute: "city".into(),
        };
        let cands = blocker.candidates(&a, &b);
        // Only "studio city" matches exactly; nulls never pair.
        assert_eq!(cands, vec![RecordPair::new(0, 0)]);
    }

    #[test]
    fn overlap_blocker_finds_fuzzy_city() {
        let (a, b) = tables();
        let blocker = OverlapBlocker {
            attribute: "city".into(),
            min_overlap: 1,
        };
        let cands = blocker.candidates(&a, &b);
        // "west hollywood" and "w. hollywood" share the token "hollywood".
        assert!(cands.contains(&RecordPair::new(1, 1)));
        assert!(cands.contains(&RecordPair::new(0, 0)));
    }

    #[test]
    fn overlap_threshold_filters() {
        let (a, b) = tables();
        let strict = OverlapBlocker {
            attribute: "name".into(),
            min_overlap: 2,
        };
        let cands = strict.candidates(&a, &b);
        // "arts delicatessen" vs "arts deli": only "arts" is shared -> pruned.
        assert!(cands.is_empty());
    }

    #[test]
    fn overlap_reduces_cross_product() {
        let (a, b) = tables();
        let blocker = OverlapBlocker {
            attribute: "name".into(),
            min_overlap: 1,
        };
        let cands = blocker.candidates(&a, &b);
        assert!(cands.len() < a.len() * b.len());
    }

    #[test]
    fn self_join_drops_diagonal_and_mirrors() {
        let (a, _) = tables();
        let blocker = OverlapBlocker {
            attribute: "name".into(),
            min_overlap: 1,
        };
        let cands = self_join_candidates(&blocker, &a);
        for p in &cands {
            assert!(p.left < p.right, "{p:?}");
        }
        // No duplicates.
        let set: std::collections::BTreeSet<_> = cands.iter().collect();
        assert_eq!(set.len(), cands.len());
    }

    #[test]
    fn blocking_stats_measure_reduction_and_recall() {
        let (a, b) = tables();
        let blocker = OverlapBlocker {
            attribute: "city".into(),
            min_overlap: 1,
        };
        let candidates = blocker.candidates(&a, &b);
        let truth = vec![RecordPair::new(0, 0), RecordPair::new(1, 1)];
        let stats = BlockingStats::evaluate(&candidates, &truth, a.len(), b.len());
        assert!(stats.reduction_ratio > 0.0);
        assert_eq!(stats.pair_completeness, 1.0);
        assert_eq!(stats.candidates, candidates.len());
        // A blocker that returns nothing has perfect reduction, zero recall.
        let empty = BlockingStats::evaluate(&[], &truth, a.len(), b.len());
        assert_eq!(empty.reduction_ratio, 1.0);
        assert_eq!(empty.pair_completeness, 0.0);
    }

    #[test]
    fn parallel_candidates_match_serial_across_shard_boundaries() {
        // Enough left records to span several shards, with repeated keys so
        // blocks straddle shard boundaries.
        let schema = Schema::new(["name", "city"]);
        let mut a = Table::new(schema.clone());
        let mut b = Table::new(schema);
        for i in 0..(3 * super::SHARD_SIZE + 17) {
            a.push_row(vec![
                format!("alpha {}", i % 7).into(),
                format!("city{}", i % 13).into(),
            ])
            .unwrap();
        }
        for i in 0..97 {
            b.push_row(vec![
                format!("alpha {} beta", i % 7).into(),
                format!("city{}", i % 13).into(),
            ])
            .unwrap();
        }
        let overlap = OverlapBlocker {
            attribute: "name".into(),
            min_overlap: 1,
        };
        let equiv = AttrEquivalenceBlocker {
            attribute: "city".into(),
        };
        for blocker in [&overlap as &dyn Blocker, &equiv] {
            let serial = blocker.candidates_with_jobs(&a, &b, 1);
            assert!(!serial.is_empty());
            for jobs in [0, 2, 8] {
                assert_eq!(serial, blocker.candidates_with_jobs(&a, &b, jobs));
            }
        }
    }

    #[test]
    #[should_panic(expected = "missing in left table")]
    fn missing_attribute_panics() {
        let (a, b) = tables();
        let blocker = AttrEquivalenceBlocker {
            attribute: "zip".into(),
        };
        let _ = blocker.candidates(&a, &b);
    }
}
