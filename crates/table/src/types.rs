//! Attribute type inference (paper §III-B, Table I's "Data Type" column).
//!
//! Magellan classifies each attribute into one of six types based on parse
//! success and the average number of words per value:
//! boolean, numeric, single-word string, 1-to-5-word string, 5-to-10-word
//! string, and long string (> 10 words). AutoML-EM (Table II) only needs the
//! coarse distinction string / number / bool.

use crate::table::Table;
use crate::value::Value;

/// The fine-grained Magellan attribute type (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// All non-null values are booleans.
    Boolean,
    /// All non-null values are numbers.
    Numeric,
    /// Strings averaging exactly one word.
    SingleWordString,
    /// Strings averaging in (1, 5] words.
    ShortString,
    /// Strings averaging in (5, 10] words.
    MediumString,
    /// Strings averaging more than 10 words.
    LongString,
}

/// The coarse attribute type used by AutoML-EM feature generation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoarseType {
    /// Any string attribute, regardless of length.
    String,
    /// Numeric attribute.
    Number,
    /// Boolean attribute.
    Bool,
}

impl AttrType {
    /// Collapse to the coarse String/Number/Bool distinction of Table II.
    pub fn coarse(&self) -> CoarseType {
        match self {
            AttrType::Boolean => CoarseType::Bool,
            AttrType::Numeric => CoarseType::Number,
            _ => CoarseType::String,
        }
    }

    /// True for the four string buckets.
    pub fn is_string(&self) -> bool {
        self.coarse() == CoarseType::String
    }
}

/// Average number of whitespace-separated words among the given values,
/// counting only non-null cells. `None` when every cell is null.
fn average_word_count<'a>(values: impl Iterator<Item = &'a Value>) -> Option<f64> {
    let mut total = 0usize;
    let mut count = 0usize;
    for v in values {
        if let Some(s) = v.to_display_string() {
            total += s.split_whitespace().count();
            count += 1;
        }
    }
    (count > 0).then(|| total as f64 / count as f64)
}

/// Infer the Magellan type of one column from its values.
///
/// Rules, in order: all-null ⇒ treated as single-word string (a harmless
/// default); all non-null parse as bool ⇒ `Boolean`; all non-null parse as
/// number ⇒ `Numeric`; otherwise a string bucket chosen by average word count
/// with the paper's cut-offs 1 / 5 / 10.
pub fn infer_column_type<'a>(values: impl Iterator<Item = &'a Value> + Clone) -> AttrType {
    let non_null: Vec<&Value> = values.clone().filter(|v| !v.is_null()).collect();
    if non_null.is_empty() {
        return AttrType::SingleWordString;
    }
    // Bool check first: "true"/"false" also parse as text but not as numbers.
    let all_bool = non_null
        .iter()
        .all(|v| matches!(v, Value::Bool(_)) || matches!(v, Value::Text(t) if Value::parse(t) == Value::Bool(true) || Value::parse(t) == Value::Bool(false)));
    if all_bool {
        return AttrType::Boolean;
    }
    let all_num = non_null
        .iter()
        .all(|v| matches!(v, Value::Number(_)) || v.as_number().is_some());
    if all_num {
        return AttrType::Numeric;
    }
    let avg = average_word_count(values).unwrap_or(1.0);
    if avg <= 1.0 {
        AttrType::SingleWordString
    } else if avg <= 5.0 {
        AttrType::ShortString
    } else if avg <= 10.0 {
        AttrType::MediumString
    } else {
        AttrType::LongString
    }
}

/// Infer the type of every attribute of a pair of tables with a shared
/// schema (the A and B sides of an EM task), pooling both sides' values the
/// way Magellan does.
///
/// # Panics
/// Panics when the two schemas differ: type inference across mismatched
/// schemas is a caller bug.
pub fn infer_pair_types(a: &Table, b: &Table) -> Vec<AttrType> {
    assert_eq!(
        a.schema(),
        b.schema(),
        "tables must share a schema for pairwise type inference"
    );
    (0..a.schema().len())
        .map(|col| {
            let combined: Vec<&Value> = a.column(col).chain(b.column(col)).collect();
            infer_column_type(combined.iter().copied())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn col(vals: &[Value]) -> AttrType {
        infer_column_type(vals.iter())
    }

    #[test]
    fn boolean_column() {
        assert_eq!(
            col(&[Value::Bool(true), Value::Null, Value::Bool(false)]),
            AttrType::Boolean
        );
    }

    #[test]
    fn numeric_column() {
        assert_eq!(
            col(&[Value::Number(1.0), Value::Text("2.5".into())]),
            AttrType::Numeric
        );
    }

    #[test]
    fn string_buckets() {
        assert_eq!(
            col(&[Value::Text("fenix".into())]),
            AttrType::SingleWordString
        );
        assert_eq!(
            col(&[
                Value::Text("arts deli".into()),
                Value::Text("the palm".into())
            ]),
            AttrType::ShortString
        );
        let medium = "one two three four five six seven";
        assert_eq!(col(&[Value::Text(medium.into())]), AttrType::MediumString);
        let long = "w ".repeat(12);
        assert_eq!(col(&[Value::Text(long)]), AttrType::LongString);
    }

    #[test]
    fn mixed_numbers_and_text_is_string() {
        assert_eq!(
            col(&[Value::Number(5.0), Value::Text("five".into())]),
            AttrType::SingleWordString
        );
    }

    #[test]
    fn all_null_defaults_to_single_word() {
        assert_eq!(col(&[Value::Null, Value::Null]), AttrType::SingleWordString);
    }

    #[test]
    fn coarse_mapping() {
        assert_eq!(AttrType::Boolean.coarse(), CoarseType::Bool);
        assert_eq!(AttrType::Numeric.coarse(), CoarseType::Number);
        assert_eq!(AttrType::LongString.coarse(), CoarseType::String);
        assert!(AttrType::ShortString.is_string());
        assert!(!AttrType::Numeric.is_string());
    }

    #[test]
    fn pair_inference_pools_both_sides() {
        let schema = Schema::new(["x"]);
        let mut a = Table::new(schema.clone());
        let mut b = Table::new(schema);
        // A alone looks numeric; B's text forces the pooled type to string.
        a.push_row(vec![Value::Number(1.0)]).unwrap();
        b.push_row(vec![Value::Text("one".into())]).unwrap();
        assert_eq!(infer_pair_types(&a, &b), vec![AttrType::SingleWordString]);
    }

    #[test]
    fn boundary_word_counts() {
        // avg exactly 5 words -> ShortString (cutoff is (1, 5])
        let five = "a b c d e";
        assert_eq!(col(&[Value::Text(five.into())]), AttrType::ShortString);
        // avg exactly 10 -> MediumString
        let ten = "a b c d e f g h i j";
        assert_eq!(col(&[Value::Text(ten.into())]), AttrType::MediumString);
        // 11 words -> LongString
        let eleven = "a b c d e f g h i j k";
        assert_eq!(col(&[Value::Text(eleven.into())]), AttrType::LongString);
    }
}
